//! Quickstart: build a broken DNSSEC zone in the local sandbox, diagnose it
//! like DNSViz would, and let DFixer repair it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::collections::BTreeSet;

use ddx::prelude::*;

fn main() {
    // 1. Describe the zone to replicate: the meta-parameters a DNSViz scan
    //    records (key algorithms/sizes, DS digest type, NSEC vs NSEC3) plus
    //    the errors it exhibited — here an expired RRSIG.
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };

    // 2. ZReplicator builds a.com → par.a.com → inv-chd.par.a.com, two
    //    authoritative servers per zone, and injects the misconfiguration.
    let mut rep = replicate(&request, 1_000_000, 42).expect("replication succeeds");
    println!("sandbox zones:");
    for z in &rep.sandbox.zones {
        println!("  {} on {} servers", z.apex, z.servers.len());
    }

    // 3. Diagnose: probe walks the chain of trust, grok validates it.
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    println!("\nstatus before fix: {} (signed & bogus)", report.status);
    for e in report.errors() {
        println!("  [{}] {} — {}", e.zone, e.code, e.detail);
    }
    assert_eq!(report.status, SnapshotStatus::Sb);

    // 4. Ask DFixer for a plan (suggest-only): root cause + BIND commands.
    let (_, resolution, commands) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::Bind);
    println!("\nroot cause: {:?}", resolution.addressed);
    println!("plan:");
    for instr in &resolution.plan {
        println!("  - {}", instr.describe());
    }
    println!("commands:");
    for c in &commands {
        println!("  {c}");
    }

    // 5. Auto-apply mode: iterate probe → resolve → apply until clean.
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    println!(
        "\nfixed={} after {} iteration(s); final status: {}",
        run.fixed,
        run.iterations.len(),
        run.final_status
    );
    assert!(run.fixed);
}
