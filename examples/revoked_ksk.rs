//! The paper's Figure 8 scenario end-to-end: a zone whose **only KSK
//! carries the REVOKE flag and is still referenced by a DS record** in the
//! parent. This is the canonical multi-step remediation — new KSK, DS
//! upload, stale DS removal, TTL wait, key deletion, re-sign — and the case
//! where naive per-error suggestions fall apart (Appendix A.2).
//!
//! ```text
//! cargo run --example revoked_ksk
//! ```

use std::collections::BTreeSet;

use ddx::prelude::*;

fn main() {
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::DsReferencesRevokedKey]),
    };

    // --- DFixer ---
    let mut rep = replicate(&request, 1_000_000, 0xF18).expect("replicates");
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    println!("errors observed ({}):", report.status);
    for e in report.errors() {
        println!("  {} — {}", e.code, e.detail);
    }

    let (_, resolution, commands) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::Bind);
    println!(
        "\nDResolver identified root cause: {:?} (of {} root causes)",
        resolution.addressed,
        resolution.root_causes.len()
    );
    println!("\nremediation plan (cf. paper Fig 8):");
    for (i, instr) in resolution.plan.iter().enumerate() {
        println!("  ({}) {}", i + 1, instr.describe());
    }
    println!("\nBIND command sequence:");
    for c in &commands {
        println!("  {c}");
    }

    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    println!(
        "\nDFixer: fixed={} in {} iteration(s)",
        run.fixed,
        run.iterations.len()
    );
    assert!(run.fixed);

    // --- naive baseline on the identical zone ---
    let mut rep2 = replicate(&request, 1_000_000, 0xF18).expect("replicates");
    let cfg2 = rep2.probe.clone();
    let naive = run_naive(&mut rep2.sandbox, &cfg2, &FixerOptions::default());
    println!(
        "naive baseline: fixed={} in {} iteration(s); remaining: {:?}",
        naive.fixed,
        naive.iterations.len(),
        naive.final_errors
    );
    // The naive planner removes the revoked key but never replaces the KSK
    // nor cleans the stale DS — the chain stays broken.
    assert!(!naive.fixed, "naive baseline should not fully repair this");
}
