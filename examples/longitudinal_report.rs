//! The measurement side of the paper (§3): generate the calibrated
//! synthetic corpus and print a compact longitudinal report — status
//! composition, top error types, transition behaviour, and never-resolved
//! shares.
//!
//! ```text
//! cargo run --example longitudinal_report [scale]
//! ```

use ddx::prelude::*;
use ddx_dataset::analysis;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("generating corpus at scale {scale}…");
    let corpus = generate(&CorpusConfig {
        scale,
        seed: 20_200_311,
    });

    let rows = analysis::table1(&corpus);
    println!("\n-- dataset --");
    for r in &rows {
        println!("{r}");
    }

    let prev = analysis::prevalence(&corpus);
    println!(
        "\n-- errors -- {} of {} snapshots erroneous ({:.1}%)",
        prev.erroneous_snapshots,
        prev.total_snapshots,
        100.0 * prev.erroneous_snapshots as f64 / prev.total_snapshots as f64
    );
    let mut top: Vec<_> = prev.rows.iter().filter(|r| r.snapshots > 0).collect();
    top.sort_by_key(|r| std::cmp::Reverse(r.snapshots));
    println!("top error subcategories:");
    for r in top.iter().take(8) {
        println!(
            "  {:<36} {:>6} snapshots ({:>5.2}%)",
            r.subcategory.label(),
            r.snapshots,
            r.snapshot_pct
        );
    }

    let fl = analysis::first_last(&corpus);
    println!(
        "\n-- trajectories -- sb recovered {:.0}%, is newly signed {:.0}%",
        100.0 * fl.sb_recovered_share(),
        100.0 * fl.newly_signed_share()
    );

    let tm = analysis::transitions(&corpus);
    println!(
        "operators react fast to breakage: median sb→sv {:.1}h vs sv→sb {:.1}h",
        tm.median_hours[2][0], tm.median_hours[0][2]
    );

    let rt = analysis::resolution_times(&corpus);
    if let Some(nzic) = rt.rows.iter().find(|r| r.marker == 9 && !r.critical) {
        println!(
            "NZIC persists: p80 {:.0} days across {} fixed instances",
            nzic.p80_hours / 24.0,
            nzic.instances
        );
    }

    println!("\n-- abandonment (Table 5) --");
    for r in analysis::unresolved(&corpus) {
        println!(
            "  {:<4} {:>6} domains, {:>6} never resolved ({:.1}%)",
            r.state.label(),
            r.domains,
            r.unresolved,
            100.0 * r.share()
        );
    }

    let cdf = analysis::gap_cdf(&corpus);
    println!(
        "\n-- scan cadence -- {:.0}% of domains re-scan within a day",
        100.0 * cdf.share_under_day
    );
}
