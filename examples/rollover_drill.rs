//! Rollover drill: the three RFC 6781 rollover strategies executed against
//! the live sandbox, verified (like §3.4's well-behaved operators would) at
//! every phase — followed by the classic botched KSK rollover that tops the
//! paper's sv→sb cause list, and its DFixer repair.
//!
//! ```text
//! cargo run --example rollover_drill
//! ```

use ddx::prelude::*;
use ddx_dnsviz::ProbeConfig;
use ddx_server::{botched_ksk_rollover, build_sandbox, Rollover, RolloverKind, Sandbox};

const NOW: u32 = 1_000_000;

fn sandbox() -> Sandbox {
    build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
        ],
        NOW,
        2024,
    )
}

fn probe_cfg(sb: &Sandbox, time: u32) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name("www.par.a.com"),
        target_types: vec![RrType::A],
        time,
        retry: ddx_dnsviz::RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

fn drill(kind: RolloverKind, alg: Option<Algorithm>) {
    println!("\n== {kind:?} ==");
    let mut sb = sandbox();
    let apex = name("par.a.com");
    let mut rollover = Rollover::start(&sb, &apex, kind, alg, 9);
    let mut now = NOW;
    while let Some(step) = rollover.advance(&mut sb, now) {
        let report = grok(&probe(&sb.testbed, &probe_cfg(&sb, now)));
        println!(
            "phase {}: {:<58} status={} (wait {}s)",
            step.phase, step.description, report.status, step.wait_secs
        );
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        now += step.wait_secs + 1;
    }
    let report = grok(&probe(&sb.testbed, &probe_cfg(&sb, now)));
    println!("complete: status={}", report.status);
    assert_eq!(report.status, SnapshotStatus::Sv);
}

fn main() {
    drill(RolloverKind::ZskPrePublish, None);
    drill(RolloverKind::KskDoubleDs, None);
    drill(
        RolloverKind::AlgorithmConservative,
        Some(Algorithm::RsaSha256),
    );

    println!("\n== botched KSK rollover (no DS update) ==");
    let mut sb = sandbox();
    botched_ksk_rollover(&mut sb, &name("par.a.com"), NOW, 13);
    let report = grok(&probe(&sb.testbed, &probe_cfg(&sb, NOW)));
    println!(
        "after botch: status={} errors={:?}",
        report.status,
        report.codes()
    );
    assert_eq!(report.status, SnapshotStatus::Sb);

    let cfg = probe_cfg(&sb, NOW);
    let run = run_fixer(&mut sb, &cfg, &FixerOptions::default());
    println!(
        "DFixer: fixed={} in {} iteration(s); final status={}",
        run.fixed,
        run.iterations.len(),
        run.final_status
    );
    assert!(run.fixed);
}
