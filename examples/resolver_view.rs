//! The end-user view: what a *validating resolver* (§2.2) answers for the
//! same zone as it moves through healthy → tolerated-misconfigured →
//! bogus → repaired states, including the RFC 8914 Extended DNS Error a
//! modern resolver attaches to its SERVFAIL.
//!
//! ```text
//! cargo run --example resolver_view
//! ```

use std::collections::BTreeSet;

use ddx::prelude::*;
use ddx_dns::Rcode;
use ddx_dnsviz::{resolve_validating, ResolverConfig};

fn show(tag: &str, r: &ddx_dnsviz::Resolution) {
    println!(
        "{tag:<22} rcode={:<9} AD={} state={:?} answers={} ede={}",
        r.rcode.to_string(),
        r.ad as u8,
        r.state,
        r.answers.len(),
        r.ede
            .map(|e| format!("{} ({})", e.code(), e.purpose()))
            .unwrap_or_else(|| "-".into())
    );
}

fn main() {
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    let mut rep = replicate(&request, 1_000_000, 7).expect("replicates");
    let qname = name("www.inv-chd.par.a.com");
    let cfg = ResolverConfig {
        anchor_zone: rep.sandbox.anchor().apex.clone(),
        anchor_servers: rep.sandbox.anchor().servers.clone(),
        hints: rep
            .sandbox
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
        nsec3_policy: Default::default(),
    };

    // 1. Broken: the resolver withholds the answer and reports EDE 7.
    let r = resolve_validating(&rep.sandbox.testbed, &cfg, &qname, RrType::A, 1_000_000);
    show("expired RRSIG:", &r);
    assert_eq!(r.rcode, Rcode::ServFail);
    assert_eq!(r.ede.map(|e| e.code()), Some(7));

    // 2. DFixer repairs the zone…
    let probe_cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &probe_cfg, &FixerOptions::default());
    assert!(run.fixed);

    // …and the same query now validates with the AD bit set.
    let r = resolve_validating(&rep.sandbox.testbed, &cfg, &qname, RrType::A, 1_000_000);
    show("after DFixer:", &r);
    assert!(r.ad);

    // 3. Drop the DS: the answer still resolves, but unauthenticated.
    rep.sandbox
        .set_ds(&name("inv-chd.par.a.com"), vec![], 1_000_000);
    let r = resolve_validating(&rep.sandbox.testbed, &cfg, &qname, RrType::A, 1_000_000);
    show("DS removed:", &r);
    assert!(!r.ad);
    assert_eq!(r.rcode, Rcode::NoError);
}
