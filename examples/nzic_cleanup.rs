//! NZIC cleanup: the single most common real-world misconfiguration
//! (28.8% of all erroneous snapshots in the paper's dataset) — a nonzero
//! NSEC3 iteration count, violating RFC 9276 — combined with an extraneous
//! DS record. Two *independent* root causes force DFixer's incremental
//! strategy: remove the DS first, re-sign with compliant NSEC3 second
//! (paper §5.4).
//!
//! ```text
//! cargo run --example nzic_cleanup
//! ```

use std::collections::BTreeSet;

use ddx::prelude::*;

fn main() {
    let request = ReplicationRequest {
        meta: ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 150,
                salt_len: 8,
                opt_out: false,
            }),
            ..ZoneMeta::default()
        },
        intended: BTreeSet::from([
            ErrorCode::Nsec3IterationsNonzero,
            ErrorCode::DsMissingKeyForAlgorithm,
        ]),
    };
    let mut rep = replicate(&request, 1_000_000, 7).expect("replicates");

    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    println!("initial status: {}", report.status);
    for e in report.errors() {
        println!("  {} — {}", e.code, e.detail);
    }

    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    println!("\niterations:");
    for it in &run.iterations {
        println!(
            "  #{} status={} errors={} root={:?}",
            it.iteration,
            it.status_before,
            it.errors_before.len(),
            it.addressed
        );
        for instr in &it.plan {
            println!("     → {}", instr.describe());
        }
    }
    println!("\nfixed={} final status={}", run.fixed, run.final_status);
    assert!(run.fixed);
    assert!(
        run.iterations.len() >= 2,
        "independent causes need multiple iterations"
    );

    // The zone now runs RFC 9276-compliant NSEC3 (iterations 0, no salt).
    let leaf_apex = rep.sandbox.leaf().apex.clone();
    let leaf_server = rep.sandbox.leaf().servers[0].clone();
    let zone = rep
        .sandbox
        .testbed
        .server(&leaf_server)
        .unwrap()
        .zone(&leaf_apex)
        .unwrap();
    let compliant = zone.rrsets().all(|s| {
        s.rdatas.iter().all(|rd| match rd {
            RData::Nsec3(n3) => n3.iterations == 0 && n3.salt.is_empty(),
            _ => true,
        })
    });
    println!("RFC 9276 compliant after fix: {compliant}");
    assert!(compliant);
}
