//! `ddx-loadgen` — spawn a sandbox authoritative server on loopback and
//! drive it with probe-shaped / hostile query mixes.
//!
//! ```text
//! ddx-loadgen [--qps N] [--duration-ms MS] [--clients N] [--server-workers N]
//!             [--mix probe|hostile|mixed] [--seed K] [--batch N]
//!             [--rate-limit QPS:BURST] [--scan-workers 1,2,4,8]
//!             [--json] [--metrics-out metrics.json]
//! ```
//!
//! Defaults: 2000 qps aggregate, 1 s, 4 clients, 4 server workers, mixed
//! traffic. `--qps 0` saturates (closed-loop, no pacing). `--scan-workers`
//! repeats the run at each worker count and prints a scaling table — the
//! experiment behind EXPERIMENTS.md's shared-nothing scaling recipe.

use std::time::Duration;

use ddx_dns::name;
use ddx_loadgen::{run_load, LoadConfig, LoadReport, QueryMix};
use ddx_server::sandbox::{build_sandbox, ZoneSpec};
use ddx_server::udp::{TransportConfig, UdpServerHandle};
use ddx_server::RateLimitConfig;

struct Args {
    qps: u64,
    duration: Duration,
    clients: usize,
    server_workers: usize,
    batch: usize,
    mix: QueryMix,
    seed: u64,
    rate_limit: Option<RateLimitConfig>,
    scan_workers: Option<Vec<usize>>,
    json: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        qps: 2_000,
        duration: Duration::from_millis(1_000),
        clients: 4,
        server_workers: 4,
        batch: ddx_server::batch::DEFAULT_BATCH,
        mix: QueryMix::Mixed,
        seed: 0xDD5EC,
        rate_limit: None,
        scan_workers: None,
        json: false,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--qps" => args.qps = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.qps),
            "--duration-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(1_000);
                args.duration = Duration::from_millis(ms);
            }
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.clients)
            }
            "--server-workers" => {
                args.server_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.server_workers)
            }
            "--batch" => args.batch = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.batch),
            "--mix" => {
                let v = it.next().unwrap_or_default();
                match QueryMix::parse(&v) {
                    Some(m) => args.mix = m,
                    None => eprintln!("unknown mix {v:?}; keeping {}", args.mix.label()),
                }
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--rate-limit" => {
                let v = it.next().unwrap_or_default();
                let mut parts = v.split(':');
                let qps = parts.next().and_then(|p| p.parse().ok());
                let burst = parts.next().and_then(|p| p.parse().ok());
                match (qps, burst) {
                    (Some(q), Some(b)) => args.rate_limit = Some(RateLimitConfig::new(q, b)),
                    _ => eprintln!("--rate-limit wants QPS:BURST, got {v:?}"),
                }
            }
            "--scan-workers" => {
                let v = it.next().unwrap_or_default();
                let ws: Vec<usize> = v.split(',').filter_map(|p| p.parse().ok()).collect();
                if ws.is_empty() {
                    eprintln!("--scan-workers wants a comma list like 1,2,4,8");
                } else {
                    args.scan_workers = Some(ws);
                }
            }
            "--json" => args.json = true,
            "--metrics-out" => args.metrics_out = it.next(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    args
}

/// Spawns a fresh signed sandbox zone server with `workers` UDP workers.
fn spawn_server(args: &Args, workers: usize) -> (UdpServerHandle, ddx_dns::Name) {
    let apex = name("load.test");
    let sb = build_sandbox(
        &[ZoneSpec::conventional(apex.clone())],
        1_000_000,
        args.seed,
    );
    let server = sb.testbed.server(&sb.zones[0].servers[0]).unwrap().clone();
    let handle = UdpServerHandle::spawn_with(
        server,
        TransportConfig {
            workers,
            batch: args.batch,
            rate_limit: args.rate_limit,
            ..TransportConfig::default()
        },
    )
    .expect("spawn loopback server");
    (handle, apex)
}

fn run_once(args: &Args, workers: usize) -> LoadReport {
    let (handle, apex) = spawn_server(args, workers);
    let cfg = LoadConfig {
        qps: args.qps,
        duration: args.duration,
        clients: args.clients,
        mix: args.mix,
        seed: args.seed,
        timeout: Duration::from_millis(500),
    };
    run_load(handle.addr, &apex, &cfg).expect("load run")
}

fn main() {
    let args = parse_args();
    if let Some(workers_list) = &args.scan_workers {
        // Scaling sweep: same offered load against 1..N worker transports.
        println!("| workers | achieved qps | p50 µs | p99 µs | p999 µs | timeouts |");
        println!("|---:|---:|---:|---:|---:|---:|");
        let mut baseline: Option<f64> = None;
        let mut last_ratio = 0.0;
        for &w in workers_list {
            let report = run_once(&args, w);
            let base = *baseline.get_or_insert(report.achieved_qps.max(1.0));
            last_ratio = report.achieved_qps / base;
            println!(
                "| {w} | {:.0} (×{:.2}) | {} | {} | {} | {} |",
                report.achieved_qps,
                last_ratio,
                report.p50_us,
                report.p99_us,
                report.p999_us,
                report.timeouts,
            );
        }
        println!();
        println!(
            "scaling {}→{} workers: ×{last_ratio:.2}",
            workers_list.first().unwrap_or(&1),
            workers_list.last().unwrap_or(&1),
        );
    } else {
        let report = run_once(&args, args.server_workers);
        if args.json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.summary());
        }
    }
    if let Some(path) = &args.metrics_out {
        let snap = ddx_obs::snapshot();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => {
                eprintln!("metrics written to {path}");
                print!("{}", snap.render_report());
            }
            Err(e) => eprintln!("warning: could not write metrics to {path}: {e}"),
        }
    }
}
