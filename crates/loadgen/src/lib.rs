//! # ddx-loadgen — closed-loop UDP load generation for the server transport
//!
//! Drives a spawned [`ddx_server::UdpServerHandle`] with deterministic
//! query streams at a target aggregate QPS and reports exact latency
//! percentiles. Two query shapes model the paper's traffic:
//!
//! * **probe** — the DNSViz-probe-shaped mix: apex SOA/NS/DNSKEY/TXT/DS
//!   and host A/AAAA lookups with EDNS+DO, the queries a measurement
//!   platform issues when walking a zone's DNSSEC state.
//! * **hostile** — cache-hostile and abusive traffic: random NXDOMAIN
//!   names (each a fresh denial proof), out-of-zone names (REFUSED),
//!   unknown RR types, and plain-DNS queries that force truncation.
//!
//! `mixed` interleaves the two 50/50. Every client thread is closed-loop
//! (at most one query in flight) and paced so the fleet sums to the target
//! QPS; `qps = 0` means saturation — send as fast as answers return.
//!
//! Determinism: all randomness flows from one `u64` seed through
//! [`SplitMix64`], so a report is reproducible modulo scheduler timing.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ddx_dns::{wire, Message, MessageView, Name, Rcode, RrType};

/// SplitMix64: tiny, seedable, statistically fine for traffic shaping.
/// (Same generator the chaos harness uses for fault schedules.)
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Which traffic shape a client thread generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMix {
    Probe,
    Hostile,
    Mixed,
}

impl QueryMix {
    pub fn parse(s: &str) -> Option<QueryMix> {
        match s {
            "probe" => Some(QueryMix::Probe),
            "hostile" => Some(QueryMix::Hostile),
            "mixed" => Some(QueryMix::Mixed),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            QueryMix::Probe => "probe",
            QueryMix::Hostile => "hostile",
            QueryMix::Mixed => "mixed",
        }
    }
}

/// Builds the next query of `mix` against the zone rooted at `apex`.
/// Deterministic in (`mix`, rng state, `id`).
pub fn synth_query(mix: QueryMix, rng: &mut SplitMix64, apex: &Name, id: u16) -> Message {
    let shape = match mix {
        QueryMix::Probe => 0,
        QueryMix::Hostile => 1,
        QueryMix::Mixed => (rng.below(2)) as usize,
    };
    if shape == 0 {
        probe_query(rng, apex, id)
    } else {
        hostile_query(rng, apex, id)
    }
}

fn child(apex: &Name, label: &str) -> Name {
    apex.child(label)
        .expect("loadgen labels are short and valid")
}

/// The queries a DNSViz-style probe issues when walking a zone.
fn probe_query(rng: &mut SplitMix64, apex: &Name, id: u16) -> Message {
    match rng.below(8) {
        0 => Message::query(id, apex.clone(), RrType::Soa),
        1 => Message::query(id, apex.clone(), RrType::Ns),
        2 => Message::query(id, apex.clone(), RrType::Dnskey),
        3 => Message::query(id, apex.clone(), RrType::Txt),
        4 => Message::query(id, apex.clone(), RrType::Ds),
        5 => Message::query(id, child(apex, "www"), RrType::A),
        6 => Message::query(id, child(apex, "www"), RrType::Aaaa),
        _ => Message::query(id, child(apex, "ns1"), RrType::A),
    }
}

/// Abusive traffic: random denials, out-of-zone names, odd types, and
/// plain-DNS (no EDNS) queries that force the truncation path.
fn hostile_query(rng: &mut SplitMix64, apex: &Name, id: u16) -> Message {
    match rng.below(5) {
        0 | 1 => {
            // Fresh random NXDOMAIN: every one needs a denial proof, so
            // these never hit the memo's positive entries.
            let label = format!("x{:016x}", rng.next_u64());
            Message::query(id, child(apex, &label), RrType::A)
        }
        2 => {
            // Out-of-bailiwick: the server answers REFUSED.
            Message::query(id, ddx_dns::name("nowhere.invalid"), RrType::A)
        }
        3 => {
            // A type the server does not model.
            let code = 200 + (rng.below(55) as u16);
            Message::query(id, apex.clone(), RrType::Unknown(code))
        }
        _ => {
            // Plain DNS: a signed answer rarely fits 512 bytes, forcing TC.
            let mut q = Message::query(id, apex.clone(), RrType::Dnskey);
            q.edns = None;
            q
        }
    }
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Aggregate target queries/second across all clients; 0 = saturate.
    pub qps: u64,
    pub duration: Duration,
    /// Closed-loop client threads (each at most one query in flight).
    pub clients: usize,
    pub mix: QueryMix,
    pub seed: u64,
    /// Per-query receive timeout; expiry counts as a timeout, not a latency
    /// sample.
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            qps: 2_000,
            duration: Duration::from_millis(1_000),
            clients: 4,
            mix: QueryMix::Mixed,
            seed: 0xDD5EC,
            timeout: Duration::from_millis(500),
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoadReport {
    pub mix: String,
    pub clients: usize,
    pub target_qps: u64,
    pub sent: u64,
    pub received: u64,
    pub timeouts: u64,
    pub refused: u64,
    pub truncated: u64,
    pub elapsed_ms: u64,
    /// Answered queries per wall-clock second.
    pub achieved_qps: f64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    pub max_us: u64,
}

impl LoadReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes infallibly")
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "mix={} clients={} target={}qps achieved={:.0}qps sent={} recv={} timeout={} refused={} tc={} p50={}µs p90={}µs p99={}µs p999={}µs",
            self.mix,
            self.clients,
            self.target_qps,
            self.achieved_qps,
            self.sent,
            self.received,
            self.timeouts,
            self.refused,
            self.truncated,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// Exact percentile over raw samples (nearest-rank). `samples` need not be
/// sorted; returns 0 when empty.
pub fn percentile_us(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).max(1);
    samples[rank.min(samples.len()) - 1]
}

#[derive(Default)]
struct ClientStats {
    sent: u64,
    received: u64,
    timeouts: u64,
    refused: u64,
    truncated: u64,
    samples: Vec<u64>,
}

/// Runs one load generation pass against `addr` and aggregates the fleet's
/// outcomes. Blocks for roughly `cfg.duration`.
pub fn run_load(addr: SocketAddr, apex: &Name, cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let clients = cfg.clients.max(1);
    // Pace each client at qps/clients so the fleet sums to the target.
    let interval = if cfg.qps == 0 {
        None
    } else {
        Some(Duration::from_secs_f64(
            clients as f64 / cfg.qps.max(1) as f64,
        ))
    };
    let started = Instant::now();
    let threads: Vec<std::thread::JoinHandle<std::io::Result<ClientStats>>> = (0..clients)
        .map(|c| {
            let apex = apex.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || client_loop(c, addr, &apex, &cfg, interval))
        })
        .collect();
    let mut stats = ClientStats::default();
    for t in threads {
        let s = t.join().expect("client thread panicked")?;
        stats.sent += s.sent;
        stats.received += s.received;
        stats.timeouts += s.timeouts;
        stats.refused += s.refused;
        stats.truncated += s.truncated;
        stats.samples.extend(s.samples);
    }
    let elapsed = started.elapsed();
    let mut samples = stats.samples;
    Ok(LoadReport {
        mix: cfg.mix.label().to_string(),
        clients,
        target_qps: cfg.qps,
        sent: stats.sent,
        received: stats.received,
        timeouts: stats.timeouts,
        refused: stats.refused,
        truncated: stats.truncated,
        elapsed_ms: elapsed.as_millis() as u64,
        achieved_qps: stats.received as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile_us(&mut samples, 0.50),
        p90_us: percentile_us(&mut samples, 0.90),
        p99_us: percentile_us(&mut samples, 0.99),
        p999_us: percentile_us(&mut samples, 0.999),
        max_us: samples.last().copied().unwrap_or(0),
    })
}

/// One closed-loop paced client. Reuses a single socket and encode buffer
/// for every query.
fn client_loop(
    client: usize,
    addr: SocketAddr,
    apex: &Name,
    cfg: &LoadConfig,
    interval: Option<Duration>,
) -> std::io::Result<ClientStats> {
    let obs_sent = ddx_obs::counter("loadgen.sent", &[]);
    let obs_recv = ddx_obs::counter("loadgen.received", &[]);
    let obs_timeout = ddx_obs::counter("loadgen.timeouts", &[]);
    let obs_lat = ddx_obs::histogram("loadgen.latency_us", &[]);
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.set_read_timeout(Some(cfg.timeout))?;
    // Independent per-client stream: offset the seed by the client index.
    let mut rng = SplitMix64::new(
        cfg.seed
            .wrapping_add(client as u64)
            .wrapping_mul(0x9E3779B1),
    );
    let mut stats = ClientStats::default();
    let mut out_buf: Vec<u8> = Vec::with_capacity(512);
    let mut in_buf = [0u8; 4096];
    let start = Instant::now();
    let mut next = start;
    let mut id: u16 = (client as u16).wrapping_mul(4099).wrapping_add(1);
    while start.elapsed() < cfg.duration {
        if let Some(iv) = interval {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            } else if now.duration_since(next) > Duration::from_secs(1) {
                // Far behind target rate: resync instead of bursting to
                // catch up (coordinated-omission guard).
                next = now;
            }
            next += iv;
        }
        id = id.wrapping_add(1).max(1);
        let query = synth_query(cfg.mix, &mut rng, apex, id);
        wire::encode_into(&query, &mut out_buf);
        let t0 = Instant::now();
        sock.send_to(&out_buf, addr)?;
        stats.sent += 1;
        obs_sent.inc();
        // Wait for a datagram attributable to this query; stale answers
        // from timed-out exchanges are skipped. Validation and tallying run
        // entirely on the borrowed MessageView — the loadgen never
        // materializes an owned response.
        let outcome = loop {
            match sock.recv_from(&mut in_buf) {
                Ok((len, peer)) if peer == addr => match MessageView::parse(&in_buf[..len]) {
                    Ok(view) => {
                        let question_matches = match (view.question(), &query.question) {
                            (Some(qv), Some(q)) => qv.matches(q),
                            (None, None) => true,
                            _ => false,
                        };
                        if view.id() == query.id && question_matches {
                            break Some((view.rcode(), view.flags().tc));
                        }
                        continue;
                    }
                    Err(_) => continue,
                },
                Ok(_) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break None;
                }
                Err(e) => return Err(e),
            }
        };
        match outcome {
            Some((rcode, tc)) => {
                let us = t0.elapsed().as_micros() as u64;
                stats.received += 1;
                stats.samples.push(us);
                obs_recv.inc();
                obs_lat.record(us);
                if rcode == Rcode::Refused {
                    stats.refused += 1;
                }
                if tc {
                    stats.truncated += 1;
                }
            }
            None => {
                stats.timeouts += 1;
                obs_timeout.inc();
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;
    use ddx_server::sandbox::{build_sandbox, ZoneSpec};
    use ddx_server::udp::{TransportConfig, UdpServerHandle};
    use ddx_server::RateLimitConfig;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }

    #[test]
    fn query_streams_are_seed_reproducible() {
        let apex = name("load.test");
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for id in 1..200u16 {
            let qa = synth_query(QueryMix::Mixed, &mut a, &apex, id);
            let qb = synth_query(QueryMix::Mixed, &mut b, &apex, id);
            assert_eq!(wire::encode(&qa), wire::encode(&qb));
        }
    }

    #[test]
    fn percentiles_are_nearest_rank_exact() {
        let mut s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&mut s, 0.50), 50);
        assert_eq!(percentile_us(&mut s, 0.90), 90);
        assert_eq!(percentile_us(&mut s, 0.99), 99);
        assert_eq!(percentile_us(&mut s, 1.0), 100);
        assert_eq!(percentile_us(&mut [], 0.5), 0);
        assert_eq!(percentile_us(&mut [7], 0.999), 7);
    }

    /// End-to-end smoke: a sharded server on loopback answers a short
    /// mixed-load burst and the report holds together.
    #[test]
    fn loadgen_round_trip_against_sharded_server() {
        let apex = name("load.test");
        let sb = build_sandbox(&[ZoneSpec::conventional(apex.clone())], 1_000_000, 99);
        let server = sb.testbed.server(&sb.zones[0].servers[0]).unwrap().clone();
        let handle = UdpServerHandle::spawn_sharded(server, 2).unwrap();
        let cfg = LoadConfig {
            qps: 500,
            duration: Duration::from_millis(300),
            clients: 2,
            mix: QueryMix::Mixed,
            seed: 1,
            timeout: Duration::from_millis(300),
        };
        let report = run_load(handle.addr, &apex, &cfg).unwrap();
        assert!(report.sent > 0);
        assert!(report.received > 0, "{}", report.summary());
        assert!(report.p50_us > 0);
        assert!(report.p999_us >= report.p50_us);
        // The hostile half of the mix must exercise the truncation path.
        assert!(report.truncated > 0, "{}", report.summary());
    }

    /// The transport's per-client token bucket shows up as REFUSED answers
    /// in the report (answered fast, not dropped).
    #[test]
    fn rate_limited_run_reports_refused() {
        let apex = name("load.test");
        let sb = build_sandbox(&[ZoneSpec::conventional(apex.clone())], 1_000_000, 100);
        let server = sb.testbed.server(&sb.zones[0].servers[0]).unwrap().clone();
        let handle = UdpServerHandle::spawn_with(
            server,
            TransportConfig {
                rate_limit: Some(RateLimitConfig::new(20, 5)),
                ..TransportConfig::default()
            },
        )
        .unwrap();
        let cfg = LoadConfig {
            qps: 1_000,
            duration: Duration::from_millis(300),
            clients: 1,
            mix: QueryMix::Probe,
            seed: 2,
            timeout: Duration::from_millis(300),
        };
        let report = run_load(handle.addr, &apex, &cfg).unwrap();
        assert!(
            report.refused > 0,
            "over-rate probe traffic must be refused: {}",
            report.summary()
        );
    }
}
