//! DFixer under fault injection: the resolver must never prescribe changes
//! from *missing* data. Absence-evidence root causes reported in zones the
//! probe could not fully observe are deferred, not planned; and the whole
//! suggest path survives an arbitrary fault mix without panicking.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ddx_dns::{name, Name, RrType};
use ddx_dnsviz::{
    ErrorCode, ErrorDetail, ErrorInstance, GrokReport, ProbeConfig, RetryPolicy, SnapshotStatus,
    ZoneReport,
};
use ddx_fixer::{resolve, suggest_remote, FixContext, ServerFlavor};
use ddx_server::{build_sandbox, FaultNetwork, FaultPlan, Sandbox, ZoneSpec};

const NOW: u32 = 1_000_000;
const LEAF_APEX: &str = "chd.par.a.com";

/// Three-level sandbox whose leaf had every RRSIG stripped post-signing:
/// the canonical absence-evidence breakage (RRSIGs are *missing*, not
/// wrong).
fn stripped_sandbox() -> Sandbox {
    let mut sb = build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
            ZoneSpec::conventional(name(LEAF_APEX)),
        ],
        NOW,
        0xF1CE,
    );
    sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
        z.strip_type(RrType::Rrsig);
    });
    sb
}

fn probe_cfg(sb: &Sandbox) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name(&format!("www.{LEAF_APEX}")),
        target_types: vec![RrType::A],
        time: NOW,
        retry: RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

/// Fully observed, the stripped zone gets a plan; with the leaf zone only
/// partially observable, the same absence-evidence root is deferred and
/// nothing is prescribed for it.
#[test]
fn missing_data_defers_absence_roots() {
    let sb = stripped_sandbox();
    let cfg = probe_cfg(&sb);

    // Baseline: clean observation, broken zone — the fixer prescribes.
    let (report, res, commands) = suggest_remote(&sb.testbed, &cfg, ServerFlavor::Bind);
    assert!(report.fully_observed(), "no faults, no gaps");
    assert!(res.deferred.is_empty(), "nothing to defer without gaps");
    let root = res
        .addressed
        .expect("a sig-stripped zone must yield a root cause");
    assert!(
        root.evidence_is_absence(),
        "stripped RRSIGs must surface as absence evidence, got {root}"
    );
    assert!(!res.plan.is_empty(), "baseline run must plan a fix");
    assert!(!commands.is_empty(), "baseline plan must render commands");

    // Same zone, but one leaf server is a black hole: the leaf zone gains
    // observation gaps, and the absence-evidence root is deferred.
    let dead = sb.leaf().servers[0].clone();
    let plan = FaultPlan {
        timeout_permille: 1000,
        only_server: Some(dead),
        ..FaultPlan::none(7)
    };
    let net = FaultNetwork::new(&sb.testbed, plan);
    let (report, res, commands) = suggest_remote(&net, &cfg, ServerFlavor::Bind);
    assert!(
        !report.fully_observed(),
        "a dead leaf server must leave observation gaps"
    );
    assert!(
        res.deferred.contains(&root),
        "root {root} must be deferred under observation gaps, deferred: {:?}",
        res.deferred
    );
    for code in &res.deferred {
        assert!(
            code.evidence_is_absence(),
            "only absence-evidence causes may be deferred, got {code}"
        );
    }
    if let Some(addressed) = res.addressed {
        assert!(
            !res.deferred.contains(&addressed),
            "a deferred cause must never be addressed"
        );
    } else {
        assert!(
            res.plan.is_empty() && commands.is_empty(),
            "no addressed cause, yet the fixer prescribed: {:?}",
            res.plan
        );
    }
}

/// The suggest path must hold its invariants — and never panic — across a
/// seed sweep of mixed fault plans.
#[test]
fn suggest_remote_survives_fault_sweep() {
    let sb = stripped_sandbox();
    let cfg = probe_cfg(&sb);
    let mut failing: Vec<u64> = Vec::new();
    for seed in 0..40u64 {
        let permille = 30 + (seed % 6) as u16 * 25;
        let plan = FaultPlan::uniform(seed, permille);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let net = FaultNetwork::new(&sb.testbed, plan);
            let (report, res, commands) = suggest_remote(&net, &cfg, ServerFlavor::Bind);
            for code in &res.deferred {
                assert!(code.evidence_is_absence(), "deferred non-absence {code}");
            }
            if report.fully_observed() {
                assert!(res.deferred.is_empty(), "gap-free report deferred causes");
            }
            if res.addressed.is_none() {
                assert!(
                    res.plan.is_empty() && commands.is_empty(),
                    "prescription without an addressed cause"
                );
            }
        }));
        if outcome.is_err() {
            failing.push(seed);
        }
    }
    assert!(
        failing.is_empty(),
        "suggest_remote panicked or broke invariants for seeds {failing:?}"
    );
}

// ------------------------------------------------- resolve() unit checks

fn zone_report(zone: &Name, errors: Vec<ErrorInstance>, gaps: Vec<ErrorDetail>) -> ZoneReport {
    ZoneReport {
        zone: zone.clone(),
        signed: true,
        has_ds: true,
        is_anchor: false,
        errors,
        warnings: Vec::new(),
        observation_gaps: gaps,
    }
}

fn report_with(zones: Vec<ZoneReport>) -> GrokReport {
    GrokReport {
        query_domain: name(&format!("www.{LEAF_APEX}")),
        time: NOW,
        status: SnapshotStatus::Sb,
        zones,
    }
}

fn bare_context(zone: &Name) -> FixContext {
    FixContext {
        zone: zone.clone(),
        active_ksk: Vec::new(),
        active_zsk: Vec::new(),
        revoked_tags: Vec::new(),
        published: Vec::new(),
        ds_set: Vec::new(),
        nsec3: None,
        dnskey_ttl: 3600,
        ds_digest: ddx_dnssec::DigestType::Sha256,
        use_cds: false,
    }
}

fn absence_error(zone: &Name) -> ErrorInstance {
    ErrorInstance {
        code: ErrorCode::NsecProofMissing,
        zone: zone.clone(),
        critical: true,
        detail: ErrorDetail::None,
    }
}

/// An absence-evidence root whose every instance sits in a gapped zone is
/// deferred: no addressed cause, no plan.
#[test]
fn resolve_defers_when_all_evidence_is_in_gapped_zones() {
    let zone = name(LEAF_APEX);
    let gap = ErrorDetail::Note("server unreachable".into());
    let report = report_with(vec![zone_report(
        &zone,
        vec![absence_error(&zone)],
        vec![gap],
    )]);
    let res = resolve(&report, &bare_context(&zone));
    assert_eq!(res.deferred, vec![ErrorCode::NsecProofMissing]);
    assert_eq!(res.addressed, None);
    assert!(res.plan.is_empty());
}

/// The same report without gaps is actionable.
#[test]
fn resolve_acts_when_observation_is_complete() {
    let zone = name(LEAF_APEX);
    let report = report_with(vec![zone_report(
        &zone,
        vec![absence_error(&zone)],
        Vec::new(),
    )]);
    let res = resolve(&report, &bare_context(&zone));
    assert!(res.deferred.is_empty());
    assert_eq!(res.addressed, Some(ErrorCode::NsecProofMissing));
}

/// A gap in one zone does not defer a root whose evidence also shows up in
/// a fully observed zone: partial observation elsewhere is not an excuse.
#[test]
fn resolve_keeps_roots_with_evidence_outside_gapped_zones() {
    let gapped = name(LEAF_APEX);
    let observed = name("par.a.com");
    let report = report_with(vec![
        zone_report(
            &gapped,
            vec![absence_error(&gapped)],
            vec![ErrorDetail::Note("truncated".into())],
        ),
        zone_report(&observed, vec![absence_error(&observed)], Vec::new()),
    ]);
    let res = resolve(&report, &bare_context(&gapped));
    assert!(res.deferred.is_empty());
    assert_eq!(res.addressed, Some(ErrorCode::NsecProofMissing));
}
