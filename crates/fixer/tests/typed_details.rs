//! DResolver consumes typed [`ErrorDetail`] payloads, not detail strings.
//!
//! Each test replicates one detail-carrying error code, greps the resulting
//! report for the typed payload grok attached, and asserts the plan DResolver
//! builds is derived from that payload — the grok↔DFixer contract that used
//! to travel through free-form strings.

use ddx_dnsviz::{grok, probe, DsProblem, ErrorCode, ErrorDetail, GrokReport};
use ddx_fixer::{
    run_fixer, run_naive, suggest, FixerOptions, Instruction, InstructionKind, Resolution,
    ServerFlavor,
};
use ddx_replicator::{replicate, Nsec3Meta, Replication, ReplicationRequest, ZoneMeta};

const NOW: u32 = 1_000_000;

/// Replicates `code` solo and returns the replication, the grok report, and
/// the first resolution DFixer would act on.
fn replicate_and_resolve(code: ErrorCode, nsec3: bool) -> (Replication, GrokReport, Resolution) {
    let mut meta = ZoneMeta::default();
    if nsec3 {
        meta.nsec3 = Some(Nsec3Meta {
            iterations: 0,
            salt_len: 0,
            opt_out: false,
        });
    }
    let req = ReplicationRequest {
        meta,
        intended: [code].into_iter().collect(),
    };
    let rep = replicate(&req, NOW, 0x7D7D).expect("replication builds");
    assert!(rep.skipped.is_empty(), "{code} skipped: {:?}", rep.skipped);
    let cfg = rep.probe.clone();
    let report = grok(&probe(&rep.sandbox.testbed, &cfg));
    assert!(
        report.codes().contains(&code),
        "{code} not generated: {:?}",
        report.codes()
    );
    let (_, resolution, _) = suggest(&rep.sandbox, &cfg, ServerFlavor::Bind);
    (rep, report, resolution)
}

/// The typed details attached to every instance of `code` in the report.
fn details_for(report: &GrokReport, code: ErrorCode) -> Vec<ErrorDetail> {
    report
        .errors()
        .filter(|e| e.code == code)
        .map(|e| e.detail.clone())
        .collect()
}

#[test]
fn ttl_details_drive_reduce_ttl_instructions() {
    let (_, _report, resolution) = replicate_and_resolve(ErrorCode::OriginalTtlExceeded, false);
    assert_eq!(resolution.addressed, Some(ErrorCode::OriginalTtlExceeded));
    let details = &resolution.addressed_details;
    assert!(!details.is_empty(), "no typed details captured");
    for d in details {
        let ErrorDetail::TtlExceedsOriginal {
            name,
            rtype,
            ttl,
            original_ttl,
        } = d
        else {
            panic!("expected TtlExceedsOriginal, got {d:?}");
        };
        assert!(ttl > original_ttl, "served TTL must exceed the signed one");
        // The plan lowers exactly this RRset back to the signed TTL — the
        // typed payload is the only place that value exists.
        assert!(
            resolution.plan.iter().any(|i| matches!(
                i,
                Instruction::ReduceTtl { name: n, rtype: t, ttl: v }
                    if n == name && t == rtype && v == original_ttl
            )),
            "no ReduceTtl for {name} {rtype} → {original_ttl}: {:?}",
            resolution.plan
        );
    }
    // The minimal fix: TTL reduction alone, no re-sign.
    assert!(
        !resolution
            .plan
            .iter()
            .any(|i| i.kind() == InstructionKind::SignZone),
        "TTL fix should not re-sign: {:?}",
        resolution.plan
    );
}

#[test]
fn revoked_ds_detail_key_tag_matches_removed_key() {
    let (_, report, resolution) = replicate_and_resolve(ErrorCode::DsReferencesRevokedKey, false);
    let details = details_for(&report, ErrorCode::DsReferencesRevokedKey);
    assert!(!details.is_empty());
    for d in &details {
        let ErrorDetail::DsLink {
            key_tag, problem, ..
        } = d
        else {
            panic!("expected DsLink, got {d:?}");
        };
        assert_eq!(*problem, DsProblem::ReferencesRevoked);
        // The key the DS names is the key the plan deletes.
        assert!(
            resolution.plan.iter().any(|i| matches!(
                i,
                Instruction::RemoveRevokedKey { key_tag: t } if t == key_tag
            )),
            "no RemoveRevokedKey for tag {key_tag}: {:?}",
            resolution.plan
        );
    }
}

#[test]
fn key_length_detail_matches_removed_key() {
    let (_, report, resolution) = replicate_and_resolve(ErrorCode::KeyLengthTooShort, false);
    let details = details_for(&report, ErrorCode::KeyLengthTooShort);
    assert!(!details.is_empty());
    for d in &details {
        let ErrorDetail::KeyLength { key_tag, bits, .. } = d else {
            panic!("expected KeyLength, got {d:?}");
        };
        assert!(*bits < 512, "replicated short key is {bits} bits");
        assert!(
            resolution.plan.iter().any(|i| matches!(
                i,
                Instruction::RemoveInvalidKey { key_tag: t } if t == key_tag
            )),
            "no RemoveInvalidKey for tag {key_tag}: {:?}",
            resolution.plan
        );
    }
}

#[test]
fn signature_failure_detail_carries_verify_error() {
    let (_, report, resolution) = replicate_and_resolve(ErrorCode::RrsigExpired, false);
    let details = details_for(&report, ErrorCode::RrsigExpired);
    assert!(!details.is_empty());
    for d in &details {
        let ErrorDetail::SignatureFailure { error, .. } = d else {
            panic!("expected SignatureFailure, got {d:?}");
        };
        assert!(
            matches!(error, ddx_dnssec::VerifyError::Expired { expiration, now }
                if expiration < now),
            "expected Expired window, got {error:?}"
        );
        assert!(d.rrset().is_some(), "failure names the affected RRset");
    }
    assert!(resolution
        .plan
        .iter()
        .any(|i| i.kind() == InstructionKind::SignZone));
}

#[test]
fn rrset_unsigned_detail_names_the_bare_rrset() {
    let (_, report, resolution) = replicate_and_resolve(ErrorCode::RrsigMissing, false);
    let details = details_for(&report, ErrorCode::RrsigMissing);
    assert!(!details.is_empty());
    for d in &details {
        let ErrorDetail::RrsetUnsigned { .. } = d else {
            panic!("expected RrsetUnsigned, got {d:?}");
        };
        assert!(d.rrset().is_some());
    }
    assert!(resolution
        .plan
        .iter()
        .any(|i| i.kind() == InstructionKind::SignZone));
}

#[test]
fn nsec3_iterations_detail_reports_nonzero_count() {
    let (_, report, resolution) = replicate_and_resolve(ErrorCode::Nsec3IterationsNonzero, true);
    let details = details_for(&report, ErrorCode::Nsec3IterationsNonzero);
    assert!(!details.is_empty());
    for d in &details {
        let ErrorDetail::Nsec3Iterations { iterations } = d else {
            panic!("expected Nsec3Iterations, got {d:?}");
        };
        assert!(*iterations > 0);
    }
    // The fix re-signs with RFC 9276-compliant parameters.
    assert!(
        resolution.plan.iter().any(|i| matches!(
            i,
            Instruction::SignZone { nsec3: Some(cfg) } if cfg.iterations == 0
        )),
        "no compliant re-sign: {:?}",
        resolution.plan
    );
}

#[test]
fn inconsistent_keyset_detail_flags_server_and_plan_syncs() {
    let (_, report, resolution) = replicate_and_resolve(ErrorCode::DnskeyInconsistentRrset, false);
    let details = details_for(&report, ErrorCode::DnskeyInconsistentRrset);
    assert!(!details.is_empty());
    for d in &details {
        let ErrorDetail::ServerKeySetDiffers { disjoint, .. } = d else {
            panic!("expected ServerKeySetDiffers, got {d:?}");
        };
        assert!(*disjoint, "injector replaces the whole keyset");
    }
    assert!(resolution
        .plan
        .iter()
        .any(|i| i.kind() == InstructionKind::SyncAuthServers));
}

#[test]
fn addressed_details_mirror_report_evidence() {
    for (code, nsec3) in [
        (ErrorCode::OriginalTtlExceeded, false),
        (ErrorCode::RrsigExpired, false),
        (ErrorCode::Nsec3IterationsNonzero, true),
    ] {
        let (_, report, resolution) = replicate_and_resolve(code, nsec3);
        let addressed = resolution.addressed.expect("one cause addressed");
        assert_eq!(
            resolution.addressed_details,
            details_for(&report, addressed),
            "{code}: Resolution must carry exactly the addressed code's details"
        );
    }
}

#[test]
fn replicator_records_intended_typed_detail() {
    let (rep, report, _) = replicate_and_resolve(ErrorCode::OriginalTtlExceeded, false);
    let (code, intended) = &rep.injected[0];
    assert_eq!(*code, ErrorCode::OriginalTtlExceeded);
    // The injector's intended payload and grok's observation agree on the
    // signed TTL it inflated.
    let ErrorDetail::TtlExceedsOriginal { original_ttl, .. } = intended else {
        panic!("expected TtlExceedsOriginal, got {intended:?}");
    };
    assert!(details_for(&report, *code).iter().any(|d| matches!(
        d,
        ErrorDetail::TtlExceedsOriginal { original_ttl: o, .. } if o == original_ttl
    )));
}

#[test]
fn iteration_logs_carry_typed_details_and_naive_does_not() {
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: [ErrorCode::RrsigExpired].into_iter().collect(),
    };
    let mut rep = replicate(&req, NOW, 0x10C5).expect("replication builds");
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed);
    assert!(
        run.iterations
            .iter()
            .any(|it| !it.addressed_details.is_empty()),
        "fixer iterations must log the typed evidence they acted on"
    );

    let mut rep = replicate(&req, NOW, 0x10C5).expect("replication builds");
    let cfg = rep.probe.clone();
    let run = run_naive(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(
        run.iterations
            .iter()
            .all(|it| it.addressed_details.is_empty()),
        "the naive baseline never attributes causes"
    );
}

#[cfg(feature = "trace")]
#[test]
fn fixer_emits_trace_events_per_iteration() {
    ddx_dns::trace::take_events(); // drain anything earlier tests left
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: [ErrorCode::RrsigExpired].into_iter().collect(),
    };
    let mut rep = replicate(&req, NOW, 0x7ACE).expect("replication builds");
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed);
    let events = ddx_dns::trace::take_events();
    let plan_events: Vec<_> = events
        .iter()
        .filter(|e| e.target == "fixer::engine" && e.message == "plan built")
        .collect();
    assert_eq!(
        plan_events.len(),
        run.iterations.len(),
        "one plan event per iteration: {events:#?}"
    );
    assert!(plan_events
        .iter()
        .all(|e| e.fields.iter().any(|(k, _)| *k == "iteration")));
}
