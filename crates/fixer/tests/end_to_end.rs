//! End-to-end DFixer validation: replicate each error with ZReplicator,
//! run the iterative fixer, and require a clean re-verification — the
//! test-fix-verify cycle of paper §4.5/§5.

use std::collections::BTreeSet;

use ddx_dnsviz::{grok, probe, ErrorCode, SnapshotStatus};
use ddx_fixer::{run_fixer, run_naive, suggest, FixerOptions, InstructionKind, ServerFlavor};
use ddx_replicator::{replicate, Nsec3Meta, ReplicationRequest, ZoneMeta};

const NOW: u32 = 1_000_000;

fn request(codes: &[ErrorCode], nsec3: bool) -> ReplicationRequest {
    let mut meta = ZoneMeta::default();
    if nsec3 {
        meta.nsec3 = Some(Nsec3Meta {
            iterations: 0,
            salt_len: 0,
            opt_out: false,
        });
    }
    ReplicationRequest {
        meta,
        intended: codes.iter().copied().collect(),
    }
}

fn needs_nsec3(code: ErrorCode) -> bool {
    use ErrorCode::*;
    matches!(
        code,
        Nsec3ProofMissing
            | Nsec3BitmapAssertsType
            | Nsec3CoverageBroken
            | Nsec3MissingWildcardProof
            | Nsec3ParamMismatch
            | Nsec3IterationsNonzero
            | Nsec3OptOutViolation
            | Nsec3UnsupportedAlgorithm
            | Nsec3NoClosestEncloser
    )
}

#[test]
fn dfixer_resolves_every_replicable_error_solo() {
    let mut failures = Vec::new();
    for code in ErrorCode::ALL {
        if !code.replicable() {
            continue;
        }
        let req = request(&[code], needs_nsec3(code));
        let mut rep = replicate(&req, NOW, 0xFADE).expect("replicates");
        assert!(rep.skipped.is_empty(), "{code} skipped: {:?}", rep.skipped);
        let cfg = rep.probe.clone();
        let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
        if !run.fixed {
            failures.push(format!(
                "{code}: NOT fixed after {} iterations; final {:?} ({})",
                run.iterations.len(),
                run.final_errors,
                run.final_status
            ));
        } else if run.iterations.len() > 4 {
            failures.push(format!(
                "{code}: took {} iterations (paper: ≤4)",
                run.iterations.len()
            ));
        }
    }
    assert!(failures.is_empty(), "fix gaps:\n{}", failures.join("\n"));
}

#[test]
fn fig8_revoked_ksk_with_linked_ds() {
    // The Appendix Fig 8 scenario: the zone's only KSK is revoked and a DS
    // references it.
    let req = request(&[ErrorCode::DsReferencesRevokedKey], false);
    let mut rep = replicate(&req, NOW, 0xF18).unwrap();
    let cfg = rep.probe.clone();

    // Suggest-only first: the plan should follow the Fig 8 shape.
    let (_report, resolution, commands) = suggest(&rep.sandbox, &cfg, ServerFlavor::Bind);
    let kinds: Vec<InstructionKind> = resolution.plan.iter().map(|i| i.kind()).collect();
    assert!(kinds.contains(&InstructionKind::GenerateKsk), "{kinds:?}");
    assert!(kinds.contains(&InstructionKind::UploadDs));
    assert!(kinds.contains(&InstructionKind::RemoveIncorrectDs));
    assert!(kinds.contains(&InstructionKind::WaitTtl));
    assert!(kinds.contains(&InstructionKind::RemoveRevokedKey));
    assert!(kinds.contains(&InstructionKind::SignZone));
    // Ordering: generate before upload before removal before wait before
    // key deletion before re-sign (Fig 8 steps 1→7).
    let pos = |k: InstructionKind| kinds.iter().position(|x| *x == k).unwrap();
    assert!(pos(InstructionKind::GenerateKsk) < pos(InstructionKind::UploadDs));
    assert!(pos(InstructionKind::UploadDs) < pos(InstructionKind::RemoveIncorrectDs));
    assert!(pos(InstructionKind::RemoveIncorrectDs) < pos(InstructionKind::WaitTtl));
    assert!(pos(InstructionKind::WaitTtl) < pos(InstructionKind::RemoveRevokedKey));
    assert!(pos(InstructionKind::RemoveRevokedKey) < pos(InstructionKind::SignZone));
    // Commands include the dnssec-keygen invocation with -f KSK.
    assert!(commands
        .iter()
        .any(|c| c.line.contains("dnssec-keygen -f KSK")));

    // Auto-apply: converges.
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed, "final errors {:?}", run.final_errors);
}

#[test]
fn independent_errors_take_multiple_iterations() {
    // NZIC + extraneous DS (paper §5.4): DS removed first, zone re-signed
    // with zero iterations second.
    let req = request(
        &[
            ErrorCode::Nsec3IterationsNonzero,
            ErrorCode::DsMissingKeyForAlgorithm,
        ],
        true,
    );
    let mut rep = replicate(&req, NOW, 0x1234).unwrap();
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed, "final errors {:?}", run.final_errors);
    assert!(
        run.iterations.len() >= 2,
        "expected incremental fixing, got {} iterations",
        run.iterations.len()
    );
    // Iteration 1 addresses the delegation problem.
    let first = &run.iterations[0];
    assert!(first
        .plan
        .iter()
        .any(|i| i.kind() == InstructionKind::RemoveIncorrectDs));
    // A later iteration re-signs with compliant NSEC3 parameters.
    let resign = run
        .iterations
        .iter()
        .flat_map(|it| it.plan.iter())
        .find_map(|i| match i {
            ddx_fixer::Instruction::SignZone { nsec3: Some(cfg) } => Some(cfg.clone()),
            _ => None,
        })
        .expect("an NSEC3 re-sign happens");
    assert_eq!(resign.iterations, 0);
}

#[test]
fn combined_revoked_ksk_scenario_single_iteration() {
    // Paper §5.4: revoked KSK + missing DNSKEY signature + invalid DS all
    // share one root cause and should clear in a single pass.
    let req = request(&[ErrorCode::DsReferencesRevokedKey], false);
    let mut rep = replicate(&req, NOW, 0x777).unwrap();
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed);
    assert!(
        run.iterations.len() <= 2,
        "single root cause should clear in 1-2 iterations, took {}",
        run.iterations.len()
    );
}

#[test]
fn naive_baseline_fails_on_extraneous_ds() {
    // The Appendix A.2 test zone: extraneous DS with an algorithm no DNSKEY
    // carries. The naive planner uploads DS records but never removes the
    // bad one, so the error persists; DFixer clears it.
    let req = request(&[ErrorCode::DsMissingKeyForAlgorithm], false);

    let mut naive_rep = replicate(&req, NOW, 0xAAA).unwrap();
    let cfg = naive_rep.probe.clone();
    let naive_run = run_naive(&mut naive_rep.sandbox, &cfg, &FixerOptions::default());
    assert!(
        !naive_run.fixed,
        "naive baseline unexpectedly fixed the extraneous DS"
    );
    assert!(naive_run
        .final_errors
        .contains(&ErrorCode::DsMissingKeyForAlgorithm));

    let mut dfixer_rep = replicate(&req, NOW, 0xAAA).unwrap();
    let cfg = dfixer_rep.probe.clone();
    let run = run_fixer(&mut dfixer_rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed);
}

#[test]
fn naive_baseline_loses_nsec3_parameters() {
    // An NSEC3 zone with a broken chain: the naive fix re-signs with plain
    // NSEC defaults, silently changing the denial mechanism.
    let req = request(&[ErrorCode::Nsec3CoverageBroken], true);
    let mut rep = replicate(&req, NOW, 0xBBB).unwrap();
    let cfg = rep.probe.clone();
    let run = run_naive(&mut rep.sandbox, &cfg, &FixerOptions::default());
    // It may resolve the error, but the zone is now NSEC.
    let leaf_apex = rep.sandbox.leaf().apex.clone();
    let server = rep.sandbox.leaf().servers[0].clone();
    let zone = rep
        .sandbox
        .testbed
        .server(&server)
        .unwrap()
        .zone(&leaf_apex)
        .unwrap();
    let has_nsec3 = zone.rrsets().any(|s| s.rtype == ddx_dns::RrType::Nsec3);
    assert!(!has_nsec3, "naive re-sign should have dropped NSEC3");
    let _ = run;
}

#[test]
fn unfixable_parent_breakage_reported_honestly() {
    // Break the PARENT zone (DS present, DNSKEY stripped) — the condition
    // behind the paper's five unfixed S2 snapshots. DFixer, operating on
    // the child, must report failure rather than claim success.
    let req = request(&[], false);
    let mut rep = replicate(&req, NOW, 0xCCC).unwrap();
    let parent = ddx_replicator::parent_apex();
    rep.sandbox.testbed.mutate_zone_everywhere(&parent, |zone| {
        zone.strip_type(ddx_dns::RrType::Dnskey);
    });
    let cfg = rep.probe.clone();
    let report = grok(&probe(&rep.sandbox.testbed, &cfg));
    assert_eq!(report.status, SnapshotStatus::Sb);
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(!run.fixed, "child-side DFixer cannot repair the parent");
    assert!(!run.final_errors.is_empty());
}

#[test]
fn suggest_mode_is_side_effect_free() {
    let req = request(&[ErrorCode::RrsigExpired], false);
    let rep = replicate(&req, NOW, 0xDDD).unwrap();
    let cfg = rep.probe.clone();
    let before = grok(&probe(&rep.sandbox.testbed, &cfg));
    let (_, resolution, commands) = suggest(&rep.sandbox, &cfg, ServerFlavor::Bind);
    assert!(!resolution.plan.is_empty());
    assert!(!commands.is_empty());
    let after = grok(&probe(&rep.sandbox.testbed, &cfg));
    assert_eq!(before.codes(), after.codes(), "suggest must not mutate");
}

#[test]
fn all_flavors_render_fig8_plan() {
    let req = request(&[ErrorCode::DsReferencesRevokedKey], false);
    let rep = replicate(&req, NOW, 0xEEE).unwrap();
    let cfg = rep.probe.clone();
    for flavor in ServerFlavor::ALL {
        let (_, resolution, commands) = suggest(&rep.sandbox, &cfg, flavor);
        assert!(!resolution.plan.is_empty());
        assert!(
            commands.len() >= resolution.plan.len(),
            "{flavor:?} rendered too few commands"
        );
    }
}

#[test]
fn multi_error_stress_combinations() {
    // Random-ish composites across categories.
    let combos: Vec<Vec<ErrorCode>> = vec![
        vec![ErrorCode::RrsigExpired, ErrorCode::OriginalTtlExceeded],
        vec![ErrorCode::RrsigMissing, ErrorCode::DsDigestInvalid],
        vec![
            ErrorCode::DnskeyAlgorithmWithoutRrsig,
            ErrorCode::RrsigExpired,
        ],
        vec![
            ErrorCode::KeyLengthTooShort,
            ErrorCode::RrsigMissingFromServers,
        ],
        vec![
            ErrorCode::Nsec3IterationsNonzero,
            ErrorCode::Nsec3ParamMismatch,
        ],
    ];
    for (i, combo) in combos.iter().enumerate() {
        let nsec3 = combo.iter().any(|c| needs_nsec3(*c));
        let req = request(combo, nsec3);
        let mut rep = replicate(&req, NOW, 0x5000 + i as u64).unwrap();
        let intended: BTreeSet<ErrorCode> = rep.injected.iter().map(|(c, _)| *c).collect();
        let cfg = rep.probe.clone();
        // Verify replication first (IE ⊆ GE).
        let report = grok(&probe(&rep.sandbox.testbed, &cfg));
        let generated = report.codes();
        for code in &intended {
            assert!(generated.contains(code), "combo {i}: {code} not generated");
        }
        let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
        assert!(
            run.fixed,
            "combo {i} {combo:?} not fixed: {:?}",
            run.final_errors
        );
        assert!(
            run.iterations.len() <= 4,
            "combo {i} took {} iterations",
            run.iterations.len()
        );
    }
}

#[test]
fn cds_mode_repairs_ds_errors_without_registrar_steps() {
    // §5.5.2 extension: with CDS/CDNSKEY enabled, the same stale-DS zone is
    // repaired entirely through in-band publication — the parent's scanner
    // installs the advertised set; no registrar round trip appears.
    let req = request(&[ErrorCode::DsDigestInvalid], false);
    let mut rep = replicate(&req, NOW, 0xCD5).unwrap();
    let cfg = rep.probe.clone();
    let opts = FixerOptions {
        use_cds: true,
        ..Default::default()
    };
    let run = run_fixer(&mut rep.sandbox, &cfg, &opts);
    assert!(run.fixed, "residual {:?}", run.final_errors);
    // The plan used CDS publication, not UploadDs/RemoveIncorrectDs.
    let kinds: Vec<InstructionKind> = run
        .iterations
        .iter()
        .flat_map(|it| it.plan.iter().map(|i| i.kind()))
        .collect();
    assert!(kinds.contains(&InstructionKind::PublishCds), "{kinds:?}");
    assert!(!kinds.contains(&InstructionKind::UploadDs));
    assert!(!kinds.contains(&InstructionKind::RemoveIncorrectDs));
    // No registrar-manual commands in the rendered output.
    for it in &run.iterations {
        for c in &it.commands {
            assert!(
                !(c.manual && c.note.contains("via your registrar")),
                "unexpected registrar step: {c}"
            );
        }
    }
}

#[test]
fn cds_mode_handles_revoked_ksk_flow() {
    let req = request(&[ErrorCode::DsReferencesRevokedKey], false);
    let mut rep = replicate(&req, NOW, 0xCD6).unwrap();
    let cfg = rep.probe.clone();
    let opts = FixerOptions {
        use_cds: true,
        ..Default::default()
    };
    let run = run_fixer(&mut rep.sandbox, &cfg, &opts);
    assert!(run.fixed, "residual {:?}", run.final_errors);
    assert!(run.iterations.len() <= 3);
}

#[test]
fn suggest_remote_plans_without_sandbox_knowledge() {
    use ddx_fixer::suggest_remote;
    // The remote mode only sees what the servers publish — it must still
    // identify the root cause and produce the same instruction kinds.
    for (codes, nsec3) in [
        (vec![ErrorCode::RrsigExpired], false),
        (vec![ErrorCode::DsReferencesRevokedKey], false),
        (vec![ErrorCode::Nsec3IterationsNonzero], true),
        (vec![ErrorCode::DsDigestInvalid], false),
    ] {
        let req = request(&codes, nsec3);
        let rep = replicate(&req, NOW, 0x4E40).unwrap();
        let (report, remote, _) =
            suggest_remote(&rep.sandbox.testbed, &rep.probe, ServerFlavor::Bind);
        let (_, local, _) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::Bind);
        assert_eq!(remote.addressed, local.addressed, "codes {codes:?}");
        let remote_kinds: BTreeSet<InstructionKind> =
            remote.plan.iter().map(|i| i.kind()).collect();
        let local_kinds: BTreeSet<InstructionKind> = local.plan.iter().map(|i| i.kind()).collect();
        assert_eq!(remote_kinds, local_kinds, "codes {codes:?}: {report:?}");
    }
}

#[test]
fn suggest_remote_infers_nsec3_parameters() {
    use ddx_fixer::suggest_remote;
    // An NZIC zone: the remote plan must re-sign with compliant NSEC3
    // (mechanism inferred from the NSEC3PARAM answer, not from a ring).
    let req = request(&[ErrorCode::Nsec3IterationsNonzero], true);
    let rep = replicate(&req, NOW, 0x4E41).unwrap();
    let (_, resolution, _) = suggest_remote(&rep.sandbox.testbed, &rep.probe, ServerFlavor::Bind);
    let sign = resolution
        .plan
        .iter()
        .find_map(|i| match i {
            ddx_fixer::Instruction::SignZone { nsec3: Some(cfg) } => Some(cfg.clone()),
            _ => None,
        })
        .expect("NSEC3 re-sign plan");
    assert_eq!(sign.iterations, 0, "plan must target RFC 9276 compliance");
}
