//! The error dependency graph (paper §4.3 step 2): which error codes are
//! *cascades* of which root causes. Topologically ordering the codes present
//! in a report lets DResolver address causes before symptoms — the key
//! advantage over diagnostic-only tools and naive LLM suggestions.

use std::collections::BTreeSet;

use ddx_dnsviz::ErrorCode;

/// Directed edges `cause → effect`: when both codes appear in one report,
/// the effect is (very likely) a cascade of the cause and needs no separate
/// remediation.
pub fn cascades_of(cause: ErrorCode) -> &'static [ErrorCode] {
    use ErrorCode::*;
    match cause {
        // A DS referencing a revoked key breaks the entry point and often
        // coincides with the revoked-SEP condition.
        DsReferencesRevokedKey => &[NoSecureEntryPoint, DnskeyRevokedNoOtherSep, DsDigestInvalid],
        // A revoked sole SEP invalidates the delegation.
        DnskeyRevokedNoOtherSep => &[NoSecureEntryPoint],
        // Any broken DS ↔ DNSKEY linkage ends with no secure entry point.
        DsDigestInvalid | DsAlgorithmMismatch | DsUnknownDigestType => &[NoSecureEntryPoint],
        DsMissingKeyForAlgorithm => &[NoSecureEntryPoint, DsAlgorithmWithoutRrsig],
        // Missing DNSKEY RRset cascades into everything signature-shaped.
        DnskeyMissingForDs => &[
            NoSecureEntryPoint,
            RrsigMissing,
            RrsigMissingForDnskey,
            RrsigUnknownKeyTag,
        ],
        // A key absent from one server makes that server's RRSIGs orphans.
        DnskeyMissingFromServers => &[RrsigUnknownKeyTag, RrsigAlgorithmWithoutDnskey],
        DnskeyInconsistentRrset => &[
            RrsigUnknownKeyTag,
            RrsigAlgorithmWithoutDnskey,
            RrsigMissingFromServers,
        ],
        // A revoked key signing data shows up as unusable signatures.
        RevokedKeyInUse => &[RrsigInvalidRdata],
        // A stray short key also fails algorithm completeness.
        KeyLengthTooShort | KeyLengthInvalidForAlgorithm => &[DnskeyAlgorithmWithoutRrsig],
        // Expired signatures imply the TTL-vs-expiry warning.
        RrsigExpired => &[TtlBeyondSignatureExpiry],
        // Unsigned-algorithm gaps surface per-RRset too.
        DsAlgorithmWithoutRrsig => &[DnskeyAlgorithmWithoutRrsig],
        // Broken NSEC3 coverage implies the more specific CE/wildcard codes.
        Nsec3NoClosestEncloser => &[Nsec3CoverageBroken],
        Nsec3CoverageBroken => &[Nsec3MissingWildcardProof],
        NsecCoverageBroken => &[NsecMissingWildcardProof],
        // A fully missing chain implies every coverage-level code.
        NsecProofMissing => &[
            NsecCoverageBroken,
            NsecMissingWildcardProof,
            LastNsecNotApex,
        ],
        Nsec3ProofMissing => &[
            Nsec3CoverageBroken,
            Nsec3MissingWildcardProof,
            Nsec3NoClosestEncloser,
        ],
        // A tripped validation budget truncates the analysis: the partial
        // signature/denial findings collected before the cut are symptoms of
        // the same KeyTrap-style material, not independent problems.
        ValidationBudgetExceeded => &[
            RrsigInvalid,
            RrsigUnknownKeyTag,
            RrsigAlgorithmWithoutDnskey,
            RrsigMissingFromServers,
            Nsec3IterationsNonzero,
        ],
        _ => &[],
    }
}

/// Returns the root causes among `present`: codes that are not a cascade of
/// any *other* present code, ordered so that deeper causes come first.
pub fn root_causes(present: &BTreeSet<ErrorCode>) -> Vec<ErrorCode> {
    let mut effects: BTreeSet<ErrorCode> = BTreeSet::new();
    for &code in present {
        for &effect in cascades_of(code) {
            if present.contains(&effect) && effect != code {
                effects.insert(effect);
            }
        }
    }
    // Topological-ish order: non-effects (roots) in canonical code order.
    present
        .iter()
        .copied()
        .filter(|c| !effects.contains(c))
        .collect()
}

/// Orders all present codes root-first (roots, then their cascades) — the
/// "topological ordering" of the paper's pipeline.
pub fn topological_order(present: &BTreeSet<ErrorCode>) -> Vec<ErrorCode> {
    let roots = root_causes(present);
    let mut out = roots.clone();
    for code in present {
        if !out.contains(code) {
            out.push(*code);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(codes: &[ErrorCode]) -> BTreeSet<ErrorCode> {
        codes.iter().copied().collect()
    }

    #[test]
    fn cascade_collapses_to_root() {
        // The paper's Figure 8 scenario: revoked KSK linked to a DS.
        let present = set(&[
            ErrorCode::DsReferencesRevokedKey,
            ErrorCode::NoSecureEntryPoint,
            ErrorCode::DnskeyRevokedNoOtherSep,
        ]);
        let roots = root_causes(&present);
        assert_eq!(roots, vec![ErrorCode::DsReferencesRevokedKey]);
    }

    #[test]
    fn independent_errors_both_roots() {
        let present = set(&[
            ErrorCode::Nsec3IterationsNonzero,
            ErrorCode::DsMissingKeyForAlgorithm,
        ]);
        let roots = root_causes(&present);
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn missing_dnskey_masks_signature_errors() {
        let present = set(&[
            ErrorCode::DnskeyMissingForDs,
            ErrorCode::RrsigMissing,
            ErrorCode::RrsigUnknownKeyTag,
            ErrorCode::NoSecureEntryPoint,
        ]);
        let roots = root_causes(&present);
        assert_eq!(roots, vec![ErrorCode::DnskeyMissingForDs]);
    }

    #[test]
    fn topological_order_keeps_everything() {
        let present = set(&[
            ErrorCode::DsDigestInvalid,
            ErrorCode::NoSecureEntryPoint,
            ErrorCode::RrsigExpired,
            ErrorCode::TtlBeyondSignatureExpiry,
        ]);
        let ordered = topological_order(&present);
        assert_eq!(ordered.len(), 4);
        // Roots first.
        let pos = |c: ErrorCode| ordered.iter().position(|x| *x == c).unwrap();
        assert!(pos(ErrorCode::DsDigestInvalid) < pos(ErrorCode::NoSecureEntryPoint));
        assert!(pos(ErrorCode::RrsigExpired) < pos(ErrorCode::TtlBeyondSignatureExpiry));
    }

    #[test]
    fn graph_is_acyclic() {
        // DFS from every node must never revisit the start.
        fn reachable(from: ErrorCode, target: ErrorCode, depth: usize) -> bool {
            if depth > 64 {
                return true; // treat runaway depth as a cycle
            }
            cascades_of(from)
                .iter()
                .any(|&e| e == target || reachable(e, target, depth + 1))
        }
        for code in ErrorCode::ALL {
            assert!(!reachable(code, code, 0), "cycle through {code}");
        }
    }
}
