//! High-level remediation instructions — the vocabulary of DFixer plans
//! (paper Table 7) — and the zone context used to populate their
//! parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

use ddx_dns::{Ds, Name, RrType};
use ddx_dnssec::{Algorithm, DigestType, Nsec3Config};

/// The instruction kinds DFixer issues, matching the rows of Table 7 plus
/// the two auxiliary steps from the sample workflow (Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstructionKind {
    SignZone,
    RemoveIncorrectDs,
    UploadDs,
    GenerateKsk,
    SyncAuthServers,
    GenerateZsk,
    ReduceTtl,
    RemoveRevokedKey,
    /// Auxiliary: remove a non-revoked but invalid key (e.g. bad length).
    RemoveInvalidKey,
    /// Auxiliary: wait out a TTL before the next step (Fig 8 step 5).
    WaitTtl,
    /// Extension (paper §5.5.2): publish CDS/CDNSKEY so the parent updates
    /// the DS set automatically (RFC 7344/8078) instead of a registrar
    /// round trip.
    PublishCds,
}

impl InstructionKind {
    /// Table 7 row label.
    pub fn label(self) -> &'static str {
        match self {
            InstructionKind::SignZone => "Sign the zone",
            InstructionKind::RemoveIncorrectDs => "Remove the incorrect DS record",
            InstructionKind::UploadDs => "Upload the DS record",
            InstructionKind::GenerateKsk => "Generate a KSK",
            InstructionKind::SyncAuthServers => "Synchronize the DNS authoritative server",
            InstructionKind::GenerateZsk => "Generate ZSK",
            InstructionKind::ReduceTtl => "Reduce TTL of a specific record",
            InstructionKind::RemoveRevokedKey => "Remove the revoked key",
            InstructionKind::RemoveInvalidKey => "Remove the invalid key",
            InstructionKind::WaitTtl => "Wait for TTL expiry",
            InstructionKind::PublishCds => "Publish CDS/CDNSKEY records",
        }
    }

    /// The eight rows reported in Table 7, in the paper's order.
    pub const TABLE7: [InstructionKind; 8] = [
        InstructionKind::SignZone,
        InstructionKind::RemoveIncorrectDs,
        InstructionKind::UploadDs,
        InstructionKind::GenerateKsk,
        InstructionKind::SyncAuthServers,
        InstructionKind::GenerateZsk,
        InstructionKind::ReduceTtl,
        InstructionKind::RemoveRevokedKey,
    ];
}

impl fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One concrete, parameterized remediation step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// Re-sign the zone, optionally switching denial parameters (e.g. to
    /// RFC 9276-compliant NSEC3 or plain NSEC).
    SignZone { nsec3: Option<Nsec3Config> },
    /// Remove one DS record at the registrar.
    RemoveIncorrectDs { ds: Ds },
    /// Generate and upload DS records for the zone's KSK(s).
    UploadDs { digest_type: DigestType },
    /// Generate a new key-signing key.
    GenerateKsk { algorithm: Algorithm, bits: u16 },
    /// Generate a new zone-signing key.
    GenerateZsk { algorithm: Algorithm, bits: u16 },
    /// Push the canonical signed zone to every authoritative server.
    SyncAuthServers,
    /// Lower the TTL of one RRset to `ttl`.
    ReduceTtl { name: Name, rtype: RrType, ttl: u32 },
    /// Deactivate and delete a revoked key (`dnssec-settime -D`).
    RemoveRevokedKey { key_tag: u16 },
    /// Deactivate and delete an invalid (non-revoked) key.
    RemoveInvalidKey { key_tag: u16 },
    /// Wait for caches to expire before continuing.
    WaitTtl { seconds: u32 },
    /// Publish CDS/CDNSKEY describing the desired DS set; a compliant
    /// parent installs it and drops everything else (RFC 7344/8078).
    PublishCds { digest_type: DigestType },
}

impl Instruction {
    pub fn kind(&self) -> InstructionKind {
        match self {
            Instruction::SignZone { .. } => InstructionKind::SignZone,
            Instruction::RemoveIncorrectDs { .. } => InstructionKind::RemoveIncorrectDs,
            Instruction::UploadDs { .. } => InstructionKind::UploadDs,
            Instruction::GenerateKsk { .. } => InstructionKind::GenerateKsk,
            Instruction::GenerateZsk { .. } => InstructionKind::GenerateZsk,
            Instruction::SyncAuthServers => InstructionKind::SyncAuthServers,
            Instruction::ReduceTtl { .. } => InstructionKind::ReduceTtl,
            Instruction::RemoveRevokedKey { .. } => InstructionKind::RemoveRevokedKey,
            Instruction::RemoveInvalidKey { .. } => InstructionKind::RemoveInvalidKey,
            Instruction::WaitTtl { .. } => InstructionKind::WaitTtl,
            Instruction::PublishCds { .. } => InstructionKind::PublishCds,
        }
    }

    /// Human-readable description (the "high-level instructions" DFixer
    /// prints above the concrete commands).
    pub fn describe(&self) -> String {
        match self {
            Instruction::SignZone { nsec3: None } => "Re-sign the zone (NSEC)".into(),
            Instruction::SignZone { nsec3: Some(cfg) } => format!(
                "Re-sign the zone with NSEC3 (iterations={}, salt {}, opt-out={})",
                cfg.iterations,
                if cfg.salt.is_empty() { "empty" } else { "set" },
                cfg.opt_out
            ),
            Instruction::RemoveIncorrectDs { ds } => format!(
                "Remove the incorrect DS record (key_tag={}, algorithm={}) at the registrar",
                ds.key_tag, ds.algorithm
            ),
            Instruction::UploadDs { digest_type } => format!(
                "Generate the DS record from the KSK (digest type {}) and upload it via the registrar",
                digest_type.code()
            ),
            Instruction::GenerateKsk { algorithm, bits } => {
                format!("Generate a new KSK key pair ({algorithm}, {bits} bits)")
            }
            Instruction::GenerateZsk { algorithm, bits } => {
                format!("Generate a new ZSK key pair ({algorithm}, {bits} bits)")
            }
            Instruction::SyncAuthServers => {
                "Synchronize the signed zone across all authoritative servers".into()
            }
            Instruction::ReduceTtl { name, rtype, ttl } => {
                format!("Reduce the TTL of {name} {rtype} to {ttl}")
            }
            Instruction::RemoveRevokedKey { key_tag } => {
                format!("Deactivate and delete the revoked DNSKEY (key_tag={key_tag})")
            }
            Instruction::RemoveInvalidKey { key_tag } => {
                format!("Deactivate and delete the invalid DNSKEY (key_tag={key_tag})")
            }
            Instruction::WaitTtl { seconds } => {
                format!("Wait at least {seconds}s for the removed records to expire from caches")
            }
            Instruction::PublishCds { digest_type } => format!(
                "Publish CDS/CDNSKEY records (digest type {}) and let the parent's scanner update the DS set",
                digest_type.code()
            ),
        }
    }
}

/// Zone context used to populate command parameters (paths, names,
/// algorithms) when rendering plans into shell commands.
#[derive(Debug, Clone)]
pub struct ZoneContext {
    pub zone: Name,
    /// Directory holding key files.
    pub key_dir: String,
    /// Path of the unsigned zone file.
    pub zone_file: String,
    /// Key file stems by tag, for `dnssec-settime`/`dnssec-dsfromkey`.
    pub key_files: Vec<(u16, String)>,
}

impl ZoneContext {
    pub fn new(zone: Name) -> Self {
        let stem = zone.to_string().trim_end_matches('.').replace('.', "_");
        ZoneContext {
            key_dir: format!("/etc/bind/keys/{stem}"),
            zone_file: format!("/etc/bind/zones/{stem}.db"),
            zone,
            key_files: Vec::new(),
        }
    }

    /// The key file stem for a tag, or a placeholder.
    pub fn key_file(&self, tag: u16) -> String {
        self.key_files
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, f)| f.clone())
            .unwrap_or_else(|| format!("K{}+XXX+{tag:05}", self.zone))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;

    #[test]
    fn kinds_cover_table7() {
        assert_eq!(InstructionKind::TABLE7.len(), 8);
        assert_eq!(InstructionKind::SignZone.label(), "Sign the zone");
        assert_eq!(
            InstructionKind::SyncAuthServers.label(),
            "Synchronize the DNS authoritative server"
        );
    }

    #[test]
    fn instruction_kind_mapping() {
        let i = Instruction::GenerateKsk {
            algorithm: Algorithm::EcdsaP256Sha256,
            bits: 256,
        };
        assert_eq!(i.kind(), InstructionKind::GenerateKsk);
        assert!(i.describe().contains("KSK"));
        let i = Instruction::SignZone {
            nsec3: Some(Nsec3Config::default()),
        };
        assert!(i.describe().contains("iterations=0"));
    }

    #[test]
    fn zone_context_paths() {
        let ctx = ZoneContext::new(name("inv-chd.par.a.com"));
        assert!(ctx.key_dir.contains("inv-chd_par_a_com"));
        assert!(ctx.key_file(12345).contains("12345"));
        let mut ctx = ctx;
        ctx.key_files
            .push((7, "Kinv-chd.par.a.com.+013+00007".into()));
        assert_eq!(ctx.key_file(7), "Kinv-chd.par.a.com.+013+00007");
    }
}
