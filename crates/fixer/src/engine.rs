//! The DFixer iterative engine (paper Fig 6): probe → grok → DResolver →
//! plan → (optionally) apply → re-verify, until no DNSSEC errors remain or
//! the iteration budget is exhausted. In the paper's evaluation no zone
//! needed more than four iterations; the default budget is six.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ddx_dns::RData;
use ddx_dnssec::{make_ds, KeyPair, KeyRole, SignerConfig};
use ddx_dnsviz::{
    grok, probe, ErrorCode, ErrorDetail, GrokMemo, GrokReport, ProbeConfig, SnapshotStatus,
};
use ddx_server::Sandbox;

use crate::commands::{render_plan, ServerFlavor, ShellCommand};
use crate::dresolver::{resolve, FixContext, Resolution};
use crate::instructions::{Instruction, ZoneContext};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct FixerOptions {
    /// Maximum probe→fix iterations.
    pub max_iterations: usize,
    /// Seed for key generation.
    pub seed: u64,
    /// Flavor used when rendering command lines for the log.
    pub flavor: ServerFlavor,
    /// Use CDS/CDNSKEY (RFC 7344/8078) for DS maintenance instead of manual
    /// registrar steps (paper §5.5.2 extension).
    pub use_cds: bool,
    /// Revalidate incrementally between iterations (generation-keyed
    /// [`GrokMemo`]): each fix mutates one zone, so only that zone (and its
    /// children, through the parent edge of the memo key) is re-probed and
    /// re-analyzed. Off = from-scratch probe→grok every iteration (the
    /// pre-memo behavior, kept as the benchmark baseline).
    pub incremental: bool,
}

impl Default for FixerOptions {
    fn default() -> Self {
        FixerOptions {
            max_iterations: 6,
            seed: 0xF1F1,
            flavor: ServerFlavor::Bind,
            use_cds: false,
            incremental: true,
        }
    }
}

/// What happened in one iteration.
#[derive(Debug, Clone)]
pub struct IterationLog {
    pub iteration: usize,
    pub status_before: SnapshotStatus,
    pub errors_before: BTreeSet<ErrorCode>,
    pub root_causes: Vec<ErrorCode>,
    pub addressed: Option<ErrorCode>,
    /// Typed details of the errors behind the addressed cause (empty for
    /// the naive baseline, which never attributes causes).
    pub addressed_details: Vec<ErrorDetail>,
    /// Absence-evidence root causes skipped because the probe could not
    /// fully observe the zones they were reported in (empty for the naive
    /// baseline, which prescribes regardless).
    pub deferred: Vec<ErrorCode>,
    pub plan: Vec<Instruction>,
    pub commands: Vec<ShellCommand>,
}

/// The outcome of a fix run.
#[derive(Debug, Clone)]
pub struct FixRun {
    pub iterations: Vec<IterationLog>,
    /// True when the final re-verification found no DNSSEC errors.
    pub fixed: bool,
    pub final_status: SnapshotStatus,
    pub final_errors: BTreeSet<ErrorCode>,
}

impl FixRun {
    /// All instructions issued, flattened (for Table 7 style histograms).
    pub fn instructions(&self) -> impl Iterator<Item = (&IterationLog, &Instruction)> {
        self.iterations
            .iter()
            .flat_map(|it| it.plan.iter().map(move |i| (it, i)))
    }
}

/// Feeds one iteration's outcome into the global metrics registry:
/// `fixer.iterations`, one `fixer.deferred{code=…}` bump per deferred root
/// cause, and one `fixer.instructions{kind=…}` bump per planned
/// instruction. Shared by the DFixer and naive harnesses so their runs are
/// comparable in one snapshot.
fn record_iteration_metrics(log: &IterationLog) {
    ddx_obs::counter("fixer.iterations", &[]).inc();
    for code in &log.deferred {
        ddx_obs::counter("fixer.deferred", &[("code", code.ident().as_str())]).inc();
    }
    for instr in &log.plan {
        let kind = format!("{:?}", instr.kind());
        ddx_obs::counter("fixer.instructions", &[("kind", kind.as_str())]).inc();
    }
}

/// Feeds a completed run's outcome into the registry, labeled by harness.
fn record_run_metrics(mode: &str, run: &FixRun) {
    ddx_obs::counter("fixer.runs", &[("mode", mode)]).inc();
    if run.fixed {
        ddx_obs::counter("fixer.fixed_runs", &[("mode", mode)]).inc();
    }
}

/// Builds the command-rendering context, populating the key-file names the
/// way BIND's key directory would (Fig 8 prints real `K<zone>+alg+tag`
/// stems).
fn zone_context(sb: &Sandbox) -> ZoneContext {
    let leaf = sb.leaf();
    let mut zc = ZoneContext::new(leaf.apex.clone());
    zc.key_files = leaf
        .ring
        .keys()
        .iter()
        .map(|k| (k.key_tag(), k.file_stem()))
        .collect();
    zc
}

/// Produces a suggest-only plan for the current state: one probe, one
/// resolution, rendered commands — nothing applied.
pub fn suggest(
    sb: &Sandbox,
    cfg: &ProbeConfig,
    flavor: ServerFlavor,
) -> (GrokReport, Resolution, Vec<ShellCommand>) {
    let report = grok(&probe(&sb.testbed, cfg));
    let ctx = FixContext::from_sandbox(sb, &report, cfg.time);
    let resolution = resolve(&report, &ctx);
    let zc = zone_context(sb);
    let commands = render_plan(&resolution.plan, &zc, flavor);
    (report, resolution, commands)
}

/// Suggest-only mode against an arbitrary network — no sandbox, no key
/// ring: DFixer probes the zone like DNSViz would and derives the plan
/// entirely from what the servers publish (the paper's dry-run deployment).
pub fn suggest_remote(
    net: &dyn ddx_server::Network,
    cfg: &ProbeConfig,
    flavor: ServerFlavor,
) -> (GrokReport, Resolution, Vec<ShellCommand>) {
    let probe_result = probe(net, cfg);
    let report = grok(&probe_result);
    let ctx = FixContext::from_probe(&report, &probe_result);
    let resolution = resolve(&report, &ctx);
    let zc = ZoneContext::new(ctx.zone.clone());
    let commands = render_plan(&resolution.plan, &zc, flavor);
    (report, resolution, commands)
}

/// One revalidation of the sandbox: incremental through the memo when
/// enabled, from-scratch probe→grok otherwise. The fixer always probes the
/// un-faulted testbed, so memoized observations are byte-identical to what
/// a fresh walk would see.
fn revalidate(
    sb: &Sandbox,
    probe_cfg: &ProbeConfig,
    opts: &FixerOptions,
    memo: &mut GrokMemo,
) -> GrokReport {
    if opts.incremental {
        memo.probe_grok(&sb.testbed, &sb.testbed, probe_cfg)
    } else {
        grok(&probe(&sb.testbed, probe_cfg))
    }
}

/// Runs DFixer in auto-apply mode against the sandbox until the zone
/// verifies clean or the iteration budget runs out.
pub fn run_fixer(sb: &mut Sandbox, cfg: &ProbeConfig, opts: &FixerOptions) -> FixRun {
    let mut memo = GrokMemo::new();
    run_fixer_with_memo(sb, cfg, opts, &mut memo)
}

/// [`run_fixer`] with a caller-provided [`GrokMemo`], so revalidation state
/// can persist across runs (the pipeline's probe→grok stage and the
/// `dfixer --watch` loop share one memo with the fixer).
pub fn run_fixer_with_memo(
    sb: &mut Sandbox,
    cfg: &ProbeConfig,
    opts: &FixerOptions,
    memo: &mut GrokMemo,
) -> FixRun {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut now = cfg.time;
    let mut iterations = Vec::new();
    let mut final_report = None;
    // Last in-loop report plus the sandbox fingerprint and clock it was
    // taken at — reused as the final verdict when nothing changed since.
    let mut last: Option<(GrokReport, u64, u32)> = None;

    for iteration in 1..=opts.max_iterations {
        let mut probe_cfg = cfg.clone();
        probe_cfg.time = now;
        let report = revalidate(sb, &probe_cfg, opts, memo);
        let report_fp = sb.state_fingerprint();
        let errors: BTreeSet<ErrorCode> = report.codes();
        if errors.is_empty() {
            final_report = Some(report);
            break;
        }
        let mut ctx = FixContext::from_sandbox(sb, &report, now);
        ctx.use_cds = opts.use_cds;
        let resolution = resolve(&report, &ctx);
        ddx_dns::trace_span!(
            _iter_span,
            target: "fixer::engine",
            "iteration",
            zone = ctx.zone,
            iteration = iteration,
            addressed = format!("{:?}", resolution.addressed),
        );
        let zc = zone_context(sb);
        let commands = render_plan(&resolution.plan, &zc, opts.flavor);
        let log = IterationLog {
            iteration,
            status_before: report.status,
            errors_before: errors,
            root_causes: resolution.root_causes.clone(),
            addressed: resolution.addressed,
            addressed_details: resolution.addressed_details.clone(),
            deferred: resolution.deferred.clone(),
            plan: resolution.plan.clone(),
            commands,
        };
        ddx_dns::trace_event!(
            target: "fixer::engine",
            "plan built",
            zone = ctx.zone,
            iteration = iteration,
            instructions = log.plan.len(),
        );
        let empty_plan = resolution.plan.is_empty();
        record_iteration_metrics(&log);
        let probed_at = now;
        now = apply_plan(sb, &resolution.plan, now, &mut rng);
        iterations.push(log);
        if empty_plan {
            // Nothing DFixer can do (e.g. the breakage is in a zone the
            // operator does not control).
            final_report = Some(report);
            break;
        }
        last = Some((report, report_fp, probed_at));
    }

    let final_report =
        final_report.unwrap_or_else(|| final_verdict(sb, cfg, opts, memo, now, last));
    let final_errors = final_report.codes();
    let run = FixRun {
        iterations,
        fixed: final_errors.is_empty(),
        final_status: final_report.status,
        final_errors,
    };
    record_run_metrics("dfixer", &run);
    run
}

/// The post-loop verdict: the last in-loop report is still authoritative
/// when neither the sandbox fingerprint nor the clock moved since it was
/// taken — otherwise one more revalidation runs. Skipping the redundant
/// re-grok is observable as `fixer.final_regrok_skipped`.
fn final_verdict(
    sb: &mut Sandbox,
    cfg: &ProbeConfig,
    opts: &FixerOptions,
    memo: &mut GrokMemo,
    now: u32,
    last: Option<(GrokReport, u64, u32)>,
) -> GrokReport {
    match last {
        Some((report, fp, probed_at)) if probed_at == now && fp == sb.state_fingerprint() => {
            ddx_obs::counter("fixer.final_regrok_skipped", &[]).inc();
            report
        }
        _ => {
            let mut probe_cfg = cfg.clone();
            probe_cfg.time = now;
            revalidate(sb, &probe_cfg, opts, memo)
        }
    }
}

/// Runs the naive baseline planner (paper Appendix A.2 stand-in) in the
/// same iterative harness, for head-to-head comparison with DFixer.
pub fn run_naive(sb: &mut Sandbox, cfg: &ProbeConfig, opts: &FixerOptions) -> FixRun {
    let mut memo = GrokMemo::new();
    run_naive_with_memo(sb, cfg, opts, &mut memo)
}

/// [`run_naive`] with a caller-provided [`GrokMemo`] (see
/// [`run_fixer_with_memo`]).
pub fn run_naive_with_memo(
    sb: &mut Sandbox,
    cfg: &ProbeConfig,
    opts: &FixerOptions,
    memo: &mut GrokMemo,
) -> FixRun {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut now = cfg.time;
    let mut iterations = Vec::new();
    let mut final_report = None;
    let mut last: Option<(GrokReport, u64, u32)> = None;

    for iteration in 1..=opts.max_iterations {
        let mut probe_cfg = cfg.clone();
        probe_cfg.time = now;
        let report = revalidate(sb, &probe_cfg, opts, memo);
        let report_fp = sb.state_fingerprint();
        let errors: BTreeSet<ErrorCode> = report.codes();
        if errors.is_empty() {
            final_report = Some(report);
            break;
        }
        let plan = crate::naive::naive_plan(&report);
        let zc = zone_context(sb);
        let commands = render_plan(&plan, &zc, opts.flavor);
        let log = IterationLog {
            iteration,
            status_before: report.status,
            errors_before: errors,
            root_causes: Vec::new(),
            addressed: None,
            addressed_details: Vec::new(),
            deferred: Vec::new(),
            plan: plan.clone(),
            commands,
        };
        let empty_plan = plan.is_empty();
        // The naive planner repeats the same suggestions once it stalls;
        // stop early when two consecutive plans are identical.
        let stalled = iterations
            .last()
            .map(|prev: &IterationLog| prev.plan == plan)
            .unwrap_or(false);
        record_iteration_metrics(&log);
        let probed_at = now;
        now = apply_plan(sb, &plan, now, &mut rng);
        iterations.push(log);
        if empty_plan || stalled {
            final_report = Some(report);
            break;
        }
        last = Some((report, report_fp, probed_at));
    }

    let final_report =
        final_report.unwrap_or_else(|| final_verdict(sb, cfg, opts, memo, now, last));
    let final_errors = final_report.codes();
    let run = FixRun {
        iterations,
        fixed: final_errors.is_empty(),
        final_status: final_report.status,
        final_errors,
    };
    record_run_metrics("naive", &run);
    run
}

/// Applies a plan to the sandbox; returns the (possibly advanced) clock.
pub fn apply_plan(sb: &mut Sandbox, plan: &[Instruction], mut now: u32, rng: &mut StdRng) -> u32 {
    let apex = sb.leaf().apex.clone();
    let mut signed = false;
    for instr in plan {
        match instr {
            Instruction::GenerateKsk { algorithm, bits } => {
                let key =
                    KeyPair::generate(rng, apex.clone(), *algorithm, *bits, KeyRole::Ksk, now);
                sb.zone_mut(&apex)
                    .expect("apex comes from sb.leaf() above; sandbox zones are never removed")
                    .ring
                    .add(key);
            }
            Instruction::GenerateZsk { algorithm, bits } => {
                let key =
                    KeyPair::generate(rng, apex.clone(), *algorithm, *bits, KeyRole::Zsk, now);
                sb.zone_mut(&apex)
                    .expect("apex comes from sb.leaf() above; sandbox zones are never removed")
                    .ring
                    .add(key);
            }
            Instruction::RemoveInvalidKey { key_tag }
            | Instruction::RemoveRevokedKey { key_tag } => {
                let tag = *key_tag;
                sb.zone_mut(&apex)
                    .expect("apex comes from sb.leaf() above; sandbox zones are never removed")
                    .ring
                    .retain(|k| k.key_tag() != tag);
                // Also drop the published record so a later sign is not
                // required just to purge it from responses.
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    let stray: Vec<RData> = zone
                        .get(&apex, ddx_dns::RrType::Dnskey)
                        .map(|set| {
                            set.rdatas
                                .iter()
                                .filter(|rd| matches!(rd, RData::Dnskey(k) if k.key_tag() == tag))
                                .cloned()
                                .collect()
                        })
                        .unwrap_or_default();
                    for rd in stray {
                        zone.remove_rdata(&apex, &rd);
                    }
                });
            }
            Instruction::UploadDs { digest_type } => {
                let mut ds_set = current_parent_ds(sb, &apex);
                let ksks: Vec<KeyPair> = sb
                    .zone(&apex)
                    .expect("apex comes from sb.leaf() above; sandbox zones are never removed")
                    .ring
                    .active(KeyRole::Ksk, now)
                    .into_iter()
                    .cloned()
                    .collect();
                for k in &ksks {
                    let ds = make_ds(&apex, &k.dnskey, *digest_type);
                    if !ds_set.contains(&ds) {
                        ds_set.push(ds);
                    }
                }
                sb.set_ds(&apex, ds_set, now);
            }
            Instruction::RemoveIncorrectDs { ds } => {
                let mut ds_set = current_parent_ds(sb, &apex);
                ds_set.retain(|d| d != ds);
                sb.set_ds(&apex, ds_set, now);
            }
            Instruction::WaitTtl { seconds } => {
                now = now.saturating_add(*seconds + 1);
            }
            Instruction::ReduceTtl { name, rtype, ttl } => {
                let (name, rtype, ttl) = (name.clone(), *rtype, *ttl);
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    if let Some(set) = zone.get_mut(&name, rtype) {
                        set.ttl = ttl;
                    }
                });
            }
            Instruction::SignZone { nsec3 } => {
                {
                    let leaf = sb
                        .zone_mut(&apex)
                        .expect("apex comes from sb.leaf() above; sandbox zones are never removed");
                    leaf.signer_config = match nsec3 {
                        Some(cfg) => SignerConfig::nsec3_at(now, cfg.clone()),
                        None => SignerConfig::nsec_at(now),
                    };
                    leaf.spec.nsec3 = nsec3.clone();
                }
                let _ = sb.resign_zone(&apex, now);
                signed = true;
            }
            Instruction::SyncAuthServers => {
                // Normalization: every server re-derives the same signed
                // zone from the operator's canonical key ring.
                if !signed {
                    let _ = sb.resign_zone(&apex, now);
                }
            }
            Instruction::PublishCds { digest_type } => {
                // Child side: publish signed CDS/CDNSKEY on every server.
                let ring = sb
                    .zone(&apex)
                    .expect("apex comes from sb.leaf() above; sandbox zones are never removed")
                    .ring
                    .clone();
                let opts_sign = ddx_dnssec::SignOptions {
                    inception: now.saturating_sub(3600),
                    expiration: now + 30 * 86_400,
                };
                let dt = *digest_type;
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    ddx_dnssec::publish_cds(zone, &ring, dt, now, opts_sign);
                });
                // Parent side: the scanner validates and installs the set.
                let current = current_parent_ds(sb, &apex);
                let child_zone = sb
                    .zone(&apex)
                    .and_then(|z| z.servers.first().cloned())
                    .and_then(|sid| sb.testbed.server(&sid).and_then(|s| s.zone(&apex)).cloned());
                if let Some(child_zone) = child_zone {
                    if let Ok(result) = ddx_dnssec::scan_child_cds(&child_zone, &current, now) {
                        sb.set_ds(&apex, result.new_ds, now);
                    }
                }
            }
        }
    }
    now
}

fn current_parent_ds(sb: &Sandbox, child: &ddx_dns::Name) -> Vec<ddx_dns::Ds> {
    if sb.zones.len() < 2 {
        return Vec::new();
    }
    let parent = &sb.zones[sb.zones.len() - 2];
    sb.testbed
        .server(&parent.servers[0])
        .and_then(|s| s.zone(&parent.apex))
        .and_then(|z| z.get(child, ddx_dns::RrType::Ds))
        .map(|set| {
            set.rdatas
                .iter()
                .filter_map(|rd| match rd {
                    RData::Ds(d) => Some(d.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}
