//! Rendering instructions into concrete shell commands for each supported
//! authoritative implementation (paper §4.3 step 3 and §5.6): BIND is the
//! primary target; NSD (ldns utilities), Knot (`keymgr`), and PowerDNS
//! (`pdnsutil` + pre-signed import workaround) are thin translation layers
//! over the same plan.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::instructions::{Instruction, ZoneContext};

/// The server software a plan is rendered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerFlavor {
    Bind,
    Nsd,
    Knot,
    PowerDns,
}

impl ServerFlavor {
    pub const ALL: [ServerFlavor; 4] = [
        ServerFlavor::Bind,
        ServerFlavor::Nsd,
        ServerFlavor::Knot,
        ServerFlavor::PowerDns,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ServerFlavor::Bind => "BIND 9",
            ServerFlavor::Nsd => "NSD (ldns)",
            ServerFlavor::Knot => "Knot DNS",
            ServerFlavor::PowerDns => "PowerDNS",
        }
    }
}

/// One rendered shell command (or manual step).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShellCommand {
    /// The full command line; empty for purely manual steps.
    pub line: String,
    /// True when the operator must act outside the shell (registrar UI).
    pub manual: bool,
    /// Explanation shown to the operator.
    pub note: String,
}

impl ShellCommand {
    fn run(line: impl Into<String>, note: impl Into<String>) -> Self {
        ShellCommand {
            line: line.into(),
            manual: false,
            note: note.into(),
        }
    }

    fn manual(note: impl Into<String>) -> Self {
        ShellCommand {
            line: String::new(),
            manual: true,
            note: note.into(),
        }
    }
}

impl fmt::Display for ShellCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.manual {
            write!(f, "# MANUAL: {}", self.note)
        } else {
            write!(f, "{}  # {}", self.line, self.note)
        }
    }
}

/// Renders one instruction into the command sequence for `flavor`.
pub fn render(instr: &Instruction, ctx: &ZoneContext, flavor: ServerFlavor) -> Vec<ShellCommand> {
    match flavor {
        ServerFlavor::Bind => render_bind(instr, ctx),
        ServerFlavor::Nsd => render_nsd(instr, ctx),
        ServerFlavor::Knot => render_knot(instr, ctx),
        ServerFlavor::PowerDns => render_pdns(instr, ctx),
    }
}

/// Renders a whole plan.
pub fn render_plan(
    plan: &[Instruction],
    ctx: &ZoneContext,
    flavor: ServerFlavor,
) -> Vec<ShellCommand> {
    plan.iter().flat_map(|i| render(i, ctx, flavor)).collect()
}

fn render_bind(instr: &Instruction, ctx: &ZoneContext) -> Vec<ShellCommand> {
    let zone = ctx.zone.to_string();
    match instr {
        Instruction::SignZone { nsec3 } => {
            let mut line = format!("cd {} && dnssec-signzone -N INCREMENT -S", ctx.key_dir);
            if let Some(cfg) = nsec3 {
                let salt = if cfg.salt.is_empty() {
                    "-".to_string()
                } else {
                    cfg.salt.iter().map(|b| format!("{b:02x}")).collect()
                };
                line.push_str(&format!(" -3 {salt} -H {}", cfg.iterations));
                if cfg.opt_out {
                    line.push_str(" -A");
                }
            }
            line.push_str(&format!(" -o {zone} -t {}", ctx.zone_file));
            vec![
                ShellCommand::run(line, "sign the zone with the keys in the key directory"),
                ShellCommand::run(
                    format!("rndc reload {zone}"),
                    "load the freshly signed zone",
                ),
            ]
        }
        Instruction::RemoveIncorrectDs { ds } => vec![ShellCommand::manual(format!(
            "remove the DS record with key_tag={} algorithm={} digest_type={} from the parent zone via your registrar",
            ds.key_tag, ds.algorithm, ds.digest_type
        ))],
        Instruction::UploadDs { digest_type } => vec![
            ShellCommand::run(
                format!(
                    "cd {} && dnssec-dsfromkey {} <public_key_file>",
                    ctx.key_dir,
                    digest_type.dsfromkey_flag()
                ),
                "print the DS record for the KSK public key file",
            ),
            ShellCommand::manual(
                "upload the printed DS record to the parent zone via your registrar",
            ),
        ],
        Instruction::GenerateKsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "cd {} && dnssec-keygen -f KSK -a {} -b {} -n ZONE {zone}",
                ctx.key_dir,
                algorithm.mnemonic(),
                bits
            ),
            "generate a new KSK key pair; note the .key file name",
        )],
        Instruction::GenerateZsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "cd {} && dnssec-keygen -a {} -b {} -n ZONE {zone}",
                ctx.key_dir,
                algorithm.mnemonic(),
                bits
            ),
            "generate a new ZSK key pair",
        )],
        Instruction::SyncAuthServers => vec![
            ShellCommand::run(
                format!("rsync -a {} secondary:{}", ctx.zone_file, ctx.zone_file),
                "copy the signed zone to every secondary",
            ),
            ShellCommand::run("rndc reload".to_string(), "reload all instances"),
        ],
        Instruction::ReduceTtl { name, rtype, ttl } => vec![ShellCommand::run(
            format!(
                "sed -i 's/^{name}\\([[:space:]]\\+\\)[0-9]\\+\\([[:space:]]\\+IN[[:space:]]\\+{rtype}\\)/{name}\\1{ttl}\\2/' {}",
                ctx.zone_file
            ),
            "lower the RRset TTL in the zone file",
        )],
        Instruction::RemoveRevokedKey { key_tag } => vec![ShellCommand::run(
            format!(
                "dnssec-settime -D now {}/{}",
                ctx.key_dir,
                ctx.key_file(*key_tag)
            ),
            "schedule the revoked key for deletion",
        )],
        Instruction::RemoveInvalidKey { key_tag } => vec![ShellCommand::run(
            format!(
                "dnssec-settime -D now {}/{}",
                ctx.key_dir,
                ctx.key_file(*key_tag)
            ),
            "schedule the invalid key for deletion",
        )],
        Instruction::WaitTtl { seconds } => vec![ShellCommand::manual(format!(
            "wait at least {seconds}s (one full TTL) before the next step; auto-apply waits automatically"
        ))],
        Instruction::PublishCds { .. } => vec![
            ShellCommand::run(
                format!("dnssec-settime -P sync now {}/<ksk_key_file>", ctx.key_dir),
                "schedule CDS/CDNSKEY publication for the KSK",
            ),
            ShellCommand::run(
                format!(
                    "cd {} && dnssec-signzone -N INCREMENT -S -o {zone} -t {}",
                    ctx.key_dir, ctx.zone_file
                ),
                "re-sign so the CDS/CDNSKEY RRsets appear, signed",
            ),
            ShellCommand::manual(
                "the parent's CDS scanner (RFC 7344/8078) picks up the change; no registrar action needed",
            ),
        ],
    }
}

fn render_nsd(instr: &Instruction, ctx: &ZoneContext) -> Vec<ShellCommand> {
    let zone = ctx.zone.to_string();
    match instr {
        Instruction::SignZone { nsec3 } => {
            let mut line = format!("cd {} && ldns-signzone", ctx.key_dir);
            if let Some(cfg) = nsec3 {
                line.push_str(" -n");
                if !cfg.salt.is_empty() {
                    let salt: String = cfg.salt.iter().map(|b| format!("{b:02x}")).collect();
                    line.push_str(&format!(" -s {salt}"));
                }
                line.push_str(&format!(" -t {}", cfg.iterations));
                if cfg.opt_out {
                    line.push_str(" -p");
                }
            }
            line.push_str(&format!(" {} <key_base_names>", ctx.zone_file));
            vec![
                ShellCommand::run(line, "sign the zone with ldns-signzone"),
                ShellCommand::run(
                    format!("nsd-control reload {zone}"),
                    "reload the signed zone into NSD",
                ),
            ]
        }
        Instruction::GenerateKsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "cd {} && ldns-keygen -k -a {} -b {} {zone}",
                ctx.key_dir,
                algorithm.mnemonic(),
                bits
            ),
            "generate a new KSK with ldns-keygen",
        )],
        Instruction::GenerateZsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "cd {} && ldns-keygen -a {} -b {} {zone}",
                ctx.key_dir,
                algorithm.mnemonic(),
                bits
            ),
            "generate a new ZSK with ldns-keygen",
        )],
        Instruction::UploadDs { digest_type } => vec![
            ShellCommand::run(
                format!(
                    "cd {} && ldns-key2ds -n {} <key_file>",
                    ctx.key_dir,
                    if *digest_type == ddx_dnssec::DigestType::Sha1 {
                        "-1"
                    } else {
                        "-2"
                    }
                ),
                "derive the DS record with ldns-key2ds",
            ),
            ShellCommand::manual("upload the DS record via your registrar"),
        ],
        Instruction::RemoveRevokedKey { key_tag } | Instruction::RemoveInvalidKey { key_tag } => {
            vec![ShellCommand::run(
                format!("rm {}/{}.*", ctx.key_dir, ctx.key_file(*key_tag)),
                "delete the key files; the next ldns-signzone run drops the key",
            )]
        }
        Instruction::SyncAuthServers => vec![ShellCommand::run(
            format!(
                "nsd-control write {zone} && rsync -a {} secondary:",
                ctx.zone_file
            ),
            "distribute the zone and reload secondaries",
        )],
        Instruction::PublishCds { digest_type } => vec![
            ShellCommand::run(
                format!(
                    "cd {} && ldns-key2ds -n {} <key_file> >> {}",
                    ctx.key_dir,
                    if *digest_type == ddx_dnssec::DigestType::Sha1 {
                        "-1"
                    } else {
                        "-2"
                    },
                    ctx.zone_file
                ),
                "append CDS records to the zone file (edit type to CDS)",
            ),
            ShellCommand::manual("re-sign and reload; the parent's CDS scanner applies the change"),
        ],
        other => render_bind(other, ctx)
            .into_iter()
            .map(|mut c| {
                c.note = format!("{} (shared with BIND workflow)", c.note);
                c
            })
            .collect(),
    }
}

fn render_knot(instr: &Instruction, ctx: &ZoneContext) -> Vec<ShellCommand> {
    let zone = ctx.zone.to_string();
    match instr {
        Instruction::SignZone { nsec3 } => {
            let mut cmds = Vec::new();
            if let Some(cfg) = nsec3 {
                cmds.push(ShellCommand::run(
                    format!(
                        "knotc conf-set 'policy[default].nsec3' on && knotc conf-set 'policy[default].nsec3-iterations' {}",
                        cfg.iterations
                    ),
                    "configure NSEC3 in the signing policy",
                ));
            }
            cmds.push(ShellCommand::run(
                format!("knotc zone-sign {zone}"),
                "trigger a full re-sign",
            ));
            cmds
        }
        Instruction::GenerateKsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "keymgr {zone} generate ksk=yes algorithm={} size={}",
                algorithm.mnemonic(),
                bits
            ),
            "generate a new KSK with keymgr",
        )],
        Instruction::GenerateZsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "keymgr {zone} generate algorithm={} size={}",
                algorithm.mnemonic(),
                bits
            ),
            "generate a new ZSK with keymgr",
        )],
        Instruction::RemoveRevokedKey { key_tag } | Instruction::RemoveInvalidKey { key_tag } => {
            vec![ShellCommand::run(
                format!("keymgr {zone} set {key_tag} retire=now remove=now"),
                "retire and remove the key",
            )]
        }
        Instruction::UploadDs { .. } => vec![
            ShellCommand::run(format!("keymgr {zone} ds"), "print the DS record"),
            ShellCommand::manual("upload the DS record via your registrar"),
        ],
        Instruction::PublishCds { .. } => vec![ShellCommand::run(
            format!("knotc conf-set 'policy[default].cds-cdnskey-publish' always && knotc zone-sign {zone}"),
            "Knot publishes CDS/CDNSKEY automatically under this policy",
        )],
        other => render_bind(other, ctx),
    }
}

fn render_pdns(instr: &Instruction, ctx: &ZoneContext) -> Vec<ShellCommand> {
    let zone = ctx.zone.to_string();
    match instr {
        Instruction::SignZone { .. } => vec![
            ShellCommand::manual(
                "PowerDNS cannot re-sign a pre-signed zone with pdnsutil (pdns#8892): fix the zone with the BIND commands, then re-import",
            ),
            ShellCommand::run(
                format!("pdnsutil load-zone {zone} {}", ctx.zone_file),
                "import the repaired, signed zone file",
            ),
            ShellCommand::run(format!("pdnsutil rectify-zone {zone}"), "rectify ordering"),
        ],
        Instruction::GenerateKsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "pdnsutil add-zone-key {zone} ksk {bits} active {}",
                algorithm.mnemonic().to_lowercase()
            ),
            "add a new KSK",
        )],
        Instruction::GenerateZsk { algorithm, bits } => vec![ShellCommand::run(
            format!(
                "pdnsutil add-zone-key {zone} zsk {bits} active {}",
                algorithm.mnemonic().to_lowercase()
            ),
            "add a new ZSK",
        )],
        Instruction::RemoveRevokedKey { key_tag } | Instruction::RemoveInvalidKey { key_tag } => {
            vec![ShellCommand::run(
                format!("pdnsutil remove-zone-key {zone} {key_tag}"),
                "remove the key by id",
            )]
        }
        Instruction::UploadDs { .. } => vec![
            ShellCommand::run(format!("pdnsutil show-zone {zone}"), "print DS records"),
            ShellCommand::manual("upload the DS record via your registrar"),
        ],
        Instruction::PublishCds { .. } => vec![ShellCommand::run(
            format!("pdnsutil set-publish-cds {zone} && pdnsutil set-publish-cdnskey {zone}"),
            "PowerDNS serves CDS/CDNSKEY for the active keys",
        )],
        other => render_bind(other, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;
    use ddx_dnssec::{Algorithm, DigestType, Nsec3Config};

    fn ctx() -> ZoneContext {
        ZoneContext::new(name("inv-chd.par.a.com"))
    }

    #[test]
    fn bind_keygen_matches_paper_fig8() {
        let cmds = render(
            &Instruction::GenerateKsk {
                algorithm: Algorithm::EcdsaP256Sha256,
                bits: 256,
            },
            &ctx(),
            ServerFlavor::Bind,
        );
        assert_eq!(cmds.len(), 1);
        assert!(cmds[0]
            .line
            .contains("dnssec-keygen -f KSK -a ECDSAP256SHA256 -b 256 -n ZONE"));
    }

    #[test]
    fn bind_signzone_nsec3_flags() {
        let cmds = render(
            &Instruction::SignZone {
                nsec3: Some(Nsec3Config::default()),
            },
            &ctx(),
            ServerFlavor::Bind,
        );
        assert!(cmds[0]
            .line
            .contains("dnssec-signzone -N INCREMENT -S -3 - -H 0"));
        assert!(cmds[1].line.starts_with("rndc reload"));
    }

    #[test]
    fn ds_upload_is_partly_manual() {
        let cmds = render(
            &Instruction::UploadDs {
                digest_type: DigestType::Sha256,
            },
            &ctx(),
            ServerFlavor::Bind,
        );
        assert!(cmds[0].line.contains("dnssec-dsfromkey -2"));
        assert!(cmds[1].manual);
    }

    #[test]
    fn every_flavor_renders_every_instruction() {
        let instructions = [
            Instruction::SignZone { nsec3: None },
            Instruction::SignZone {
                nsec3: Some(Nsec3Config::default()),
            },
            Instruction::RemoveIncorrectDs {
                ds: ddx_dns::Ds {
                    key_tag: 1,
                    algorithm: 13,
                    digest_type: 2,
                    digest: vec![0; 32],
                },
            },
            Instruction::UploadDs {
                digest_type: DigestType::Sha256,
            },
            Instruction::GenerateKsk {
                algorithm: Algorithm::RsaSha256,
                bits: 2048,
            },
            Instruction::GenerateZsk {
                algorithm: Algorithm::RsaSha256,
                bits: 2048,
            },
            Instruction::SyncAuthServers,
            Instruction::ReduceTtl {
                name: name("www.inv-chd.par.a.com"),
                rtype: ddx_dns::RrType::A,
                ttl: 300,
            },
            Instruction::RemoveRevokedKey { key_tag: 7 },
            Instruction::RemoveInvalidKey { key_tag: 8 },
            Instruction::WaitTtl { seconds: 3600 },
            Instruction::PublishCds {
                digest_type: DigestType::Sha256,
            },
        ];
        for flavor in ServerFlavor::ALL {
            for instr in &instructions {
                let cmds = render(instr, &ctx(), flavor);
                assert!(!cmds.is_empty(), "{flavor:?} renders nothing for {instr:?}");
                for c in cmds {
                    assert!(c.manual || !c.line.is_empty());
                    assert!(!c.note.is_empty());
                }
            }
        }
    }

    #[test]
    fn pdns_signzone_uses_import_workaround() {
        let cmds = render(
            &Instruction::SignZone { nsec3: None },
            &ctx(),
            ServerFlavor::PowerDns,
        );
        assert!(cmds[0].manual);
        assert!(cmds.iter().any(|c| c.line.contains("pdnsutil load-zone")));
    }

    #[test]
    fn knot_uses_keymgr() {
        let cmds = render(
            &Instruction::GenerateKsk {
                algorithm: Algorithm::EcdsaP256Sha256,
                bits: 256,
            },
            &ctx(),
            ServerFlavor::Knot,
        );
        assert!(cmds[0].line.contains("keymgr"));
        assert!(cmds[0].line.contains("ksk=yes"));
    }
}
