//! DResolver (paper §4.3 step 3): picks the highest-priority root cause
//! from a grok report, inspects the zone context (key ring, DS set,
//! published keys, denial parameters), and synthesizes the minimal ordered
//! remediation plan for that cause. One cause group is fixed per iteration,
//! exactly like the paper's incremental strategy (§5.4).

use std::collections::BTreeSet;

use ddx_dns::{Dnskey, Ds, Name, RrType};
use ddx_dnssec::{check_ds, Algorithm, DigestType, DsMatch, KeyRole, Nsec3Config};
use ddx_dnsviz::{Category, ErrorCode, ErrorDetail, GrokReport};

use crate::graph::root_causes;
use crate::instructions::Instruction;

/// Operational context about the zone being fixed, assembled from the
/// sandbox (auto-apply) or from probe data (suggest-only).
#[derive(Debug, Clone)]
pub struct FixContext {
    pub zone: Name,
    /// (tag, algorithm, bits) of active, non-revoked KSKs in the ring.
    pub active_ksk: Vec<(u16, Algorithm, u16)>,
    /// Same for ZSKs.
    pub active_zsk: Vec<(u16, Algorithm, u16)>,
    /// Tags of revoked keys still around (ring or zone).
    pub revoked_tags: Vec<u16>,
    /// DNSKEYs currently published by the zone's servers.
    pub published: Vec<Dnskey>,
    /// DS records currently served by the parent.
    pub ds_set: Vec<Ds>,
    /// Current denial mechanism (None → NSEC).
    pub nsec3: Option<Nsec3Config>,
    /// TTL of the DNSKEY RRset (drives WaitTtl).
    pub dnskey_ttl: u32,
    /// Preferred DS digest type.
    pub ds_digest: DigestType,
    /// When true, DS maintenance uses CDS/CDNSKEY publication instead of
    /// manual registrar steps.
    pub use_cds: bool,
}

impl FixContext {
    /// Builds the context from a live sandbox plus the latest report.
    pub fn from_sandbox(sb: &ddx_server::Sandbox, report: &GrokReport, now: u32) -> Self {
        let leaf = sb.leaf();
        let ring = &leaf.ring;
        let key_info = |k: &ddx_dnssec::KeyPair| {
            (
                k.key_tag(),
                k.algorithm().unwrap_or(Algorithm::EcdsaP256Sha256),
                k.key_bits,
            )
        };
        let active_ksk = ring
            .active(KeyRole::Ksk, now)
            .into_iter()
            .map(key_info)
            .collect();
        let active_zsk = ring
            .active(KeyRole::Zsk, now)
            .into_iter()
            .map(key_info)
            .collect();
        let revoked_tags = ring
            .keys()
            .iter()
            .filter(|k| k.is_revoked())
            .map(|k| k.key_tag())
            .collect();

        // Published keys and DS set come from the report's probe view: walk
        // the sandbox servers directly for fidelity.
        let mut published = Vec::new();
        for sid in &leaf.servers {
            if let Some(zone) = sb.testbed.server(sid).and_then(|s| s.zone(&leaf.apex)) {
                if let Some(set) = zone.get(&leaf.apex, RrType::Dnskey) {
                    for rd in &set.rdatas {
                        if let ddx_dns::RData::Dnskey(k) = rd {
                            if !published.contains(k) {
                                published.push(k.clone());
                            }
                        }
                    }
                }
            }
        }
        let mut ds_set = Vec::new();
        if sb.zones.len() >= 2 {
            let parent = &sb.zones[sb.zones.len() - 2];
            if let Some(zone) = sb
                .testbed
                .server(&parent.servers[0])
                .and_then(|s| s.zone(&parent.apex))
            {
                if let Some(set) = zone.get(&leaf.apex, RrType::Ds) {
                    for rd in &set.rdatas {
                        if let ddx_dns::RData::Ds(d) = rd {
                            ds_set.push(d.clone());
                        }
                    }
                }
            }
        }
        let nsec3 = match &leaf.signer_config.denial {
            ddx_dnssec::DenialMode::Nsec3(cfg) => Some(cfg.clone()),
            ddx_dnssec::DenialMode::Nsec => None,
        };
        let _ = report;
        FixContext {
            zone: leaf.apex.clone(),
            active_ksk,
            active_zsk,
            revoked_tags,
            published,
            ds_set,
            nsec3,
            dnskey_ttl: ddx_dnssec::DNSKEY_TTL,
            ds_digest: leaf
                .spec
                .ds_digests
                .first()
                .copied()
                .unwrap_or(DigestType::Sha256),
            use_cds: false,
        }
    }
}

impl FixContext {
    /// Builds the context from probe data alone — no operator-side key
    /// ring. This is the *remote* (suggest-only) mode: the paper's DFixer
    /// parses the grok JSON of a zone the operator owns but the tool does
    /// not; key roles and sizes are inferred from the published DNSKEY
    /// RRset (SEP flag → KSK), and DS state from the parent's responses.
    pub fn from_probe(report: &GrokReport, probe: &ddx_dnsviz::ProbeResult) -> Self {
        let leaf = probe.zones.last();
        let zone = leaf
            .map(|z| z.zone.clone())
            .unwrap_or_else(|| report.query_domain.clone());
        let mut published: Vec<Dnskey> = Vec::new();
        let mut ds_set: Vec<Ds> = Vec::new();
        let mut nsec3: Option<Nsec3Config> = None;
        if let Some(zp) = leaf {
            for sp in &zp.servers {
                for k in sp.dnskeys() {
                    if !published.contains(k) {
                        published.push(k.clone());
                    }
                }
                // NSEC3 parameters from the apex NSEC3PARAM answer.
                if let Some(msg) = &sp.nsec3param {
                    for rec in &msg.answers {
                        if let ddx_dns::RData::Nsec3Param(p) = &rec.rdata {
                            nsec3 = Some(Nsec3Config {
                                hash_algorithm: p.hash_algorithm,
                                iterations: p.iterations,
                                salt: p.salt.clone(),
                                opt_out: false,
                            });
                        }
                    }
                }
            }
            for (_, resp) in &zp.ds_responses {
                if let Some(msg) = resp {
                    for rec in &msg.answers {
                        if let ddx_dns::RData::Ds(d) = &rec.rdata {
                            if !ds_set.contains(d) {
                                ds_set.push(d.clone());
                            }
                        }
                    }
                }
            }
        }
        let key_info = |k: &Dnskey| {
            (
                k.key_tag(),
                Algorithm::from_code(k.algorithm).unwrap_or(Algorithm::EcdsaP256Sha256),
                (k.public_key.len() * 8) as u16,
            )
        };
        let usable = |k: &&Dnskey| k.is_zone_key() && !k.is_revoked();
        let active_ksk = published
            .iter()
            .filter(usable)
            .filter(|k| k.is_sep())
            .map(key_info)
            .collect();
        let active_zsk = published
            .iter()
            .filter(usable)
            .filter(|k| !k.is_sep())
            .map(key_info)
            .collect();
        let revoked_tags = published
            .iter()
            .filter(|k| k.is_revoked())
            .map(|k| k.key_tag())
            .collect();
        let ds_digest = ds_set
            .first()
            .and_then(|d| ddx_dnssec::DigestType::from_code(d.digest_type))
            .unwrap_or(DigestType::Sha256);
        FixContext {
            zone,
            active_ksk,
            active_zsk,
            revoked_tags,
            published,
            ds_set,
            nsec3,
            dnskey_ttl: ddx_dnssec::DNSKEY_TTL,
            ds_digest,
            use_cds: false,
        }
    }
}

/// One resolution step: the identified root causes and the plan for the
/// highest-priority one.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// All root causes identified this round, priority order.
    pub root_causes: Vec<ErrorCode>,
    /// The cause the plan addresses (first of `root_causes`).
    pub addressed: Option<ErrorCode>,
    /// The typed details of every report error carrying the addressed
    /// code — the structured evidence the plan was built from.
    pub addressed_details: Vec<ErrorDetail>,
    /// Root causes whose evidence is *absence* (missing RRSIG/DNSKEY/proof)
    /// in zones the probe could not fully observe — prescribing a fix from
    /// missing data risks "repairing" a record that exists but was never
    /// seen. These are skipped this round; they resolve themselves once the
    /// observation gaps heal.
    pub deferred: Vec<ErrorCode>,
    /// Ordered instructions.
    pub plan: Vec<Instruction>,
}

/// Priority of a root cause: delegation/key problems are addressed before
/// pure signing or denial hygiene (the paper's NZIC+DS example removes the
/// DS in iteration 1 and re-signs in iteration 2).
fn cause_priority(code: ErrorCode) -> u8 {
    match code.category() {
        Category::Delegation => 0,
        Category::Key => 1,
        Category::Algorithm => 2,
        Category::Signature => 3,
        Category::Ttl => 4,
        Category::Nsec3Shared | Category::NsecOnly | Category::Nsec3Only => 5,
    }
}

/// The target denial configuration for a re-sign: keep the zone's
/// mechanism, but force RFC 9276-compliant parameters when the chain itself
/// is the problem.
fn target_denial(ctx: &FixContext, force_compliant: bool) -> Option<Nsec3Config> {
    match &ctx.nsec3 {
        None => None,
        Some(cfg) if force_compliant => Some(Nsec3Config {
            opt_out: cfg.opt_out,
            ..Nsec3Config::default()
        }),
        Some(cfg) => Some(cfg.clone()),
    }
}

/// Runs DResolver over the report: identify root causes, build the plan for
/// the first.
pub fn resolve(report: &GrokReport, ctx: &FixContext) -> Resolution {
    let codes: BTreeSet<ErrorCode> = report.codes();
    let mut roots = root_causes(&codes);
    roots.sort_by_key(|c| (cause_priority(*c), *c));
    // Zones the probe could not fully observe: absence-evidence codes whose
    // every instance sits in such a zone are deferred, not fixed — the
    // "missing" record may exist behind the timeout/truncation.
    let gap_zones: BTreeSet<Name> = report
        .zones
        .iter()
        .filter(|z| !z.observation_gaps.is_empty())
        .map(|z| z.zone.clone())
        .collect();
    let is_deferred = |code: ErrorCode| {
        code.evidence_is_absence()
            && !gap_zones.is_empty()
            && report
                .errors()
                .filter(|e| e.code == code)
                .all(|e| gap_zones.contains(&e.zone))
    };
    let deferred: Vec<ErrorCode> = roots.iter().copied().filter(|&c| is_deferred(c)).collect();
    let Some(first) = roots.iter().copied().find(|&c| !is_deferred(c)) else {
        return Resolution {
            root_causes: roots,
            addressed: None,
            addressed_details: Vec::new(),
            deferred,
            plan: Vec::new(),
        };
    };
    let plan = plan_for_cause(first, report, ctx);
    let addressed_details = report
        .errors()
        .filter(|e| e.code == first)
        .map(|e| e.detail.clone())
        .collect();
    Resolution {
        root_causes: roots,
        addressed: Some(first),
        addressed_details,
        deferred,
        plan,
    }
}

/// Accumulator that keeps the canonical instruction order:
/// generate keys → remove invalid keys → DS upload → DS removals →
/// wait TTL → remove revoked keys → sign → sync (Fig 8's sequence).
#[derive(Default)]
struct PlanBuilder {
    /// Collapse DS uploads+removals into one CDS publication.
    use_cds: bool,
    gen_ksk: Option<(Algorithm, u16)>,
    gen_zsk: Option<(Algorithm, u16)>,
    remove_invalid: Vec<u16>,
    upload_ds: Option<DigestType>,
    remove_ds: Vec<Ds>,
    wait_ttl: Option<u32>,
    remove_revoked: Vec<u16>,
    sign: Option<Option<Nsec3Config>>,
    sync: bool,
    reduce_ttl: Vec<(Name, RrType, u32)>,
}

impl PlanBuilder {
    fn build(self) -> Vec<Instruction> {
        let mut out = Vec::new();
        if let Some((algorithm, bits)) = self.gen_ksk {
            out.push(Instruction::GenerateKsk { algorithm, bits });
        }
        if let Some((algorithm, bits)) = self.gen_zsk {
            out.push(Instruction::GenerateZsk { algorithm, bits });
        }
        for key_tag in self.remove_invalid {
            out.push(Instruction::RemoveInvalidKey { key_tag });
        }
        // CDS mode: one publication replaces the whole registrar round trip
        // (the parent installs the advertised set and drops the rest).
        let (upload_ds, remove_ds) =
            if self.use_cds && (self.upload_ds.is_some() || !self.remove_ds.is_empty()) {
                out.push(Instruction::PublishCds {
                    digest_type: self.upload_ds.unwrap_or(ddx_dnssec::DigestType::Sha256),
                });
                (None, Vec::new())
            } else {
                (self.upload_ds, self.remove_ds)
            };
        if let Some(digest_type) = upload_ds {
            out.push(Instruction::UploadDs { digest_type });
        }
        for ds in remove_ds {
            out.push(Instruction::RemoveIncorrectDs { ds });
        }
        if let Some(seconds) = self.wait_ttl {
            out.push(Instruction::WaitTtl { seconds });
        }
        for key_tag in self.remove_revoked {
            out.push(Instruction::RemoveRevokedKey { key_tag });
        }
        for (name, rtype, ttl) in self.reduce_ttl {
            out.push(Instruction::ReduceTtl { name, rtype, ttl });
        }
        if let Some(nsec3) = self.sign {
            out.push(Instruction::SignZone { nsec3 });
        }
        if self.sync {
            out.push(Instruction::SyncAuthServers);
        }
        out
    }
}

/// Default algorithm/size for newly generated keys: reuse the zone's
/// dominant algorithm, falling back to ECDSA P-256.
fn new_key_params(ctx: &FixContext) -> (Algorithm, u16) {
    ctx.active_ksk
        .first()
        .or(ctx.active_zsk.first())
        .map(|&(_, a, b)| (a, b))
        .unwrap_or((Algorithm::EcdsaP256Sha256, 256))
}

/// DS records that do not correctly link a usable, active KSK.
fn bad_ds_records(ctx: &FixContext) -> Vec<Ds> {
    let active_tags: Vec<u16> = ctx.active_ksk.iter().map(|&(t, _, _)| t).collect();
    ctx.ds_set
        .iter()
        .filter(|ds| {
            let linked = ctx.published.iter().find(|k| k.key_tag() == ds.key_tag);
            match linked {
                Some(key) => {
                    check_ds(&ctx.zone, ds, key) != DsMatch::Match
                        || key.is_revoked()
                        || !key.is_zone_key()
                        || !key.is_sep()
                        || !active_tags.contains(&ds.key_tag)
                }
                None => true,
            }
        })
        .cloned()
        .collect()
}

/// True if at least one DS correctly links an active KSK.
fn good_link_exists(ctx: &FixContext) -> bool {
    let active_tags: Vec<u16> = ctx.active_ksk.iter().map(|&(t, _, _)| t).collect();
    ctx.ds_set.iter().any(|ds| {
        ctx.published.iter().any(|k| {
            k.key_tag() == ds.key_tag
                && check_ds(&ctx.zone, ds, k) == DsMatch::Match
                && !k.is_revoked()
                && k.is_sep()
                && active_tags.contains(&ds.key_tag)
        })
    })
}

/// Stray published keys: not represented by an active ring key.
fn stray_published_tags(ctx: &FixContext) -> Vec<u16> {
    let ring_tags: Vec<u16> = ctx
        .active_ksk
        .iter()
        .chain(ctx.active_zsk.iter())
        .map(|&(t, _, _)| t)
        .collect();
    ctx.published
        .iter()
        .map(|k| k.key_tag())
        .filter(|t| !ring_tags.contains(t) && !ctx.revoked_tags.contains(t))
        .collect()
}

fn plan_for_cause(cause: ErrorCode, report: &GrokReport, ctx: &FixContext) -> Vec<Instruction> {
    use ErrorCode::*;
    let mut pb = PlanBuilder {
        use_cds: ctx.use_cds,
        ..Default::default()
    };
    let denial = target_denial(ctx, false);
    match cause {
        // ------------------------------------------------- delegation
        DsMissingKeyForAlgorithm
        | DsDigestInvalid
        | DsAlgorithmMismatch
        | DsUnknownDigestType
        | NoSecureEntryPoint
        | NoSepForDsAlgorithm => {
            pb.remove_ds = bad_ds_records(ctx);
            if !good_link_exists(ctx) {
                if ctx.active_ksk.is_empty() {
                    pb.gen_ksk = Some(new_key_params(ctx));
                    pb.sign = Some(denial.clone());
                }
                pb.upload_ds = Some(ctx.ds_digest);
            }
        }
        DnskeyMissingForDs => {
            if ctx.active_ksk.is_empty() && ctx.active_zsk.is_empty() {
                let params = new_key_params(ctx);
                pb.gen_ksk = Some(params);
                pb.gen_zsk = Some(params);
                pb.upload_ds = Some(ctx.ds_digest);
                pb.remove_ds = ctx.ds_set.clone();
            }
            // Re-signing republishes the DNSKEY RRset from the ring.
            pb.sign = Some(denial.clone());
        }
        DsReferencesRevokedKey | DnskeyRevokedNoOtherSep | RevokedKeyInUse => {
            // The Fig 8 workflow.
            let has_other_ksk = !ctx.active_ksk.is_empty();
            if !has_other_ksk && cause != RevokedKeyInUse {
                pb.gen_ksk = Some(new_key_params(ctx));
                pb.upload_ds = Some(ctx.ds_digest);
            }
            if cause == RevokedKeyInUse && ctx.active_zsk.is_empty() {
                pb.gen_zsk = Some(new_key_params(ctx));
            }
            // Remove any DS linked to a revoked key (or simply stale).
            pb.remove_ds = bad_ds_records(ctx);
            if !pb.remove_ds.is_empty() {
                pb.wait_ttl = Some(ctx.dnskey_ttl);
            }
            pb.remove_revoked = ctx.revoked_tags.clone();
            // Also purge published revoked keys that are not in the ring.
            for k in &ctx.published {
                if k.is_revoked() && !pb.remove_revoked.contains(&k.key_tag()) {
                    pb.remove_revoked.push(k.key_tag());
                }
            }
            pb.sign = Some(denial.clone());
        }
        // ------------------------------------------------------- key
        DnskeyMissingFromServers | DnskeyInconsistentRrset => {
            pb.sign = Some(denial.clone());
            pb.sync = true;
        }
        KeyLengthTooShort | KeyLengthInvalidForAlgorithm => {
            // Find the published keys with bad material.
            for k in &ctx.published {
                let bad = match Algorithm::from_code(k.algorithm) {
                    Some(a) => {
                        let bits = k.key_bits() as u16;
                        (a.is_rsa() && bits < 512) || !a.key_bits_valid(bits)
                    }
                    None => true,
                };
                if bad {
                    pb.remove_invalid.push(k.key_tag());
                }
            }
            if ctx.active_zsk.is_empty() {
                pb.gen_zsk = Some(new_key_params(ctx));
            }
            pb.sign = Some(denial.clone());
        }
        // ------------------------------------------------- algorithm
        DsAlgorithmWithoutRrsig | DnskeyAlgorithmWithoutRrsig | RrsigAlgorithmWithoutDnskey => {
            // Strays (published keys with no ring backing) are dropped by a
            // re-sign; DS records for algorithms that cannot sign must go.
            pb.remove_invalid = stray_published_tags(ctx);
            let ring_algos: Vec<u8> = ctx
                .active_ksk
                .iter()
                .chain(ctx.active_zsk.iter())
                .map(|&(_, a, _)| a.code())
                .collect();
            pb.remove_ds = ctx
                .ds_set
                .iter()
                .filter(|ds| {
                    !ring_algos.contains(&ds.algorithm) || bad_ds_records(ctx).contains(ds)
                })
                .cloned()
                .collect();
            pb.sign = Some(denial.clone());
        }
        // ------------------------------------------------- signature
        RrsigMissing
        | RrsigMissingFromServers
        | RrsigMissingForDnskey
        | RrsigExpired
        | RrsigInvalid
        | RrsigInvalidRdata
        | RrsigUnknownKeyTag
        | RrsigSignerMismatch
        | RrsigNotYetValid
        | RrsigLabelsExceedOwner
        | RrsigBadLength => {
            if ctx.active_zsk.is_empty() && ctx.active_ksk.is_empty() {
                pb.gen_zsk = Some(new_key_params(ctx));
            }
            pb.sign = Some(denial.clone());
            if cause == RrsigMissingFromServers {
                pb.sync = true;
            }
            // Strays that caused InvalidRdata (non-zone keys) get dropped.
            if cause == RrsigInvalidRdata {
                pb.remove_invalid = stray_published_tags(ctx);
            }
        }
        // ------------------------------------------------------- TTL
        OriginalTtlExceeded => {
            // The typed details name the affected RRsets directly; lowering
            // each TTL back to the signed original is the minimal fix — no
            // re-sign required.
            pb.reduce_ttl = ttl_reductions(report);
            if pb.reduce_ttl.is_empty() {
                pb.sign = Some(denial.clone());
            }
        }
        TtlBeyondSignatureExpiry => {
            pb.sign = Some(denial.clone());
        }
        // ---------------------------------------------------- denial
        Nsec3IterationsNonzero
        | Nsec3ParamMismatch
        | Nsec3UnsupportedAlgorithm
        | Nsec3OptOutViolation => {
            pb.sign = Some(target_denial(ctx, true));
        }
        NsecProofMissing
        | Nsec3ProofMissing
        | NsecBitmapAssertsType
        | Nsec3BitmapAssertsType
        | NsecCoverageBroken
        | Nsec3CoverageBroken
        | NsecMissingWildcardProof
        | Nsec3MissingWildcardProof
        | LastNsecNotApex
        | Nsec3NoClosestEncloser
        | Nsec3InconsistentAncestor
        | Nsec3HashInvalidLength
        | Nsec3OwnerNotBase32 => {
            pb.sign = Some(denial.clone());
        }
        // --------------------------------------------------- budgets
        ValidationBudgetExceeded => {
            // KeyTrap-class material. Purging stray published keys removes
            // the key side of any sig×key cross product; the re-sign drops
            // every stray RRSIG and rebuilds the denial chain with RFC
            // 9276-compliant parameters (killing high-iteration NSEC3 work).
            pb.remove_invalid = stray_published_tags(ctx);
            pb.sign = Some(target_denial(ctx, true));
        }
    }
    pb.build()
}

/// Collects `(name, type, original_ttl)` triples from the typed
/// [`ErrorDetail::TtlExceedsOriginal`] payloads of OriginalTtlExceeded
/// errors, one per affected RRset.
fn ttl_reductions(report: &GrokReport) -> Vec<(Name, RrType, u32)> {
    let mut out: Vec<(Name, RrType, u32)> = Vec::new();
    for e in report.errors() {
        if e.code != ErrorCode::OriginalTtlExceeded {
            continue;
        }
        let ErrorDetail::TtlExceedsOriginal {
            name,
            rtype,
            original_ttl,
            ..
        } = &e.detail
        else {
            continue;
        };
        if !out.iter().any(|(n, t, _)| n == name && t == rtype) {
            out.push((name.clone(), *rtype, *original_ttl));
        }
    }
    out
}
