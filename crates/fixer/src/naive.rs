//! The naive baseline planner — a deterministic stand-in for the paper's
//! GPT-4o experiments (Appendix A.2, and DESIGN.md §4). It reproduces the
//! observed failure modes of prompt-engineering-only remediation:
//!
//! 1. every error is mapped *independently* — no dependency graph, no
//!    root-cause grouping, no ordering;
//! 2. DS problems are answered with "upload/replace the DS record" — the
//!    extraneous or corrupted DS is never removed;
//! 3. missing prerequisites are ignored — it re-signs without generating
//!    absent keys;
//! 4. essential parameters are dropped — re-signs always use plain NSEC
//!    defaults, discarding the zone's NSEC3 configuration.

use std::collections::BTreeSet;

use ddx_dnsviz::{ErrorCode, GrokReport};

use crate::instructions::Instruction;

/// Produces the naive plan: one generic suggestion per error code present,
/// in arbitrary (code) order, deduplicated only by exact equality.
pub fn naive_plan(report: &GrokReport) -> Vec<Instruction> {
    use ErrorCode::*;
    let codes: BTreeSet<ErrorCode> = report.codes();
    let mut plan: Vec<Instruction> = Vec::new();
    let push = |i: Instruction, plan: &mut Vec<Instruction>| {
        if !plan.contains(&i) {
            plan.push(i);
        }
    };
    for code in codes {
        match code {
            // "Verify/replace your DS record" — uploads, never removes.
            DsMissingKeyForAlgorithm
            | DsDigestInvalid
            | DsAlgorithmMismatch
            | DsUnknownDigestType
            | NoSecureEntryPoint
            | NoSepForDsAlgorithm
            | DsReferencesRevokedKey
            | DsAlgorithmWithoutRrsig => push(
                Instruction::UploadDs {
                    digest_type: ddx_dnssec::DigestType::Sha256,
                },
                &mut plan,
            ),
            // Revoked keys: remove, but no replacement KSK, no DS cleanup.
            RevokedKeyInUse | DnskeyRevokedNoOtherSep => {
                for zone in &report.zones {
                    for e in &zone.errors {
                        if let Some(tag) = e.detail.key_tag() {
                            push(Instruction::RemoveRevokedKey { key_tag: tag }, &mut plan);
                        }
                    }
                }
            }
            // Everything else: "re-sign your zone" with default parameters
            // (plain NSEC — the zone's NSEC3 settings are forgotten).
            _ => push(Instruction::SignZone { nsec3: None }, &mut plan),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instructions::InstructionKind;
    use ddx_dns::name;
    use ddx_dnsviz::{ErrorDetail, ErrorInstance, GrokReport, SnapshotStatus, ZoneReport};

    fn report_with(codes: &[ErrorCode]) -> GrokReport {
        GrokReport {
            query_domain: name("t.example"),
            time: 0,
            status: SnapshotStatus::Sb,
            zones: vec![ZoneReport {
                zone: name("t.example"),
                signed: true,
                has_ds: true,
                is_anchor: false,
                errors: codes
                    .iter()
                    .map(|&code| ErrorInstance {
                        code,
                        zone: name("t.example"),
                        critical: code.is_critical(),
                        detail: ErrorDetail::RevokedSoleSep { key_tag: 42 },
                    })
                    .collect(),
                warnings: Vec::new(),
                observation_gaps: Vec::new(),
            }],
        }
    }

    #[test]
    fn ds_errors_map_to_upload_never_removal() {
        let plan = naive_plan(&report_with(&[
            ErrorCode::DsDigestInvalid,
            ErrorCode::DsMissingKeyForAlgorithm,
        ]));
        let kinds: Vec<InstructionKind> = plan.iter().map(|i| i.kind()).collect();
        assert!(kinds.contains(&InstructionKind::UploadDs));
        assert!(!kinds.contains(&InstructionKind::RemoveIncorrectDs));
    }

    #[test]
    fn signature_errors_map_to_plain_nsec_resign() {
        let plan = naive_plan(&report_with(&[ErrorCode::Nsec3CoverageBroken]));
        assert!(plan
            .iter()
            .any(|i| matches!(i, Instruction::SignZone { nsec3: None })));
    }

    #[test]
    fn revoked_errors_remove_key_but_nothing_else() {
        let plan = naive_plan(&report_with(&[ErrorCode::DnskeyRevokedNoOtherSep]));
        let kinds: Vec<InstructionKind> = plan.iter().map(|i| i.kind()).collect();
        assert!(kinds.contains(&InstructionKind::RemoveRevokedKey));
        // The fatal omissions: no replacement KSK, no DS cleanup.
        assert!(!kinds.contains(&InstructionKind::GenerateKsk));
        assert!(!kinds.contains(&InstructionKind::RemoveIncorrectDs));
    }

    #[test]
    fn duplicate_suggestions_deduplicated() {
        let plan = naive_plan(&report_with(&[
            ErrorCode::RrsigExpired,
            ErrorCode::RrsigMissing,
            ErrorCode::NsecProofMissing,
        ]));
        let signs = plan
            .iter()
            .filter(|i| matches!(i, Instruction::SignZone { .. }))
            .count();
        assert_eq!(signs, 1);
    }
}
