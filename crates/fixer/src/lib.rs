//! # ddx-fixer — DFixer
//!
//! The paper's primary contribution: a framework that correlates cascaded
//! DNSSEC error codes into root causes (dependency graph + topological
//! ordering), synthesizes a minimal ordered remediation plan per cause
//! (DResolver), renders it into concrete commands for BIND — with NSD,
//! Knot, and PowerDNS translation layers (§5.6) — and iteratively applies
//! and re-verifies until the zone is clean (Fig 6). A naive per-error
//! baseline models the paper's GPT-4o comparison (Appendix A.2).

pub mod commands;
pub mod dresolver;
pub mod engine;
pub mod graph;
pub mod instructions;
pub mod naive;

pub use commands::{render, render_plan, ServerFlavor, ShellCommand};
pub use dresolver::{resolve, FixContext, Resolution};
pub use engine::{
    apply_plan, run_fixer, run_fixer_with_memo, run_naive, run_naive_with_memo, suggest,
    suggest_remote, FixRun, FixerOptions, IterationLog,
};
pub use graph::{cascades_of, root_causes, topological_order};
pub use instructions::{Instruction, InstructionKind, ZoneContext};
pub use naive::naive_plan;
