//! Shared zone-variant corpus for the integration tests in this crate:
//! the eight signed/broken/unsigned zones introduced with the query-path
//! equivalence suite, reused by the chaos harness.

#![allow(dead_code)]

use std::net::Ipv4Addr;
use std::sync::OnceLock;

use ddx_dns::{name, Name, RData, Record, RrType, Soa, Zone};
use ddx_dnssec::{sign_zone, Algorithm, KeyPair, KeyRing, KeyRole, Nsec3Config, SignerConfig};
use ddx_server::{Server, ServerId, Testbed};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub const NOW: u32 = 1_000_000;

pub fn base_zone(wildcard: bool) -> Zone {
    let mut z = Zone::new(name("example.com"));
    z.add(Record::new(
        name("example.com"),
        3600,
        RData::Soa(Soa {
            mname: name("ns1.example.com"),
            rname: name("hostmaster.example.com"),
            serial: 1,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(
        name("example.com"),
        3600,
        RData::Ns(name("ns1.example.com")),
    ));
    z.add(Record::new(
        name("ns1.example.com"),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    z.add(Record::new(
        name("www.example.com"),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 80)),
    ));
    z.add(Record::new(
        name("alias.example.com"),
        300,
        RData::Cname(name("www.example.com")),
    ));
    z.add(Record::new(
        name("sub.example.com"),
        3600,
        RData::Ns(name("ns1.sub.example.com")),
    ));
    z.add(Record::new(
        name("ns1.sub.example.com"),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 53)),
    ));
    // A second delegation whose NS host lives outside the zone: the closest
    // the single-server view gets to a lame delegation (no glue to return).
    z.add(Record::new(
        name("lame.example.com"),
        3600,
        RData::Ns(name("ns1.elsewhere.net")),
    ));
    if wildcard {
        z.add(Record::new(
            name("*.wild.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 42)),
        ));
    }
    z
}

pub fn sign(z: &mut Zone, nsec3: Option<Nsec3Config>) {
    let mut ring = KeyRing::new();
    let mut rng = StdRng::seed_from_u64(7);
    for role in [KeyRole::Ksk, KeyRole::Zsk] {
        ring.add(KeyPair::generate(
            &mut rng,
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            role,
            NOW,
        ));
    }
    let cfg = match nsec3 {
        Some(c) => SignerConfig::nsec3_at(NOW, c),
        None => SignerConfig::nsec_at(NOW),
    };
    sign_zone(z, &ring, &cfg, NOW).unwrap();
}

/// The eight zone variants: well-signed NSEC/NSEC3 (with and without
/// wildcards and opt-out), post-signing breakage, and unsigned.
pub fn variant_zones() -> Vec<(&'static str, Zone)> {
    let mut out: Vec<(&'static str, Zone)> = Vec::new();

    let mut z = base_zone(false);
    sign(&mut z, None);
    out.push(("nsec", z));

    let mut z = base_zone(true);
    sign(&mut z, None);
    out.push(("nsec-wildcard", z));

    let mut z = base_zone(false);
    sign(&mut z, Some(Nsec3Config::default()));
    out.push(("nsec3", z));

    let mut z = base_zone(true);
    sign(
        &mut z,
        Some(Nsec3Config {
            opt_out: true,
            ..Nsec3Config::default()
        }),
    );
    out.push(("nsec3-optout-wildcard", z));

    // Broken NSEC chain: one link removed after signing. The index must
    // detect the malformed chain and fall back to the same linear
    // first-match scan the naive path uses.
    let mut z = base_zone(false);
    sign(&mut z, None);
    z.remove(&name("www.example.com"), RrType::Nsec);
    out.push(("nsec-broken-chain", z));

    // Corrupted NSEC next pointer: the chain no longer closes.
    let mut z = base_zone(false);
    sign(&mut z, None);
    if let Some(set) = z.get_mut(&name("alias.example.com"), RrType::Nsec) {
        for rdata in &mut set.rdatas {
            if let RData::Nsec(n) = rdata {
                n.next_name = name("zzz.outside.test");
            }
        }
    }
    out.push(("nsec-corrupt-next", z));

    // Signatures stripped post-signing (NSEC3 ring survives unsigned).
    let mut z = base_zone(false);
    sign(&mut z, Some(Nsec3Config::default()));
    z.strip_type(RrType::Rrsig);
    out.push(("nsec3-stripped-sigs", z));

    // Entirely unsigned.
    out.push(("unsigned", base_zone(true)));

    out
}

/// The zone variants loaded into standalone servers. Built once; servers
/// are only ever read.
pub fn variants() -> &'static Vec<(&'static str, Server)> {
    static VARIANTS: OnceLock<Vec<(&'static str, Server)>> = OnceLock::new();
    VARIANTS.get_or_init(|| {
        variant_zones()
            .into_iter()
            .map(|(label, zone)| {
                let mut s = Server::new(ServerId(format!("eq-{label}")));
                s.load_zone(zone);
                (label, s)
            })
            .collect()
    })
}

/// The zone variants loaded into one-server testbeds (`ns1.example.com`
/// routes to the server), for tests that exercise the [`Network`] surface.
pub fn testbeds() -> &'static Vec<(&'static str, Testbed)> {
    static TESTBEDS: OnceLock<Vec<(&'static str, Testbed)>> = OnceLock::new();
    TESTBEDS.get_or_init(|| {
        variant_zones()
            .into_iter()
            .map(|(label, zone)| {
                let id = ServerId(format!("chaos-{label}#0"));
                let mut s = Server::new(id.clone());
                s.load_zone(zone);
                let mut tb = Testbed::new();
                tb.add_server(s);
                tb.register_ns(name("ns1.example.com"), id);
                (label, tb)
            })
            .collect()
    })
}

pub fn qnames() -> Vec<Name> {
    vec![
        name("example.com"),
        name("www.example.com"),
        name("alias.example.com"),
        name("ns1.example.com"),
        name("nope.example.com"),
        name("a.b.nope.example.com"),
        name("sub.example.com"),
        name("x.sub.example.com"),
        name("lame.example.com"),
        name("y.lame.example.com"),
        name("anything.wild.example.com"),
        name("deep.under.wild.example.com"),
        name("wild.example.com"),
        name("com"),
        name("unrelated.test"),
    ]
}

pub const QTYPES: &[RrType] = &[
    RrType::A,
    RrType::Aaaa,
    RrType::Ns,
    RrType::Soa,
    RrType::Cname,
    RrType::Dnskey,
    RrType::Ds,
    RrType::Txt,
    RrType::Nsec,
    RrType::Nsec3Param,
];
