//! Chaos harness for the fault-injection decorator at the [`Network`]
//! surface: a zero-fault [`FaultNetwork`] must be byte-identical to the
//! network it wraps across the whole zone-variant corpus, equal seeds must
//! replay equal fault sequences, the per-fault counters must account for
//! every query, and transient plans must heal on retry.

mod common;

use common::{qnames, testbeds, QTYPES};
use ddx_dns::{wire, Message, RrType};
use ddx_server::{FaultNetwork, FaultPlan, Network, QueryOutcome, ServerId};
use proptest::prelude::*;

fn server_id(label: &str) -> ServerId {
    ServerId(format!("chaos-{label}#0"))
}

/// A comparable fingerprint of one query outcome: the failure mode plus the
/// exact response bytes when one was delivered.
fn outcome_sig(outcome: QueryOutcome) -> (u8, Option<Vec<u8>>) {
    match outcome {
        QueryOutcome::Answer(m) => (0, Some(wire::encode(&m))),
        QueryOutcome::Timeout => (1, None),
        QueryOutcome::Malformed => (2, None),
    }
}

/// Every (qname, qtype) probe of the corpus as a fresh query message.
fn corpus_queries() -> Vec<Message> {
    let mut out = Vec::new();
    for qname in qnames() {
        for &qtype in QTYPES {
            out.push(Message::query(9, qname.clone(), qtype));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A passthrough plan — whatever its seed — must leave both `query` and
    /// `query_outcome` byte-identical to the wrapped network, for every
    /// zone variant and query in the corpus.
    #[test]
    fn zero_fault_network_is_byte_identical(
        zone_idx in 0usize..8,
        qname_idx in 0usize..15,
        qtype_idx in 0usize..10,
        seed in any::<u64>(),
    ) {
        let (label, tb) = &testbeds()[zone_idx];
        let id = server_id(label);
        let q = Message::query(9, qnames()[qname_idx].clone(), QTYPES[qtype_idx]);

        let plan = FaultPlan::none(seed);
        prop_assert!(plan.is_passthrough());
        let faulty = FaultNetwork::new(tb, plan);

        let direct = tb.query(&id, &q).map(|m| wire::encode(&m));
        let wrapped = faulty.query(&id, &q).map(|m| wire::encode(&m));
        prop_assert_eq!(wrapped, direct, "zone={} q={:?}", label, q.question);
        prop_assert_eq!(
            outcome_sig(faulty.query_outcome(&id, &q)),
            outcome_sig(tb.query_outcome(&id, &q))
        );
        let stats = faulty.fault_stats();
        prop_assert_eq!(stats.injected(), 0, "passthrough injected a fault");
        // resolve_ns must pass through untouched as well.
        prop_assert_eq!(
            faulty.resolve_ns(&ddx_dns::name("ns1.example.com")),
            tb.resolve_ns(&ddx_dns::name("ns1.example.com"))
        );
    }
}

/// Sweeps the full corpus through a faulty network and returns the outcome
/// fingerprint sequence.
fn sweep(net: &FaultNetwork<'_>, id: &ServerId) -> Vec<(u8, Option<Vec<u8>>)> {
    corpus_queries()
        .iter()
        .map(|q| outcome_sig(net.query_outcome(id, q)))
        .collect()
}

/// The same seed must replay the exact same fault sequence — outcomes and
/// counters — on a fresh decorator; a different seed is allowed to differ
/// and here demonstrably does inject a different mix.
#[test]
fn equal_seeds_replay_equal_fault_sequences() {
    let (label, tb) = &testbeds()[0];
    let id = server_id(label);
    let runs: Vec<_> = [41u64, 41, 42]
        .iter()
        .map(|&seed| {
            let net = FaultNetwork::new(tb, FaultPlan::uniform(seed, 100));
            let outcomes = sweep(&net, &id);
            (outcomes, net.fault_stats())
        })
        .collect();
    assert_eq!(runs[0].0, runs[1].0, "same seed, different outcomes");
    assert_eq!(runs[0].1, runs[1].1, "same seed, different counters");
    assert!(
        runs[0].1.injected() > 0,
        "a 700-permille uniform mix over {} queries injected nothing",
        runs[0].0.len()
    );
    assert_ne!(
        runs[0].0, runs[2].0,
        "seeds 41 and 42 produced identical fault sequences"
    );
}

/// passed + injected() must account for every query exactly once, across
/// all zone variants.
#[test]
fn fault_counters_account_for_every_query() {
    for (label, tb) in testbeds() {
        let id = server_id(label);
        let net = FaultNetwork::new(tb, FaultPlan::uniform(9, 80));
        let total = sweep(&net, &id).len() as u64;
        let stats = net.fault_stats();
        assert_eq!(
            stats.passed + stats.injected(),
            total,
            "zone={label}: {stats:?} does not account for {total} queries"
        );
    }
}

/// With `max_faulty_attempts = 1` the first ask of a question may be
/// perturbed but the retry must be served clean — byte-identical to the
/// unwrapped network.
#[test]
fn transient_faults_heal_on_retry() {
    for (label, tb) in testbeds() {
        let id = server_id(label);
        let plan = FaultPlan {
            max_faulty_attempts: Some(1),
            ..FaultPlan::uniform(5, 120)
        };
        let net = FaultNetwork::new(tb, plan);
        for q in corpus_queries() {
            let _first = net.query_outcome(&id, &q);
            let retry = outcome_sig(net.query_outcome(&id, &q));
            let clean = outcome_sig(tb.query_outcome(&id, &q));
            assert_eq!(retry, clean, "zone={label} q={:?}", q.question);
        }
    }
}

/// Faults restricted to one server leave every other server untouched.
#[test]
fn only_server_scoping_spares_other_servers() {
    let (label, tb) = &testbeds()[0];
    let id = server_id(label);
    let plan = FaultPlan {
        only_server: Some(ServerId("someone-else#9".into())),
        ..FaultPlan::uniform(3, 1000 / 7)
    };
    let net = FaultNetwork::new(tb, plan);
    for q in corpus_queries() {
        let wrapped = outcome_sig(net.query_outcome(&id, &q));
        let direct = outcome_sig(tb.query_outcome(&id, &q));
        assert_eq!(wrapped, direct, "zone={label} q={:?}", q.question);
    }
    assert_eq!(net.fault_stats().injected(), 0);
}

/// The virtual clock advances as queries flow — no wall-clock sleeping —
/// and slow faults add their configured latency on top.
#[test]
fn virtual_clock_advances_without_sleeping() {
    let (label, tb) = &testbeds()[0];
    let id = server_id(label);
    let net = FaultNetwork::new(tb, FaultPlan::none(0));
    assert_eq!(net.virtual_ms(), 0);
    let q = Message::query(9, ddx_dns::name("www.example.com"), RrType::A);
    let _ = net.query_outcome(&id, &q);
    let after_one = net.virtual_ms();
    assert!(after_one > 0, "query did not advance the virtual clock");
    net.advance_ms(250);
    assert_eq!(net.virtual_ms(), after_one + 250);
}

/// Unknown servers keep timing out through the decorator (no spurious
/// answers invented for missing routes).
#[test]
fn unknown_server_still_times_out() {
    let (_, tb) = &testbeds()[0];
    let net = FaultNetwork::new(tb, FaultPlan::uniform(11, 100));
    let q = Message::query(9, ddx_dns::name("www.example.com"), RrType::A);
    let ghost = ServerId("nowhere#0".into());
    assert!(net.query(&ghost, &q).is_none());
}
