//! Proof that the server's memo-hit path is zero-copy end to end: answering
//! a repeated query from a parsed [`MessageView`] constructs no owned
//! `Message` from the wire bytes (tracked by the `dns.view.to_owned`
//! counter) and returns the identical cached `Arc`.
//!
//! A single `#[test]` in its own binary: the counter is process-global, so
//! exact delta assertions cannot share a process with other tests.

use std::sync::Arc;

use ddx_dns::{name, wire, Message, MessageView, RrType};
use ddx_server::sandbox::{build_sandbox, ZoneSpec};

#[test]
fn memo_hit_answers_without_materializing_the_query() {
    let apex = name("zerocopy.test");
    let sb = build_sandbox(&[ZoneSpec::conventional(apex.clone())], 1_000_000, 77);
    let server = sb.testbed.server(&sb.zones[0].servers[0]).unwrap().clone();

    let query = Message::query(0x7A7A, apex.clone(), RrType::Soa);
    let encoded = wire::encode(&query);
    let view = MessageView::parse(&encoded).expect("query parses");

    let to_owned = ddx_obs::counter("dns.view.to_owned", &[]);
    let baseline = to_owned.get();

    // Miss, then hit — both answered straight from the view.
    let first = server.handle_view(&view).expect("answer");
    let second = server.handle_view(&view).expect("answer");

    assert_eq!(
        to_owned.get(),
        baseline,
        "the view-driven request path must never bridge the query to an owned Message"
    );
    assert!(
        Arc::ptr_eq(&first, &second),
        "the repeat query must be served from the cached Arc"
    );

    // Byte equivalence with the owned request path: stamping the query id
    // into the encoded wire bytes (as the transports do) reproduces the
    // owned handler's response exactly.
    let owned = server.handle(&query).expect("owned-path answer");
    let mut from_view = wire::encode(&second);
    from_view[0..2].copy_from_slice(&query.id.to_be_bytes());
    assert_eq!(from_view, wire::encode(&owned));
}
