//! Concurrency property tests for the sharded answer memo: many client
//! threads hammering one server must (a) never change a single response
//! byte relative to the naive uncached oracle, and (b) keep the per-shard
//! accounting exact (`lookups == hits + misses` on every shard, with the
//! global registry counters moving at least as much as any one instance).

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};

use common::{qnames, variants, QTYPES};
use ddx_dns::{wire, Message};
use ddx_server::Server;
use proptest::prelude::*;

/// SplitMix64 — keeps each thread's query stream deterministic in the
/// proptest-chosen seed without sharing RNG state across threads.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn nth_query(stream: &mut u64, id: u16) -> Message {
    let qname = qnames()[(splitmix(stream) % 15) as usize].clone();
    let qtype = QTYPES[(splitmix(stream) % 10) as usize];
    let mut q = Message::query(id, qname, qtype);
    q.flags.rd = splitmix(stream) % 2 == 0;
    if splitmix(stream) % 2 == 0 {
        q.edns = None;
    }
    q
}

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 8 threads × 64 seed-derived queries against every zone variant:
    /// each answer from the shared sharded path is byte-identical to the
    /// naive linear-scan oracle computed on the same thread. Contention on
    /// the memo shards must never surface as a different (or missing)
    /// response.
    #[test]
    fn concurrent_sharded_path_matches_naive_oracle(seed in any::<u64>()) {
        let (label, server) = &variants()[(seed % 8) as usize];
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    let mut stream = seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                    for i in 0..QUERIES_PER_THREAD {
                        let q = nth_query(&mut stream, (t * QUERIES_PER_THREAD + i) as u16);
                        let naive = server.handle_uncached(&q);
                        let cached = server.handle(&q);
                        assert_eq!(
                            cached.as_ref().map(wire::encode),
                            naive.as_ref().map(wire::encode),
                            "zone={label} thread={t} q={:?}",
                            q.question
                        );
                    }
                });
            }
        });
    }
}

/// Per-shard accounting stays exact under contention: on every shard
/// `lookups == hits + misses`, instance totals equal the shard sums, and
/// the process-wide registry counters moved by at least the instance's
/// deltas (the registry aggregates every memo in the process, so `>=`).
#[test]
fn shard_accounting_is_exact_under_contention() {
    let mut server: Server = variants()[0].1.clone();
    server.configure_memo(8, 256);
    let reg_before = ddx_obs::snapshot();
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let server = &server;
            scope.spawn(move || {
                let mut stream = 0xC0FFEE ^ ((t as u64) << 17);
                for _ in 0..QUERIES_PER_THREAD {
                    let id = (NEXT.fetch_add(1, Ordering::Relaxed) % 0xFFFF) as u16;
                    let q = nth_query(&mut stream, id);
                    let _ = server.handle(&q);
                }
            });
        }
    });
    let shards = server.answer_memo_shard_stats();
    assert_eq!(shards.len(), 8);
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(
            s.lookups,
            s.hits + s.misses,
            "shard {i} leaked a lookup: {s:?}"
        );
        hits += s.hits;
        misses += s.misses;
    }
    assert_eq!(server.answer_cache_stats(), (hits, misses));
    // Memoizable traffic exists in the stream (AXFR and FormErr queries
    // bypass the memo, but plain lookups dominate).
    assert!(misses > 0, "the hammer must populate the memo");
    assert!(hits > 0, "repeated (qname,qtype) pairs must hit");
    let reg_after = ddx_obs::snapshot();
    let delta = |name: &str| {
        reg_after.counters.get(name).copied().unwrap_or(0)
            - reg_before.counters.get(name).copied().unwrap_or(0)
    };
    assert!(delta("server.answer_memo.lookups") >= hits + misses);
    assert!(delta("server.answer_memo.hits") >= hits);
    assert!(delta("server.answer_memo.misses") >= misses);
}

/// A tiny per-shard cap forces clear-at-cap flushes, and the dropped
/// entries surface both on the instance and the registry eviction counter.
#[test]
fn cap_overflow_reports_evictions() {
    let mut server: Server = variants()[0].1.clone();
    server.configure_memo(2, 4);
    let reg_before = ddx_obs::snapshot();
    let mut stream = 0xFEED_u64;
    for id in 0..512u16 {
        let q = nth_query(&mut stream, id);
        let _ = server.handle(&q);
    }
    assert!(
        server.answer_memo_evictions() > 0,
        "512 varied queries into 2×4 slots must evict"
    );
    let reg_after = ddx_obs::snapshot();
    let before = reg_before
        .counters
        .get("server.answer_memo.evictions")
        .copied()
        .unwrap_or(0);
    let after = reg_after
        .counters
        .get("server.answer_memo.evictions")
        .copied()
        .unwrap_or(0);
    assert!(after - before >= server.answer_memo_evictions());
}
