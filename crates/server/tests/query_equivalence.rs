//! Property test pinning the tentpole invariant of the query-path overhaul:
//! the memoized, index-backed answer path ([`Server::handle`]) is
//! byte-for-byte identical to the original linear-scan path
//! ([`Server::handle_uncached`]) — across NSEC and NSEC3 zones (with and
//! without opt-out), wildcards, broken/corrupted denial chains, stripped
//! signatures, and unsigned zones. Every query is asked twice so the second
//! round exercises the memo-hit path against the same oracle.

use std::net::Ipv4Addr;
use std::sync::OnceLock;

use ddx_dns::{name, wire, Message, Name, RData, Record, RrType, Soa, Zone};
use ddx_dnssec::{sign_zone, Algorithm, KeyPair, KeyRing, KeyRole, Nsec3Config, SignerConfig};
use ddx_server::{Server, ServerId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NOW: u32 = 1_000_000;

fn base_zone(wildcard: bool) -> Zone {
    let mut z = Zone::new(name("example.com"));
    z.add(Record::new(
        name("example.com"),
        3600,
        RData::Soa(Soa {
            mname: name("ns1.example.com"),
            rname: name("hostmaster.example.com"),
            serial: 1,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(
        name("example.com"),
        3600,
        RData::Ns(name("ns1.example.com")),
    ));
    z.add(Record::new(
        name("ns1.example.com"),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    z.add(Record::new(
        name("www.example.com"),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 80)),
    ));
    z.add(Record::new(
        name("alias.example.com"),
        300,
        RData::Cname(name("www.example.com")),
    ));
    z.add(Record::new(
        name("sub.example.com"),
        3600,
        RData::Ns(name("ns1.sub.example.com")),
    ));
    z.add(Record::new(
        name("ns1.sub.example.com"),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 53)),
    ));
    // A second delegation whose NS host lives outside the zone: the closest
    // the single-server view gets to a lame delegation (no glue to return).
    z.add(Record::new(
        name("lame.example.com"),
        3600,
        RData::Ns(name("ns1.elsewhere.net")),
    ));
    if wildcard {
        z.add(Record::new(
            name("*.wild.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 42)),
        ));
    }
    z
}

fn sign(z: &mut Zone, nsec3: Option<Nsec3Config>) {
    let mut ring = KeyRing::new();
    let mut rng = StdRng::seed_from_u64(7);
    for role in [KeyRole::Ksk, KeyRole::Zsk] {
        ring.add(KeyPair::generate(
            &mut rng,
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            role,
            NOW,
        ));
    }
    let cfg = match nsec3 {
        Some(c) => SignerConfig::nsec3_at(NOW, c),
        None => SignerConfig::nsec_at(NOW),
    };
    sign_zone(z, &ring, &cfg, NOW).unwrap();
}

/// The zone variants under test. Built once; servers are only ever read.
fn variants() -> &'static Vec<(&'static str, Server)> {
    static VARIANTS: OnceLock<Vec<(&'static str, Server)>> = OnceLock::new();
    VARIANTS.get_or_init(|| {
        let mut out: Vec<(&'static str, Zone)> = Vec::new();

        let mut z = base_zone(false);
        sign(&mut z, None);
        out.push(("nsec", z));

        let mut z = base_zone(true);
        sign(&mut z, None);
        out.push(("nsec-wildcard", z));

        let mut z = base_zone(false);
        sign(&mut z, Some(Nsec3Config::default()));
        out.push(("nsec3", z));

        let mut z = base_zone(true);
        sign(
            &mut z,
            Some(Nsec3Config {
                opt_out: true,
                ..Nsec3Config::default()
            }),
        );
        out.push(("nsec3-optout-wildcard", z));

        // Broken NSEC chain: one link removed after signing. The index must
        // detect the malformed chain and fall back to the same linear
        // first-match scan the naive path uses.
        let mut z = base_zone(false);
        sign(&mut z, None);
        z.remove(&name("www.example.com"), RrType::Nsec);
        out.push(("nsec-broken-chain", z));

        // Corrupted NSEC next pointer: the chain no longer closes.
        let mut z = base_zone(false);
        sign(&mut z, None);
        if let Some(set) = z.get_mut(&name("alias.example.com"), RrType::Nsec) {
            for rdata in &mut set.rdatas {
                if let RData::Nsec(n) = rdata {
                    n.next_name = name("zzz.outside.test");
                }
            }
        }
        out.push(("nsec-corrupt-next", z));

        // Signatures stripped post-signing (NSEC3 ring survives unsigned).
        let mut z = base_zone(false);
        sign(&mut z, Some(Nsec3Config::default()));
        z.strip_type(RrType::Rrsig);
        out.push(("nsec3-stripped-sigs", z));

        // Entirely unsigned.
        out.push(("unsigned", base_zone(true)));

        out.into_iter()
            .map(|(label, zone)| {
                let mut s = Server::new(ServerId(format!("eq-{label}")));
                s.load_zone(zone);
                (label, s)
            })
            .collect()
    })
}

fn qnames() -> Vec<Name> {
    vec![
        name("example.com"),
        name("www.example.com"),
        name("alias.example.com"),
        name("ns1.example.com"),
        name("nope.example.com"),
        name("a.b.nope.example.com"),
        name("sub.example.com"),
        name("x.sub.example.com"),
        name("lame.example.com"),
        name("y.lame.example.com"),
        name("anything.wild.example.com"),
        name("deep.under.wild.example.com"),
        name("wild.example.com"),
        name("com"),
        name("unrelated.test"),
    ]
}

const QTYPES: &[RrType] = &[
    RrType::A,
    RrType::Aaaa,
    RrType::Ns,
    RrType::Soa,
    RrType::Cname,
    RrType::Dnskey,
    RrType::Ds,
    RrType::Txt,
    RrType::Nsec,
    RrType::Nsec3Param,
];

fn encode_opt(resp: &Option<Message>) -> Option<Vec<u8>> {
    resp.as_ref().map(wire::encode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// For every (zone variant, qname, qtype, DO, RD) combination the
    /// indexed+memoized path and the naive path agree on the wire — on the
    /// first query (memo miss, fresh index) and on a repeat (memo hit).
    #[test]
    fn cached_path_is_byte_identical_to_naive(
        zone_idx in 0usize..8,
        qname_idx in 0usize..15,
        qtype_idx in 0usize..10,
        dnssec_ok in any::<bool>(),
        rd in any::<bool>(),
    ) {
        let (label, server) = &variants()[zone_idx];
        let qname = qnames()[qname_idx].clone();
        let qtype = QTYPES[qtype_idx];
        let mut q = Message::query(9, qname, qtype);
        q.flags.rd = rd;
        if !dnssec_ok {
            q.edns = None;
        }
        let naive = server.handle_uncached(&q);
        for round in 0..2 {
            let cached = server.handle(&q);
            prop_assert_eq!(
                encode_opt(&cached),
                encode_opt(&naive),
                "zone={} round={} q={:?}", label, round, q.question
            );
        }
    }
}

/// The memo must serve repeats (hit counter moves) while staying invisible
/// to response bytes — checked against the naive oracle above; this pins the
/// counters themselves.
#[test]
fn equivalence_run_populates_the_memo() {
    let (_, server) = &variants()[0];
    let q = Message::query(3, name("www.example.com"), RrType::A);
    let r1 = server.handle(&q);
    let r2 = server.handle(&q);
    assert_eq!(r1, r2);
    let (hits, misses) = server.answer_cache_stats();
    assert!(hits >= 1, "repeat query must hit the memo");
    assert!(misses >= 1);
}
