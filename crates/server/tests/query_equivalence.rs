//! Property test pinning the tentpole invariant of the query-path overhaul:
//! the memoized, index-backed answer path ([`Server::handle`]) is
//! byte-for-byte identical to the original linear-scan path
//! ([`Server::handle_uncached`]) — across NSEC and NSEC3 zones (with and
//! without opt-out), wildcards, broken/corrupted denial chains, stripped
//! signatures, and unsigned zones. Every query is asked twice so the second
//! round exercises the memo-hit path against the same oracle.

mod common;

use common::{qnames, variants, QTYPES};
use ddx_dns::{name, wire, Message, RrType};
use proptest::prelude::*;

fn encode_opt(resp: &Option<Message>) -> Option<Vec<u8>> {
    resp.as_ref().map(wire::encode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// For every (zone variant, qname, qtype, DO, RD) combination the
    /// indexed+memoized path and the naive path agree on the wire — on the
    /// first query (memo miss, fresh index) and on a repeat (memo hit).
    #[test]
    fn cached_path_is_byte_identical_to_naive(
        zone_idx in 0usize..8,
        qname_idx in 0usize..15,
        qtype_idx in 0usize..10,
        dnssec_ok in any::<bool>(),
        rd in any::<bool>(),
    ) {
        let (label, server) = &variants()[zone_idx];
        let qname = qnames()[qname_idx].clone();
        let qtype = QTYPES[qtype_idx];
        let mut q = Message::query(9, qname, qtype);
        q.flags.rd = rd;
        if !dnssec_ok {
            q.edns = None;
        }
        let naive = server.handle_uncached(&q);
        for round in 0..2 {
            let cached = server.handle(&q);
            prop_assert_eq!(
                encode_opt(&cached),
                encode_opt(&naive),
                "zone={} round={} q={:?}", label, round, q.question
            );
        }
    }
}

/// The memo must serve repeats (hit counter moves) while staying invisible
/// to response bytes — checked against the naive oracle above; this pins the
/// counters themselves.
#[test]
fn equivalence_run_populates_the_memo() {
    let (_, server) = &variants()[0];
    let q = Message::query(3, name("www.example.com"), RrType::A);
    let r1 = server.handle(&q);
    let r2 = server.handle(&q);
    assert_eq!(r1, r2);
    let (hits, misses) = server.answer_cache_stats();
    assert!(hits >= 1, "repeat query must hit the memo");
    assert!(misses >= 1);
}
