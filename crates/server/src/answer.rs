//! Generation-stamped answer memoization for [`Server`](crate::Server).
//!
//! The probe→grok→fix loop re-issues the same ~7 queries per server per
//! zone on every DFixer iteration, and most iterations change nothing on
//! most servers. The memo keys each response on the serving zone's
//! [`generation`](ddx_dns::Zone::generation) stamp plus everything the
//! response bytes depend on (qname, qtype, qclass, the RD flag, and the
//! EDNS state carrying the DO bit), so an unchanged zone answers a repeated
//! query with an `Arc` pointer bump. Any zone mutation draws a fresh
//! generation, which makes every old entry unreachable — invalidation is
//! implicit in the key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ddx_dns::{Edns, Message, Name, RrClass, RrType, Zone};

use crate::index::ZoneIndex;

/// Everything (besides the zone content and the server behavior, both
/// handled outside the memo) that the bytes of a response depend on —
/// except the message id, which the cache layer patches on mismatch.
///
/// Also the per-server key half of [`CachingNetwork`](crate::CachingNetwork),
/// so client- and server-side caches agree on what identifies a question.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnswerKey {
    pub qname: Name,
    pub qtype: RrType,
    pub qclass: RrClass,
    /// Recursion-desired flag (echoed into responses).
    pub rd: bool,
    /// EDNS state of the query (the DO bit selects DNSSEC records; the
    /// response echoes the whole pseudo-section).
    pub edns: Option<Edns>,
}

impl AnswerKey {
    /// Builds the key for a query message; `None` when the query has no
    /// question (such messages are answered FORMERR and never cached).
    pub fn for_query(query: &Message) -> Option<AnswerKey> {
        let q = query.question.as_ref()?;
        Some(AnswerKey {
            qname: q.qname.clone(),
            qtype: q.qtype,
            qclass: q.qclass,
            rd: query.flags.rd,
            edns: query.edns,
        })
    }
}

/// Entry cap; reaching it clears the memo (stale generations dominate a
/// full table, so wholesale eviction is both simplest and correct).
const MEMO_CAP: usize = 8_192;

/// Per-server answer memo plus the lazily built per-generation zone
/// indexes. Interior-mutable (the server answers through `&self` from
/// multiple transport threads).
///
/// Hits and misses are double-counted: per-instance atomics feed the
/// legacy [`AnswerMemo::stats`] tuple, and the process-wide
/// `server.answer_memo.{lookups,hits,misses}` counters in the [`ddx_obs`]
/// registry aggregate across every server. `lookups` counts every
/// [`AnswerMemo::get`] call, so `hits + misses == lookups` is an invariant
/// a metrics snapshot can check.
#[derive(Debug)]
pub struct AnswerMemo {
    entries: Mutex<HashMap<(u64, AnswerKey), Arc<Message>>>,
    indexes: Mutex<HashMap<Name, Arc<ZoneIndex>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    obs_lookups: ddx_obs::Counter,
    obs_hits: ddx_obs::Counter,
    obs_misses: ddx_obs::Counter,
}

impl Default for AnswerMemo {
    fn default() -> Self {
        AnswerMemo {
            entries: Mutex::default(),
            indexes: Mutex::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs_lookups: ddx_obs::counter("server.answer_memo.lookups", &[]),
            obs_hits: ddx_obs::counter("server.answer_memo.hits", &[]),
            obs_misses: ddx_obs::counter("server.answer_memo.misses", &[]),
        }
    }
}

impl AnswerMemo {
    pub fn new() -> Self {
        AnswerMemo::default()
    }

    /// Looks up a cached response for `key` under zone generation
    /// `generation`. Counts a hit or miss.
    pub fn get(&self, generation: u64, key: &AnswerKey) -> Option<Arc<Message>> {
        let hit = self.entries.lock().get(&(generation, key.clone())).cloned();
        self.obs_lookups.inc();
        match &hit {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.inc();
                ddx_dns::trace_event!(
                    target: "server::memo",
                    "answer cache hit",
                    generation = generation,
                    qname = key.qname,
                );
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.inc();
                ddx_dns::trace_event!(
                    target: "server::memo",
                    "answer cache miss",
                    generation = generation,
                    qname = key.qname,
                );
            }
        }
        hit
    }

    /// Stores a freshly computed response.
    pub fn insert(&self, generation: u64, key: AnswerKey, response: Arc<Message>) {
        let mut entries = self.entries.lock();
        if entries.len() >= MEMO_CAP {
            entries.clear();
        }
        entries.insert((generation, key), response);
    }

    /// The index for `zone`, rebuilt if the cached one belongs to an older
    /// generation.
    pub fn index_for(&self, zone: &Zone) -> Arc<ZoneIndex> {
        let mut indexes = self.indexes.lock();
        match indexes.get(zone.apex()) {
            Some(idx) if idx.generation() == zone.generation() => Arc::clone(idx),
            _ => {
                let idx = Arc::new(ZoneIndex::build(zone));
                indexes.insert(zone.apex().clone(), Arc::clone(&idx));
                idx
            }
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}
