//! Generation-stamped, qname-sharded answer memoization for
//! [`Server`](crate::Server).
//!
//! The probe→grok→fix loop re-issues the same ~7 queries per server per
//! zone on every DFixer iteration, and most iterations change nothing on
//! most servers. The memo keys each response on the serving zone's
//! [`generation`](ddx_dns::Zone::generation) stamp plus everything the
//! response bytes depend on (qname, qtype, qclass, the RD flag, and the
//! EDNS state carrying the DO bit), so an unchanged zone answers a repeated
//! query with an `Arc` pointer bump. Any zone mutation draws a fresh
//! generation, which makes every old entry unreachable — invalidation is
//! implicit in the key.
//!
//! # Sharding
//!
//! The memo is split into [`AnswerMemo::shard_count`] independent shards,
//! selected by an FNV-1a hash of the query name's lowercased label bytes.
//! Each shard owns its own entry map, its own per-generation
//! [`ZoneIndex`] cache, and its own counters, so transport workers
//! hammering one server from many threads contend only when two in-flight
//! queries hash to the same shard. Entries for one qname always land in
//! one shard (the hash ignores qtype/DO), which keeps the per-shard
//! `lookups == hits + misses` accounting exact under concurrency and makes
//! the clear-at-cap eviction local: a hot shard flushing does not dump the
//! whole process's working set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ddx_dns::{Edns, Message, MessageView, Name, RrClass, RrType, Zone};

use crate::index::ZoneIndex;

/// Everything (besides the zone content and the server behavior, both
/// handled outside the memo) that the bytes of a response depend on —
/// except the message id, which the cache layer patches on mismatch.
///
/// Also the per-server key half of [`CachingNetwork`](crate::CachingNetwork),
/// so client- and server-side caches agree on what identifies a question.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnswerKey {
    pub qname: Name,
    pub qtype: RrType,
    pub qclass: RrClass,
    /// Recursion-desired flag (echoed into responses).
    pub rd: bool,
    /// EDNS state of the query (the DO bit selects DNSSEC records; the
    /// response echoes the whole pseudo-section).
    pub edns: Option<Edns>,
}

impl AnswerKey {
    /// Builds the key for a query message; `None` when the query has no
    /// question (such messages are answered FORMERR and never cached).
    pub fn for_query(query: &Message) -> Option<AnswerKey> {
        let q = query.question.as_ref()?;
        Some(AnswerKey {
            qname: q.qname.clone(),
            qtype: q.qtype,
            qclass: q.qclass,
            rd: query.flags.rd,
            edns: query.edns,
        })
    }

    /// Builds the key straight from a zero-copy wire view. The qname is the
    /// only allocation (the key must own it to live in the memo map); no
    /// owned `Message` is ever constructed. Produces a key equal to what
    /// [`AnswerKey::for_query`] would build for the decoded message.
    pub fn from_view(view: &MessageView<'_>) -> Option<AnswerKey> {
        let q = view.question()?;
        Some(AnswerKey {
            qname: q.qname().to_name(),
            qtype: q.qtype(),
            qclass: q.qclass(),
            rd: view.flags().rd,
            edns: view.edns(),
        })
    }
}

/// Default shard count: enough to keep 8 transport workers from serializing
/// on one mutex, small enough that per-shard index duplication stays cheap.
pub const DEFAULT_SHARDS: usize = 8;

/// Default per-shard entry cap. With [`DEFAULT_SHARDS`] shards this keeps
/// the historical 8,192-entry process total; reaching the cap clears that
/// shard only (stale generations dominate a full table, so wholesale
/// per-shard eviction is both simplest and correct).
pub const DEFAULT_SHARD_CAP: usize = 1_024;

/// Stable FNV-1a over the lowercased label bytes of `qname` (length-
/// prefixed, so `("ab","c")` and `("a","bc")` hash apart). Case-insensitive
/// to match DNS name equality: `WWW.example.com` and `www.example.com`
/// must land in the same shard.
fn qname_shard_hash(qname: &Name) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for label in qname.labels() {
        h ^= label.len() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        for &b in label.as_bytes() {
            h ^= b.to_ascii_lowercase() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Per-shard snapshot of memo counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by clear-at-cap flushes of this shard.
    pub evictions: u64,
}

/// One memo shard: its slice of the entry space plus its own index cache
/// and counters. Never shared across shards, so contention is bounded by
/// qname-hash collisions.
#[derive(Debug, Default)]
struct MemoShard {
    entries: Mutex<HashMap<(u64, AnswerKey), Arc<Message>>>,
    indexes: Mutex<HashMap<Name, Arc<ZoneIndex>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl MemoShard {
    fn stats(&self) -> ShardStats {
        ShardStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Per-server answer memo plus the lazily built per-generation zone
/// indexes, sharded by qname hash. Interior-mutable (the server answers
/// through `&self` from multiple transport threads).
///
/// Hits and misses are double-counted: per-instance atomics feed the
/// legacy [`AnswerMemo::stats`] tuple, and the process-wide
/// `server.answer_memo.{lookups,hits,misses,evictions}` counters in the
/// [`ddx_obs`] registry aggregate across every server. `lookups` counts
/// every [`AnswerMemo::get`] call, so `hits + misses == lookups` is an
/// invariant a metrics snapshot can check — per shard as well as globally.
#[derive(Debug)]
pub struct AnswerMemo {
    shards: Vec<MemoShard>,
    /// Per-shard entry cap; a shard reaching it is cleared wholesale.
    shard_cap: usize,
    obs_lookups: ddx_obs::Counter,
    obs_hits: ddx_obs::Counter,
    obs_misses: ddx_obs::Counter,
    obs_evictions: ddx_obs::Counter,
}

impl Default for AnswerMemo {
    fn default() -> Self {
        AnswerMemo::with_config(DEFAULT_SHARDS, DEFAULT_SHARD_CAP)
    }
}

impl AnswerMemo {
    pub fn new() -> Self {
        AnswerMemo::default()
    }

    /// A memo with `shards` shards of at most `shard_cap` entries each.
    /// `shards` is clamped to at least 1.
    pub fn with_config(shards: usize, shard_cap: usize) -> Self {
        let shards = shards.max(1);
        AnswerMemo {
            shards: (0..shards).map(|_| MemoShard::default()).collect(),
            shard_cap: shard_cap.max(1),
            obs_lookups: ddx_obs::counter("server.answer_memo.lookups", &[]),
            obs_hits: ddx_obs::counter("server.answer_memo.hits", &[]),
            obs_misses: ddx_obs::counter("server.answer_memo.misses", &[]),
            obs_evictions: ddx_obs::counter("server.answer_memo.evictions", &[]),
        }
    }

    /// Number of shards this memo was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry cap this memo was built with.
    pub fn shard_cap(&self) -> usize {
        self.shard_cap
    }

    fn shard_for(&self, qname: &Name) -> &MemoShard {
        let idx = (qname_shard_hash(qname) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks up a cached response for `key` under zone generation
    /// `generation`. Counts a hit or miss on the owning shard.
    pub fn get(&self, generation: u64, key: &AnswerKey) -> Option<Arc<Message>> {
        let shard = self.shard_for(&key.qname);
        shard.lookups.fetch_add(1, Ordering::Relaxed);
        self.obs_lookups.inc();
        let hit = shard
            .entries
            .lock()
            .get(&(generation, key.clone()))
            .cloned();
        match &hit {
            Some(_) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.inc();
                ddx_dns::trace_event!(
                    target: "server::memo",
                    "answer cache hit",
                    generation = generation,
                    qname = key.qname,
                );
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.inc();
                ddx_dns::trace_event!(
                    target: "server::memo",
                    "answer cache miss",
                    generation = generation,
                    qname = key.qname,
                );
            }
        }
        hit
    }

    /// Stores a freshly computed response in the qname's shard, flushing
    /// the shard first when it is at capacity (counted as evictions).
    pub fn insert(&self, generation: u64, key: AnswerKey, response: Arc<Message>) {
        let shard = self.shard_for(&key.qname);
        let mut entries = shard.entries.lock();
        if entries.len() >= self.shard_cap {
            let dropped = entries.len() as u64;
            entries.clear();
            shard.evictions.fetch_add(dropped, Ordering::Relaxed);
            self.obs_evictions.add(dropped);
        }
        entries.insert((generation, key), response);
    }

    /// The index for `zone`, rebuilt if the cached one belongs to an older
    /// generation. The index cache lives on the shard owning `qname`, so
    /// each shard holds its own copy — shared-nothing at the price of up to
    /// `shard_count` builds per zone generation.
    pub fn index_for(&self, zone: &Zone, qname: &Name) -> Arc<ZoneIndex> {
        let shard = self.shard_for(qname);
        let mut indexes = shard.indexes.lock();
        match indexes.get(zone.apex()) {
            Some(idx) if idx.generation() == zone.generation() => Arc::clone(idx),
            _ => {
                let idx = Arc::new(ZoneIndex::build(zone));
                indexes.insert(zone.apex().clone(), Arc::clone(&idx));
                idx
            }
        }
    }

    /// (hits, misses) so far, summed across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            (
                h + s.hits.load(Ordering::Relaxed),
                m + s.misses.load(Ordering::Relaxed),
            )
        })
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Total evictions across shards (entries dropped by cap flushes).
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;

    fn key(qname: &str) -> AnswerKey {
        AnswerKey {
            qname: name(qname),
            qtype: RrType::A,
            qclass: RrClass::In,
            rd: false,
            edns: None,
        }
    }

    fn resp() -> Arc<Message> {
        Arc::new(Message::query(1, name("x.test"), RrType::A))
    }

    #[test]
    fn shard_hash_is_case_insensitive() {
        assert_eq!(
            qname_shard_hash(&name("WWW.Example.COM")),
            qname_shard_hash(&name("www.example.com"))
        );
        assert_ne!(
            qname_shard_hash(&name("a.example.com")),
            qname_shard_hash(&name("b.example.com"))
        );
    }

    #[test]
    fn per_shard_accounting_sums_to_totals() {
        let memo = AnswerMemo::with_config(4, 64);
        for i in 0..32 {
            let k = key(&format!("q{i}.example.com"));
            assert!(memo.get(1, &k).is_none());
            memo.insert(1, k.clone(), resp());
            assert!(memo.get(1, &k).is_some());
        }
        let (hits, misses) = memo.stats();
        assert_eq!((hits, misses), (32, 32));
        let shards = memo.shard_stats();
        assert_eq!(shards.len(), 4);
        for s in &shards {
            assert_eq!(s.lookups, s.hits + s.misses, "per-shard invariant");
        }
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), 32);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), 32);
    }

    #[test]
    fn cap_flush_counts_evictions_and_stays_local() {
        // One shard, cap 4: the fifth insert flushes the first four.
        let memo = AnswerMemo::with_config(1, 4);
        for i in 0..5 {
            memo.insert(1, key(&format!("q{i}.example.com")), resp());
        }
        assert_eq!(memo.evictions(), 4);
        // The freshly inserted fifth entry survived the flush.
        assert!(memo.get(1, &key("q4.example.com")).is_some());
        // A pre-flush entry is gone (miss).
        assert!(memo.get(1, &key("q0.example.com")).is_none());
    }

    #[test]
    fn same_qname_different_types_share_a_shard() {
        let memo = AnswerMemo::with_config(8, 64);
        let mut k1 = key("multi.example.com");
        let mut k2 = key("multi.example.com");
        k1.qtype = RrType::A;
        k2.qtype = RrType::Aaaa;
        memo.insert(1, k1, resp());
        memo.insert(1, k2, resp());
        let populated: Vec<_> = memo
            .shards
            .iter()
            .filter(|s| !s.entries.lock().is_empty())
            .collect();
        assert_eq!(populated.len(), 1, "one qname ⇒ one shard");
        assert_eq!(populated[0].entries.lock().len(), 2);
    }
}
