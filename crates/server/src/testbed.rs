//! The local testbed: a registry of authoritative servers plus the
//! NS-hostname → server mapping a prober needs to walk delegations, and the
//! [`Network`] abstraction over "send this server a query".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ddx_dns::{Message, Name};

use crate::server::{Server, ServerId};

/// Process-global stamp source for testbed *topology* changes (server set,
/// NS-host registrations) — the structural counterpart of the per-zone
/// content generations in `ddx_dns::Zone`. Monotonic, never reused.
static TOPOLOGY_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_topology_generation() -> u64 {
    TOPOLOGY_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Cheap change detection over the zones behind a [`Network`]: combined
/// generation fingerprints an incremental analyzer (`ddx_dnsviz`'s
/// `GrokMemo`) keys its cache on. Stamp equality implies "every observation
/// the prober could make is unchanged"; the reverse need not hold (a stamp
/// may change without an observable difference — that only costs a
/// recomputation, never a stale answer).
pub trait GenerationSource {
    /// Folds the content generation of **every** copy of the zone rooted at
    /// `apex` (divergent replicas carry distinct generations, so per-server
    /// inconsistency changes the fingerprint too). `None` when no server
    /// hosts the zone.
    fn zone_fingerprint(&self, apex: &Name) -> Option<u64>;

    /// Stamp of the server/NS-host topology: bumped whenever a server is
    /// added or an NS-host mapping changes, i.e. whenever `resolve_ns` or
    /// the hosting set may answer differently.
    fn topology_generation(&self) -> u64;
}

/// FNV-1a over a byte slice, continuing from `acc` (offset-basis for the
/// first call). Stable, dependency-free — fingerprints never leave the
/// process.
pub(crate) fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        acc ^= u64::from(*b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// The FNV-1a offset basis — seed for [`fnv1a`] chains.
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// What one query attempt produced, distinguishing the failure modes a
/// real-world prober must treat differently: a timeout can be retried, a
/// malformed response means the server answered but the bytes were garbage
/// (retrying may still help, but the observation itself is evidence), and a
/// truncated answer is visible as `flags.tc` on the [`QueryOutcome::Answer`].
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The server answered; inspect `flags.tc` for truncation.
    Answer(Arc<Message>),
    /// No response arrived (dropped query, dropped response, dead server).
    Timeout,
    /// Bytes arrived but did not decode as a DNS message.
    Malformed,
}

impl QueryOutcome {
    /// Collapses to the legacy `Option` view (`Malformed` → `None`).
    pub fn into_answer(self) -> Option<Arc<Message>> {
        match self {
            QueryOutcome::Answer(m) => Some(m),
            QueryOutcome::Timeout | QueryOutcome::Malformed => None,
        }
    }
}

/// Anything that can deliver a query to a named server and return its
/// response. `None` models a timeout (unresponsive server / no route).
///
/// Responses are `Arc`-shared: the common implementations serve from the
/// generation-stamped answer memo, where a repeat query is a pointer bump
/// rather than a deep copy, and probers hold the same allocation.
pub trait Network {
    fn query(&self, server: &ServerId, query: &Message) -> Option<Arc<Message>>;

    /// Like [`Network::query`], but with the failure mode preserved.
    ///
    /// The default maps `None` to [`QueryOutcome::Timeout`], which is
    /// correct for the in-process transports (they cannot produce
    /// undecodable bytes); fault-injecting and real-wire networks override
    /// this to surface [`QueryOutcome::Malformed`].
    fn query_outcome(&self, server: &ServerId, query: &Message) -> QueryOutcome {
        match self.query(server, query) {
            Some(m) => QueryOutcome::Answer(m),
            None => QueryOutcome::Timeout,
        }
    }

    /// Resolves an NS hostname to the server instance behind it — the
    /// testbed's substitute for glue/A-record resolution. `None` models an
    /// unresolvable nameserver (lame delegation).
    fn resolve_ns(&self, host: &Name) -> Option<ServerId>;
}

/// An in-process testbed holding every server of the sandbox hierarchy.
#[derive(Debug, Clone)]
pub struct Testbed {
    servers: HashMap<ServerId, Server>,
    /// NS hostname → hosting server (the testbed's substitute for glue
    /// resolution).
    ns_hosts: HashMap<Name, ServerId>,
    /// Topology stamp: advanced by every server/NS-mapping mutation. A
    /// clone keeps its stamp — content equality still holds.
    topology_generation: u64,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            servers: HashMap::new(),
            ns_hosts: HashMap::new(),
            topology_generation: fresh_topology_generation(),
        }
    }
}

impl Testbed {
    pub fn new() -> Self {
        Testbed::default()
    }

    /// Registers a server instance.
    pub fn add_server(&mut self, server: Server) {
        self.servers.insert(server.id.clone(), server);
        self.topology_generation = fresh_topology_generation();
    }

    /// Declares that the NS hostname `host` resolves to `server`.
    pub fn register_ns(&mut self, host: Name, server: ServerId) {
        self.ns_hosts.insert(host, server);
        self.topology_generation = fresh_topology_generation();
    }

    /// Removes an NS-host mapping, making that nameserver unresolvable
    /// (one way a delegation goes lame).
    pub fn unregister_ns(&mut self, host: &Name) -> Option<ServerId> {
        self.topology_generation = fresh_topology_generation();
        self.ns_hosts.remove(host)
    }

    /// Resolves an NS hostname to its server.
    pub fn server_for_host(&self, host: &Name) -> Option<&ServerId> {
        self.ns_hosts.get(host)
    }

    pub fn server(&self, id: &ServerId) -> Option<&Server> {
        self.servers.get(id)
    }

    pub fn server_mut(&mut self, id: &ServerId) -> Option<&mut Server> {
        self.servers.get_mut(id)
    }

    /// All registered server ids, sorted for determinism.
    pub fn server_ids(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.servers.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Servers that have a copy of the zone rooted at `apex`, sorted.
    pub fn servers_hosting(&self, apex: &Name) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self
            .servers
            .values()
            .filter(|s| s.zone(apex).is_some())
            .map(|s| s.id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// Applies a mutation to the zone copy of `apex` on every hosting
    /// server — the common "consistent change" path; per-server divergence
    /// goes through [`Testbed::server_mut`] instead.
    pub fn mutate_zone_everywhere<F: FnMut(&mut ddx_dns::Zone)>(&mut self, apex: &Name, mut f: F) {
        for server in self.servers.values_mut() {
            if let Some(zone) = server.zone_mut(apex) {
                f(zone);
            }
        }
    }

    /// Aggregate answer-memo counters across every server: `(hits, misses)`.
    pub fn answer_cache_stats(&self) -> (u64, u64) {
        self.servers
            .values()
            .map(|s| s.answer_cache_stats())
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }
}

impl Network for Testbed {
    fn query(&self, server: &ServerId, query: &Message) -> Option<Arc<Message>> {
        self.servers.get(server)?.handle_arc(query)
    }

    fn resolve_ns(&self, host: &Name) -> Option<ServerId> {
        self.ns_hosts.get(host).cloned()
    }
}

impl GenerationSource for Testbed {
    fn zone_fingerprint(&self, apex: &Name) -> Option<u64> {
        let mut acc = FNV_OFFSET;
        let mut hosted = false;
        for id in self.servers_hosting(apex) {
            let zone = self
                .server(&id)
                .and_then(|s| s.zone(apex))
                .expect("servers_hosting only returns hosting servers");
            acc = fnv1a(acc, id.0.as_bytes());
            acc = fnv1a(acc, &zone.generation().to_le_bytes());
            hosted = true;
        }
        hosted.then_some(acc)
    }

    fn topology_generation(&self) -> u64 {
        self.topology_generation
    }
}

/// A [`Network`] view of a testbed that bypasses the answer memo and the
/// zone indexes: every query runs the original linear-scan path. Exists for
/// equivalence testing and as the before-side of `bench_probe`.
#[derive(Debug, Clone, Copy)]
pub struct UncachedNetwork<'a>(pub &'a Testbed);

impl Network for UncachedNetwork<'_> {
    fn query(&self, server: &ServerId, query: &Message) -> Option<Arc<Message>> {
        self.0.server(server)?.handle_uncached(query).map(Arc::new)
    }

    fn resolve_ns(&self, host: &Name) -> Option<ServerId> {
        self.0.resolve_ns(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::{name, RData, Record, RrType, Soa, Zone};
    use std::net::Ipv4Addr;

    fn mini_zone(apex: &str) -> Zone {
        let apex = name(apex);
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex.child("ns1").unwrap(),
                rname: apex.child("hostmaster").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            RData::Ns(apex.child("ns1").unwrap()),
        ));
        z.add(Record::new(
            apex.child("ns1").unwrap(),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z
    }

    #[test]
    fn query_routing() {
        let mut tb = Testbed::new();
        let mut s = Server::new(ServerId("a#0".into()));
        s.load_zone(mini_zone("a.com"));
        tb.add_server(s);
        tb.register_ns(name("ns1.a.com"), ServerId("a#0".into()));

        let q = Message::query(1, name("a.com"), RrType::Soa);
        let r = tb.query(&ServerId("a#0".into()), &q).unwrap();
        assert!(r.flags.aa);
        assert!(tb.query(&ServerId("missing#9".into()), &q).is_none());
        assert_eq!(
            tb.server_for_host(&name("ns1.a.com")),
            Some(&ServerId("a#0".into()))
        );
    }

    #[test]
    fn hosting_and_mutation() {
        let mut tb = Testbed::new();
        for i in 0..2 {
            let mut s = Server::new(ServerId(format!("a#{i}")));
            s.load_zone(mini_zone("a.com"));
            tb.add_server(s);
        }
        assert_eq!(tb.servers_hosting(&name("a.com")).len(), 2);
        tb.mutate_zone_everywhere(&name("a.com"), |z| {
            z.add(Record::new(
                name("x.a.com"),
                60,
                RData::A(Ipv4Addr::new(10, 0, 0, 1)),
            ));
        });
        for id in tb.servers_hosting(&name("a.com")) {
            assert!(tb
                .server(&id)
                .unwrap()
                .zone(&name("a.com"))
                .unwrap()
                .has_name(&name("x.a.com")));
        }
        // Divergent change on one server only.
        let id0 = ServerId("a#0".into());
        tb.server_mut(&id0)
            .unwrap()
            .zone_mut(&name("a.com"))
            .unwrap()
            .remove(&name("x.a.com"), RrType::A);
        assert!(!tb
            .server(&id0)
            .unwrap()
            .zone(&name("a.com"))
            .unwrap()
            .has_name(&name("x.a.com")));
        assert!(tb
            .server(&ServerId("a#1".into()))
            .unwrap()
            .zone(&name("a.com"))
            .unwrap()
            .has_name(&name("x.a.com")));
    }

    #[test]
    fn zone_fingerprint_tracks_content_and_divergence() {
        let mut tb = Testbed::new();
        for i in 0..2 {
            let mut s = Server::new(ServerId(format!("a#{i}")));
            s.load_zone(mini_zone("a.com"));
            tb.add_server(s);
        }
        let apex = name("a.com");
        let fp0 = tb.zone_fingerprint(&apex).expect("hosted");
        assert_eq!(tb.zone_fingerprint(&apex), Some(fp0), "stable when idle");
        assert_eq!(tb.zone_fingerprint(&name("other.com")), None);

        // Consistent mutation everywhere changes the fingerprint.
        tb.mutate_zone_everywhere(&apex, |z| {
            z.add(Record::new(
                name("x.a.com"),
                60,
                RData::A(Ipv4Addr::new(10, 0, 0, 1)),
            ));
        });
        let fp1 = tb.zone_fingerprint(&apex).expect("hosted");
        assert_ne!(fp0, fp1);

        // Divergence on one replica also changes it.
        tb.server_mut(&ServerId("a#0".into()))
            .unwrap()
            .zone_mut(&apex)
            .unwrap()
            .remove(&name("x.a.com"), RrType::A);
        let fp2 = tb.zone_fingerprint(&apex).expect("hosted");
        assert_ne!(fp1, fp2);
    }

    #[test]
    fn topology_generation_tracks_structural_mutations() {
        let mut tb = Testbed::new();
        let g0 = tb.topology_generation();
        let mut s = Server::new(ServerId("a#0".into()));
        s.load_zone(mini_zone("a.com"));
        tb.add_server(s);
        let g1 = tb.topology_generation();
        assert!(g1 > g0, "add_server must bump the topology stamp");
        tb.register_ns(name("ns1.a.com"), ServerId("a#0".into()));
        let g2 = tb.topology_generation();
        assert!(g2 > g1, "register_ns must bump the topology stamp");
        tb.unregister_ns(&name("ns1.a.com"));
        assert!(tb.topology_generation() > g2);
        // Pure queries leave it alone.
        let before = tb.topology_generation();
        let _ = tb.zone_fingerprint(&name("a.com"));
        let _ = tb.servers_hosting(&name("a.com"));
        assert_eq!(tb.topology_generation(), before);
    }

    #[test]
    fn unregister_ns_makes_host_unresolvable() {
        let mut tb = Testbed::new();
        tb.register_ns(name("ns1.a.com"), ServerId("a#0".into()));
        assert!(tb.unregister_ns(&name("ns1.a.com")).is_some());
        assert!(tb.server_for_host(&name("ns1.a.com")).is_none());
    }
}
