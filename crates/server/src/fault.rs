//! Deterministic fault injection: [`FaultNetwork`] wraps any [`Network`]
//! and perturbs its answers the way the open Internet perturbs a
//! measurement pipeline — timeouts, dropped packets, slow servers, TC-bit
//! truncation, flapping availability, REFUSED/SERVFAIL rewrites, and
//! byte-level corruption.
//!
//! Every decision is a pure function of `(seed, server, qname, qtype,
//! attempt)`: a splitmix64 finalizer over an FNV-1a mix of those inputs.
//! There is no ambient entropy and no wall clock anywhere — latency is
//! *virtual* (an accumulated counter, never a sleep), so a failing run is
//! reproducible from its seed alone and independent of machine load or
//! query interleaving.
//!
//! Per-fault counters are exported via [`FaultNetwork::fault_stats`]
//! (mirroring `Testbed::answer_cache_stats`) and, under the `trace`
//! feature, each injected fault emits a `trace_event!`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use ddx_dns::{wire, Message, Name, Rcode, RrType};

use crate::server::ServerId;
use crate::testbed::{Network, QueryOutcome};

/// splitmix64 finalizer: the full-avalanche mixing step of the splitmix64
/// generator, used here as a stateless hash → uniform-u64 map.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, folded into an accumulator — the stable
/// (cross-platform, cross-version) hash feeding [`splitmix64`].
fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// An up/down availability schedule in virtual time: the server is down for
/// the first `down_ms` of every `period_ms` window, with a per-server phase
/// offset so replicas do not flap in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlapSchedule {
    pub period_ms: u64,
    pub down_ms: u64,
}

/// The fault mix. All rates are per-mille (0..=1000) and drawn from a
/// single uniform draw per query, in declaration order — so the sum of the
/// rates is the total fault probability and must stay ≤ 1000 to leave room
/// for clean answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-query fault derivation.
    pub seed: u64,
    /// Query never reaches the server (counted separately from timeouts,
    /// but both surface as [`QueryOutcome::Timeout`]).
    pub drop_permille: u16,
    /// Response lost on the way back.
    pub timeout_permille: u16,
    /// Answer delivered after `slow_latency_ms` of virtual latency.
    pub slow_permille: u16,
    /// Answer rewritten to a TC-bit-only truncated response.
    pub truncate_permille: u16,
    /// Answer rewritten to REFUSED with empty sections.
    pub refused_permille: u16,
    /// Answer rewritten to SERVFAIL with empty sections.
    pub servfail_permille: u16,
    /// Answer re-encoded with 1–3 flipped bytes; if the result no longer
    /// decodes the outcome is [`QueryOutcome::Malformed`].
    pub corrupt_permille: u16,
    /// Virtual latency added by a slow response.
    pub slow_latency_ms: u64,
    /// Availability schedule; while down every query times out.
    pub flap: Option<FlapSchedule>,
    /// Faults only fire on attempts `< max_faulty_attempts`; later retries
    /// are served clean. This models *transient* trouble: a prober with
    /// enough retries converges to the fault-free observation.
    pub max_faulty_attempts: Option<u32>,
    /// Restrict injection to one server (others pass through untouched).
    pub only_server: Option<ServerId>,
}

impl FaultPlan {
    /// A plan that injects nothing: the wrapped network must be observably
    /// identical through it.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_permille: 0,
            timeout_permille: 0,
            slow_permille: 0,
            truncate_permille: 0,
            refused_permille: 0,
            servfail_permille: 0,
            corrupt_permille: 0,
            slow_latency_ms: 200,
            flap: None,
            max_faulty_attempts: None,
            only_server: None,
        }
    }

    /// A uniform mix: every fault kind at `permille` each.
    pub fn uniform(seed: u64, permille: u16) -> Self {
        FaultPlan {
            drop_permille: permille,
            timeout_permille: permille,
            slow_permille: permille,
            truncate_permille: permille,
            refused_permille: permille,
            servfail_permille: permille,
            corrupt_permille: permille,
            ..FaultPlan::none(seed)
        }
    }

    /// True when no query can be perturbed (short-circuits the whole
    /// decision path, so passthrough is exact).
    pub fn is_passthrough(&self) -> bool {
        self.drop_permille == 0
            && self.timeout_permille == 0
            && self.slow_permille == 0
            && self.truncate_permille == 0
            && self.refused_permille == 0
            && self.servfail_permille == 0
            && self.corrupt_permille == 0
            && self.flap.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none(0)
    }
}

/// Which fault a draw selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Drop,
    Timeout,
    Slow,
    Truncate,
    Refused,
    ServFail,
    Corrupt,
}

/// Per-fault counters, exported like `answer_cache_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Queries forwarded untouched.
    pub passed: u64,
    pub drops: u64,
    pub timeouts: u64,
    pub slow: u64,
    pub truncated: u64,
    pub refused: u64,
    pub servfail: u64,
    pub corrupted: u64,
    /// Timeouts caused by a flap-down window (not counted in `timeouts`).
    pub flap_drops: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn injected(&self) -> u64 {
        self.drops
            + self.timeouts
            + self.slow
            + self.truncated
            + self.refused
            + self.servfail
            + self.corrupted
            + self.flap_drops
    }
}

/// Global-registry handles mirroring [`FaultStats`], created once per
/// decorator. `queries` counts every [`Network::query_outcome`] call through
/// the decorator and every other counter fires exactly once per call, so
/// `server.fault.passed + Σ server.fault.injected{kind=…} ==
/// server.fault.queries` is an invariant a metrics snapshot can check.
struct FaultObs {
    queries: ddx_obs::Counter,
    passed: ddx_obs::Counter,
    drops: ddx_obs::Counter,
    timeouts: ddx_obs::Counter,
    slow: ddx_obs::Counter,
    truncated: ddx_obs::Counter,
    refused: ddx_obs::Counter,
    servfail: ddx_obs::Counter,
    corrupted: ddx_obs::Counter,
    flap_drops: ddx_obs::Counter,
}

impl FaultObs {
    fn new() -> Self {
        let injected = |kind| ddx_obs::counter("server.fault.injected", &[("kind", kind)]);
        FaultObs {
            queries: ddx_obs::counter("server.fault.queries", &[]),
            passed: ddx_obs::counter("server.fault.passed", &[]),
            drops: injected("drop"),
            timeouts: injected("timeout"),
            slow: injected("slow"),
            truncated: injected("truncate"),
            refused: injected("refused"),
            servfail: injected("servfail"),
            corrupted: injected("corrupt"),
            flap_drops: injected("flap_down"),
        }
    }
}

#[derive(Default)]
struct FaultState {
    /// Attempt counter per (server, qname-key, qtype): how many times this
    /// exact question has been asked of this server.
    attempts: HashMap<(ServerId, String, u16), u32>,
    /// Virtual clock, advanced per query; drives the flap schedule.
    clock_ms: u64,
    stats: FaultStats,
}

/// The fault-injecting [`Network`] decorator.
///
/// Wraps any network by reference; all interior state (attempt counters,
/// virtual clock, fault counters) sits behind a mutex so the decorator is
/// usable wherever the wrapped network is.
pub struct FaultNetwork<'a> {
    inner: &'a dyn Network,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    obs: FaultObs,
}

/// Virtual cost of one query round-trip (ms). Only the *ratios* matter —
/// this just makes the flap schedule advance as queries flow.
const QUERY_COST_MS: u64 = 10;

impl<'a> FaultNetwork<'a> {
    pub fn new(inner: &'a dyn Network, plan: FaultPlan) -> Self {
        FaultNetwork {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
            obs: FaultObs::new(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the per-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Current virtual time (ms since construction).
    pub fn virtual_ms(&self) -> u64 {
        self.state.lock().clock_ms
    }

    /// Advances the virtual clock (the prober calls this when it backs off
    /// between retries, so flap windows pass in backoff time too).
    pub fn advance_ms(&self, ms: u64) {
        self.state.lock().clock_ms += ms;
    }

    /// The uniform draw for one query attempt: a pure function of the plan
    /// seed and the query coordinates — independent of query order.
    fn draw(&self, server: &ServerId, qname: &Name, qtype: RrType, attempt: u32) -> u64 {
        let mut acc = fnv1a(0xCBF2_9CE4_8422_2325, server.0.as_bytes());
        acc = fnv1a(acc, qname.key().as_bytes());
        acc = fnv1a(acc, &qtype.code().to_be_bytes());
        acc = fnv1a(acc, &attempt.to_be_bytes());
        splitmix64(self.plan.seed ^ acc)
    }

    /// Picks the fault (if any) for one attempt via a single per-mille draw
    /// against the cumulative rate thresholds.
    fn pick_fault(&self, roll: u64) -> Option<FaultKind> {
        let r = (roll % 1000) as u16;
        let mut threshold = 0u16;
        for (rate, kind) in [
            (self.plan.drop_permille, FaultKind::Drop),
            (self.plan.timeout_permille, FaultKind::Timeout),
            (self.plan.slow_permille, FaultKind::Slow),
            (self.plan.truncate_permille, FaultKind::Truncate),
            (self.plan.refused_permille, FaultKind::Refused),
            (self.plan.servfail_permille, FaultKind::ServFail),
            (self.plan.corrupt_permille, FaultKind::Corrupt),
        ] {
            threshold = threshold.saturating_add(rate);
            if r < threshold {
                return Some(kind);
            }
        }
        None
    }

    /// Is `server` inside a flap-down window at virtual time `now_ms`?
    fn flap_down(&self, server: &ServerId, now_ms: u64) -> bool {
        let Some(flap) = &self.plan.flap else {
            return false;
        };
        if flap.period_ms == 0 {
            return false;
        }
        // Per-server phase offset, derived like everything else.
        let phase = splitmix64(self.plan.seed ^ fnv1a(0x100, server.0.as_bytes())) % flap.period_ms;
        (now_ms + phase) % flap.period_ms < flap.down_ms
    }

    fn rewrite(&self, resp: &Message, rcode: Option<Rcode>, tc: bool) -> Arc<Message> {
        let mut m = resp.clone();
        if let Some(rc) = rcode {
            m.rcode = rc;
        }
        m.flags.tc = tc;
        m.answers.clear();
        m.authorities.clear();
        m.additionals.clear();
        Arc::new(m)
    }

    /// Re-encodes the response with 1–3 flipped bytes past the header. If
    /// the mangled bytes still decode, the corrupted *message* is the
    /// answer; if they do not, the outcome is [`QueryOutcome::Malformed`].
    fn corrupt(&self, resp: &Message, roll: u64) -> QueryOutcome {
        let mut bytes = wire::encode(resp);
        if bytes.len() <= 12 {
            return QueryOutcome::Malformed;
        }
        let flips = 1 + (splitmix64(roll ^ 0xC0) % 3) as usize;
        for i in 0..flips {
            let r = splitmix64(roll ^ 0xC1 ^ i as u64);
            let pos = 12 + (r as usize % (bytes.len() - 12));
            let mask = ((r >> 32) as u8) | 1; // never a zero-mask no-op
            bytes[pos] ^= mask;
        }
        match wire::decode(&bytes) {
            Ok(m) => QueryOutcome::Answer(Arc::new(m)),
            Err(_) => QueryOutcome::Malformed,
        }
    }
}

impl Network for FaultNetwork<'_> {
    fn query(&self, server: &ServerId, query: &Message) -> Option<Arc<Message>> {
        self.query_outcome(server, query).into_answer()
    }

    fn query_outcome(&self, server: &ServerId, query: &Message) -> QueryOutcome {
        self.obs.queries.inc();
        // Exact passthrough: no draw, no clock, no counters beyond `passed`.
        if self.plan.is_passthrough() {
            self.state.lock().stats.passed += 1;
            self.obs.passed.inc();
            return self.inner.query_outcome(server, query);
        }
        let Some(q) = &query.question else {
            self.state.lock().stats.passed += 1;
            self.obs.passed.inc();
            return self.inner.query_outcome(server, query);
        };
        let (qname, qtype) = (q.qname.clone(), q.qtype);

        let (attempt, now_ms) = {
            let mut st = self.state.lock();
            st.clock_ms += QUERY_COST_MS;
            let counter = st
                .attempts
                .entry((server.clone(), qname.key(), qtype.code()))
                .or_insert(0);
            let attempt = *counter;
            *counter += 1;
            (attempt, st.clock_ms)
        };

        if self
            .plan
            .only_server
            .as_ref()
            .map(|s| s != server)
            .unwrap_or(false)
        {
            self.state.lock().stats.passed += 1;
            self.obs.passed.inc();
            return self.inner.query_outcome(server, query);
        }

        // Transient-fault horizon: late retries are served clean.
        let healed = self
            .plan
            .max_faulty_attempts
            .map(|n| attempt >= n)
            .unwrap_or(false);

        if !healed && self.flap_down(server, now_ms) {
            self.state.lock().stats.flap_drops += 1;
            self.obs.flap_drops.inc();
            ddx_dns::trace_event!(
                target: "server::fault",
                "fault injected",
                kind = "flap-down",
                server = server.0,
                qname = qname,
                attempt = attempt,
            );
            return QueryOutcome::Timeout;
        }

        let roll = self.draw(server, &qname, qtype, attempt);
        let fault = if healed { None } else { self.pick_fault(roll) };
        let Some(fault) = fault else {
            self.state.lock().stats.passed += 1;
            self.obs.passed.inc();
            return self.inner.query_outcome(server, query);
        };
        ddx_dns::trace_event!(
            target: "server::fault",
            "fault injected",
            kind = format!("{fault:?}"),
            server = server.0,
            qname = qname,
            qtype = qtype,
            attempt = attempt,
        );

        match fault {
            FaultKind::Drop => {
                self.state.lock().stats.drops += 1;
                self.obs.drops.inc();
                QueryOutcome::Timeout
            }
            FaultKind::Timeout => {
                self.state.lock().stats.timeouts += 1;
                self.obs.timeouts.inc();
                QueryOutcome::Timeout
            }
            _ => {
                // The remaining kinds perturb a real answer; if the wrapped
                // network itself timed out, that takes precedence.
                let inner = self.inner.query_outcome(server, query);
                let QueryOutcome::Answer(resp) = inner else {
                    self.state.lock().stats.passed += 1;
                    self.obs.passed.inc();
                    return inner;
                };
                match fault {
                    FaultKind::Slow => {
                        let mut st = self.state.lock();
                        st.stats.slow += 1;
                        st.clock_ms += self.plan.slow_latency_ms;
                        self.obs.slow.inc();
                        QueryOutcome::Answer(resp)
                    }
                    FaultKind::Truncate => {
                        self.state.lock().stats.truncated += 1;
                        self.obs.truncated.inc();
                        QueryOutcome::Answer(self.rewrite(&resp, None, true))
                    }
                    FaultKind::Refused => {
                        self.state.lock().stats.refused += 1;
                        self.obs.refused.inc();
                        QueryOutcome::Answer(self.rewrite(&resp, Some(Rcode::Refused), false))
                    }
                    FaultKind::ServFail => {
                        self.state.lock().stats.servfail += 1;
                        self.obs.servfail.inc();
                        QueryOutcome::Answer(self.rewrite(&resp, Some(Rcode::ServFail), false))
                    }
                    FaultKind::Corrupt => {
                        self.state.lock().stats.corrupted += 1;
                        self.obs.corrupted.inc();
                        self.corrupt(&resp, roll)
                    }
                    FaultKind::Drop | FaultKind::Timeout => unreachable!("handled above"),
                }
            }
        }
    }

    fn resolve_ns(&self, host: &Name) -> Option<ServerId> {
        self.inner.resolve_ns(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::testbed::Testbed;
    use ddx_dns::{name, RData, Record, Soa, Zone};
    use std::net::Ipv4Addr;

    fn testbed() -> Testbed {
        let apex = name("a.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.a.com"),
                rname: name("hostmaster.a.com"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            RData::Ns(name("ns1.a.com")),
        ));
        z.add(Record::new(
            name("ns1.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z.add(Record::new(
            name("www.a.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        let mut s = Server::new(ServerId("a#0".into()));
        s.load_zone(z);
        let mut tb = Testbed::new();
        tb.add_server(s);
        tb.register_ns(name("ns1.a.com"), ServerId("a#0".into()));
        tb
    }

    fn sid() -> ServerId {
        ServerId("a#0".into())
    }

    #[test]
    fn passthrough_is_identical_and_counts_passed() {
        let tb = testbed();
        let net = FaultNetwork::new(&tb, FaultPlan::none(99));
        let q = Message::query(1, name("www.a.com"), RrType::A);
        let direct = tb.query(&sid(), &q).unwrap();
        let through = net.query(&sid(), &q).unwrap();
        assert_eq!(wire::encode(&direct), wire::encode(&through));
        assert_eq!(net.fault_stats().passed, 1);
        assert_eq!(net.fault_stats().injected(), 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let tb = testbed();
        let plan = FaultPlan::uniform(0xDEAD, 120);
        let outcomes = |plan: &FaultPlan| {
            let net = FaultNetwork::new(&tb, plan.clone());
            (0..40)
                .map(|i| {
                    let q = Message::query(i, name("www.a.com"), RrType::A);
                    match net.query_outcome(&sid(), &q) {
                        QueryOutcome::Answer(m) => format!("A:{:?}:{}", m.rcode, m.flags.tc),
                        QueryOutcome::Timeout => "T".into(),
                        QueryOutcome::Malformed => "M".into(),
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(&plan), outcomes(&plan));
        let other = FaultPlan::uniform(0xBEEF, 120);
        assert_ne!(outcomes(&plan), outcomes(&other), "seed must matter");
    }

    #[test]
    fn counters_track_injected_faults() {
        let tb = testbed();
        let net = FaultNetwork::new(&tb, FaultPlan::uniform(7, 140));
        for i in 0..200u16 {
            let q = Message::query(i, name("www.a.com"), RrType::A);
            let _ = net.query_outcome(&sid(), &q);
        }
        let stats = net.fault_stats();
        // ~98% fault rate over 200 attempts of a uniform mix: every kind
        // must have fired at least once, and passed + injected must add up.
        assert!(stats.drops > 0, "{stats:?}");
        assert!(stats.timeouts > 0, "{stats:?}");
        assert!(stats.slow > 0, "{stats:?}");
        assert!(stats.truncated > 0, "{stats:?}");
        assert!(stats.refused > 0, "{stats:?}");
        assert!(stats.servfail > 0, "{stats:?}");
        assert!(stats.corrupted > 0, "{stats:?}");
        assert_eq!(stats.passed + stats.injected(), 200);
    }

    #[test]
    fn truncated_rewrite_sets_tc_and_clears_sections() {
        let tb = testbed();
        let plan = FaultPlan {
            truncate_permille: 1000,
            ..FaultPlan::none(3)
        };
        let net = FaultNetwork::new(&tb, plan);
        let q = Message::query(1, name("www.a.com"), RrType::A);
        let QueryOutcome::Answer(m) = net.query_outcome(&sid(), &q) else {
            panic!("expected truncated answer");
        };
        assert!(m.flags.tc);
        assert!(m.answers.is_empty() && m.authorities.is_empty());
    }

    #[test]
    fn refused_and_servfail_rewrite_rcode() {
        let tb = testbed();
        for (permille_field, want) in [(true, Rcode::Refused), (false, Rcode::ServFail)] {
            let plan = FaultPlan {
                refused_permille: if permille_field { 1000 } else { 0 },
                servfail_permille: if permille_field { 0 } else { 1000 },
                ..FaultPlan::none(4)
            };
            let net = FaultNetwork::new(&tb, plan);
            let q = Message::query(1, name("www.a.com"), RrType::A);
            let QueryOutcome::Answer(m) = net.query_outcome(&sid(), &q) else {
                panic!("expected rewritten answer");
            };
            assert_eq!(m.rcode, want);
            assert!(m.answers.is_empty());
        }
    }

    #[test]
    fn transient_horizon_heals_retries() {
        let tb = testbed();
        let plan = FaultPlan {
            timeout_permille: 1000,
            max_faulty_attempts: Some(2),
            ..FaultPlan::none(11)
        };
        let net = FaultNetwork::new(&tb, plan);
        let q = Message::query(1, name("www.a.com"), RrType::A);
        assert!(matches!(
            net.query_outcome(&sid(), &q),
            QueryOutcome::Timeout
        ));
        assert!(matches!(
            net.query_outcome(&sid(), &q),
            QueryOutcome::Timeout
        ));
        // Third attempt (attempt index 2) crosses the horizon: clean.
        assert!(matches!(
            net.query_outcome(&sid(), &q),
            QueryOutcome::Answer(_)
        ));
    }

    #[test]
    fn flap_schedule_times_out_in_down_windows() {
        let tb = testbed();
        let plan = FaultPlan {
            flap: Some(FlapSchedule {
                period_ms: 100,
                down_ms: 100, // always down
            }),
            ..FaultPlan::none(5)
        };
        let net = FaultNetwork::new(&tb, plan);
        let q = Message::query(1, name("www.a.com"), RrType::A);
        assert!(matches!(
            net.query_outcome(&sid(), &q),
            QueryOutcome::Timeout
        ));
        assert!(net.fault_stats().flap_drops >= 1);
    }

    #[test]
    fn flap_schedule_heals_when_window_passes() {
        let tb = testbed();
        let plan = FaultPlan {
            flap: Some(FlapSchedule {
                period_ms: 1_000_000,
                down_ms: 500_000,
            }),
            ..FaultPlan::none(5)
        };
        let net = FaultNetwork::new(&tb, plan);
        let q = Message::query(1, name("www.a.com"), RrType::A);
        // Scan a full period in half-window steps: both states must occur.
        let mut saw_down = false;
        let mut saw_up = false;
        for _ in 0..4 {
            match net.query_outcome(&sid(), &q) {
                QueryOutcome::Timeout => saw_down = true,
                QueryOutcome::Answer(_) => saw_up = true,
                QueryOutcome::Malformed => {}
            }
            net.advance_ms(250_000);
        }
        assert!(saw_down && saw_up, "flap must toggle across the period");
    }

    #[test]
    fn corruption_yields_answer_or_malformed_never_panics() {
        let tb = testbed();
        let plan = FaultPlan {
            corrupt_permille: 1000,
            ..FaultPlan::none(21)
        };
        let net = FaultNetwork::new(&tb, plan);
        let mut corrupted_answers = 0;
        let mut malformed = 0;
        for i in 0..64u16 {
            let q = Message::query(i, name("www.a.com"), RrType::A);
            match net.query_outcome(&sid(), &q) {
                QueryOutcome::Answer(_) => corrupted_answers += 1,
                QueryOutcome::Malformed => malformed += 1,
                QueryOutcome::Timeout => panic!("corruption never times out"),
            }
        }
        assert_eq!(corrupted_answers + malformed, 64);
        assert_eq!(net.fault_stats().corrupted, 64);
    }

    #[test]
    fn only_server_scopes_injection() {
        let tb = testbed();
        let plan = FaultPlan {
            timeout_permille: 1000,
            only_server: Some(ServerId("other#1".into())),
            ..FaultPlan::none(6)
        };
        let net = FaultNetwork::new(&tb, plan);
        let q = Message::query(1, name("www.a.com"), RrType::A);
        assert!(matches!(
            net.query_outcome(&sid(), &q),
            QueryOutcome::Answer(_)
        ));
    }
}
