//! Per-generation lookup indexes for the denial-of-existence scans in
//! [`Server::handle`](crate::Server::handle).
//!
//! The naive answer path finds NSEC/NSEC3 proof records by scanning every
//! RRset in the zone per query. This module precomputes, once per zone
//! generation, the compact structures those scans walk: the NSEC chain in
//! canonical owner order and the NSEC3 records with decoded owner hashes
//! plus a hash-sorted ring.
//!
//! Byte-identical equivalence with the naive path is non-negotiable (the
//! server must surface injected misconfigurations exactly as before), and
//! the naive scans have first-match semantics over *whatever* the zone
//! contains — including broken chains. So the O(log n) binary-search
//! shortcuts only engage when the build step proved the chain/ring
//! **well-formed** (one RDATA per set, closed, duplicate-free); in that
//! case the naive first match provably lies in a two-candidate set around
//! the search position, and the naive predicate itself picks among them.
//! Malformed chains fall back to a linear walk over the precomputed
//! entries, which evaluates the identical predicate in the identical
//! order — just without re-filtering the whole zone per query.

use ddx_dns::{base32, Name, RData, RrType, Zone};
use ddx_dnssec::denial::nsec_covers;
use ddx_dnssec::nsec3::hash_covered;
use ddx_dnssec::nsec3_hash;

/// One NSEC-typed RRset: owner plus the `next_name` of every NSEC RDATA it
/// holds (injected zones may hold zero or several).
#[derive(Debug, Clone)]
struct NsecEntry {
    owner: Name,
    nexts: Vec<Name>,
}

/// One NSEC3-typed RRset whose first RDATA is NSEC3 (the naive scan's
/// filter): owner, the base32-decoded first label, and the first RDATA's
/// next-hashed-owner.
#[derive(Debug, Clone)]
struct Nsec3Entry {
    owner: Name,
    owner_hash: Option<Vec<u8>>,
    next_hashed: Vec<u8>,
}

/// Immutable lookup structures for one zone at one generation.
#[derive(Debug)]
pub struct ZoneIndex {
    generation: u64,
    /// Any NSEC3 or NSEC3PARAM set present (selects the denial flavor).
    uses_nsec3: bool,
    /// `(salt, iterations)` exactly as the naive path derives them: from
    /// the first canonical NSEC3 set's first RDATA, else the apex
    /// NSEC3PARAM's first RDATA.
    nsec3_params: Option<(Vec<u8>, u16)>,
    /// NSEC-typed sets in canonical owner order (owners strictly
    /// ascending: one set per owner/type).
    nsec_chain: Vec<NsecEntry>,
    /// Every entry holds exactly one next name and the chain closes
    /// (`next[i] == owner[i+1]`, last wraps to first).
    nsec_well_formed: bool,
    /// NSEC3 entries in canonical set order (the naive scan order).
    nsec3_ring: Vec<Nsec3Entry>,
    /// Indexes into `nsec3_ring`, ascending by owner hash. Only meaningful
    /// when `nsec3_well_formed`.
    nsec3_sorted: Vec<usize>,
    /// Every owner hash decodes, hashes are unique, and the ring closes in
    /// hash order.
    nsec3_well_formed: bool,
    /// Global `server.zone_index.fast_path` / `.fallback` counters: each
    /// `find_*` lookup bumps one of them depending on whether it took the
    /// binary-search shortcut or the linear malformed-chain walk.
    obs_fast_path: ddx_obs::Counter,
    obs_fallback: ddx_obs::Counter,
}

impl ZoneIndex {
    /// Builds the index from one pass over the zone's RRsets.
    pub fn build(zone: &Zone) -> ZoneIndex {
        let mut uses_nsec3 = false;
        let mut nsec_chain: Vec<NsecEntry> = Vec::new();
        let mut nsec3_ring: Vec<Nsec3Entry> = Vec::new();
        let mut nsec_malformed = false;
        let mut ring_params: Option<(Vec<u8>, u16)> = None;
        for set in zone.rrsets() {
            match set.rtype {
                RrType::Nsec => {
                    let nexts: Vec<Name> = set
                        .rdatas
                        .iter()
                        .filter_map(|rd| match rd {
                            RData::Nsec(n) => Some(n.next_name.clone()),
                            _ => None,
                        })
                        .collect();
                    if nexts.len() != 1 {
                        nsec_malformed = true;
                    }
                    nsec_chain.push(NsecEntry {
                        owner: set.name.clone(),
                        nexts,
                    });
                }
                RrType::Nsec3 => {
                    uses_nsec3 = true;
                    if let Some(RData::Nsec3(n3)) = set.rdatas.first() {
                        // The naive path takes (salt, iterations) from the
                        // first canonical NSEC3 set's first RDATA.
                        if ring_params.is_none() {
                            ring_params = Some((n3.salt.clone(), n3.iterations));
                        }
                        let owner_hash = set
                            .name
                            .labels()
                            .first()
                            .and_then(|l| std::str::from_utf8(l.as_bytes()).ok())
                            .and_then(base32::decode);
                        nsec3_ring.push(Nsec3Entry {
                            owner: set.name.clone(),
                            owner_hash,
                            next_hashed: n3.next_hashed_owner.clone(),
                        });
                    }
                }
                RrType::Nsec3Param => uses_nsec3 = true,
                _ => {}
            }
        }

        let nsec_well_formed = !nsec_malformed
            && !nsec_chain.is_empty()
            && (0..nsec_chain.len())
                .all(|i| nsec_chain[i].nexts[0] == nsec_chain[(i + 1) % nsec_chain.len()].owner);

        let mut nsec3_sorted: Vec<usize> = (0..nsec3_ring.len()).collect();
        let mut nsec3_well_formed =
            !nsec3_ring.is_empty() && nsec3_ring.iter().all(|e| e.owner_hash.is_some());
        if nsec3_well_formed {
            nsec3_sorted.sort_by(|&a, &b| nsec3_ring[a].owner_hash.cmp(&nsec3_ring[b].owner_hash));
            nsec3_well_formed = nsec3_sorted
                .windows(2)
                .all(|w| nsec3_ring[w[0]].owner_hash != nsec3_ring[w[1]].owner_hash)
                && (0..nsec3_sorted.len()).all(|i| {
                    let next_entry = &nsec3_ring[nsec3_sorted[(i + 1) % nsec3_sorted.len()]];
                    nsec3_ring[nsec3_sorted[i]].next_hashed
                        == *next_entry.owner_hash.as_ref().expect("checked above")
                });
        }

        let nsec3_params = ring_params.or_else(|| {
            zone.get(zone.apex(), RrType::Nsec3Param)
                .and_then(|s| match s.rdatas.first() {
                    Some(RData::Nsec3Param(p)) => Some((p.salt.clone(), p.iterations)),
                    _ => None,
                })
        });

        ddx_obs::counter("server.zone_index.builds", &[]).inc();
        ZoneIndex {
            generation: zone.generation(),
            uses_nsec3,
            nsec3_params,
            nsec_chain,
            nsec_well_formed,
            nsec3_ring,
            nsec3_sorted,
            nsec3_well_formed,
            obs_fast_path: ddx_obs::counter("server.zone_index.fast_path", &[]),
            obs_fallback: ddx_obs::counter("server.zone_index.fallback", &[]),
        }
    }

    /// The zone generation this index was built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the zone carries NSEC3/NSEC3PARAM material.
    pub fn uses_nsec3(&self) -> bool {
        self.uses_nsec3
    }

    /// NSEC3 `(salt, iterations)`, derived as the naive path derives them.
    pub fn nsec3_params(&self) -> Option<(&[u8], u16)> {
        self.nsec3_params.as_ref().map(|(s, i)| (&s[..], *i))
    }

    /// The owner of the first NSEC set (canonical order) satisfying the
    /// naive denial predicate for `target`.
    pub fn find_first_nsec(&self, target: &Name, nxdomain: bool, apex: &Name) -> Option<&Name> {
        let matches = |e: &NsecEntry| {
            if nxdomain || e.owner != *target {
                e.nexts
                    .iter()
                    .any(|next| nsec_covers(&e.owner, next, target, apex) || e.owner == *target)
            } else {
                true
            }
        };
        if !self.nsec_well_formed {
            self.obs_fallback.inc();
            return self
                .nsec_chain
                .iter()
                .find(|e| matches(e))
                .map(|e| &e.owner);
        }
        self.obs_fast_path.inc();
        // Well-formed chain: the only sets that can satisfy the predicate
        // are the exact-owner set and the covering arc, which (owners being
        // strictly ascending and the chain closed) is the canonical
        // predecessor arc, wrapping at the ends.
        let n = self.nsec_chain.len();
        let pos = self.nsec_chain.partition_point(|e| e.owner < *target);
        let mut candidates = [usize::MAX; 2];
        if pos < n && self.nsec_chain[pos].owner == *target {
            candidates[0] = pos;
        }
        candidates[1] = if pos == 0 { n - 1 } else { pos - 1 };
        candidates.sort_unstable();
        candidates
            .into_iter()
            .filter(|&i| i < n)
            .find(|&i| matches(&self.nsec_chain[i]))
            .map(|i| &self.nsec_chain[i].owner)
    }

    /// The owner of the first NSEC3 set whose owner hash equals the hash of
    /// `target` under `(salt, iterations)`.
    pub fn find_nsec3_match(&self, target: &Name, salt: &[u8], iterations: u16) -> Option<&Name> {
        let h = nsec3_hash(target, salt, iterations);
        if !self.nsec3_well_formed {
            self.obs_fallback.inc();
            return self
                .nsec3_ring
                .iter()
                .find(|e| e.owner_hash.as_deref() == Some(&h[..]))
                .map(|e| &e.owner);
        }
        self.obs_fast_path.inc();
        self.nsec3_sorted
            .binary_search_by(|&i| self.nsec3_ring[i].owner_hash.as_deref().cmp(&Some(&h[..])))
            .ok()
            .map(|pos| &self.nsec3_ring[self.nsec3_sorted[pos]].owner)
    }

    /// The owner of the first NSEC3 set whose hash arc covers the hash of
    /// `target`.
    pub fn find_nsec3_cover(&self, target: &Name, salt: &[u8], iterations: u16) -> Option<&Name> {
        let h = nsec3_hash(target, salt, iterations);
        let covers = |e: &Nsec3Entry| {
            e.owner_hash
                .as_ref()
                .map(|oh| hash_covered(oh, &e.next_hashed, &h))
                .unwrap_or(false)
        };
        if !self.nsec3_well_formed {
            self.obs_fallback.inc();
            return self.nsec3_ring.iter().find(|e| covers(e)).map(|e| &e.owner);
        }
        self.obs_fast_path.inc();
        // Well-formed ring: hashes are unique and arcs close, so at most
        // one arc covers `h` — the hash-order predecessor, wrapping.
        let n = self.nsec3_sorted.len();
        let pos = self
            .nsec3_sorted
            .partition_point(|&i| self.nsec3_ring[i].owner_hash.as_deref() < Some(&h[..]));
        let pred = self.nsec3_sorted[if pos == 0 { n - 1 } else { pos - 1 }];
        let entry = &self.nsec3_ring[pred];
        covers(entry).then_some(&entry.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::{name, Record};

    /// A hand-built malformed NSEC chain (dangling next names) must disable
    /// the fast path and still serve first-match semantics.
    #[test]
    fn malformed_chain_falls_back_to_linear_first_match() {
        let mut z = Zone::new(name("example.com"));
        for (owner, next) in [
            ("example.com", "b.example.com"),
            ("b.example.com", "nowhere.example.com"),
            ("d.example.com", "example.com"),
        ] {
            z.add(Record::new(
                name(owner),
                300,
                RData::Nsec(ddx_dns::Nsec {
                    next_name: name(next),
                    type_bitmap: ddx_dns::TypeBitmap::from_types([RrType::A]),
                }),
            ));
        }
        let idx = ZoneIndex::build(&z);
        assert!(!idx.nsec_well_formed);
        // c.example.com is covered both by b→nowhere? no — but d→example
        // wraps; the naive scan picks the first canonical set that covers.
        let naive = |target: &Name, nxdomain: bool| {
            idx.nsec_chain
                .iter()
                .find(|e| {
                    if nxdomain || e.owner != *target {
                        e.nexts.iter().any(|nx| {
                            nsec_covers(&e.owner, nx, target, &name("example.com"))
                                || e.owner == *target
                        })
                    } else {
                        true
                    }
                })
                .map(|e| e.owner.clone())
        };
        for probe in ["a.example.com", "c.example.com", "zz.example.com"] {
            for nx in [false, true] {
                let t = name(probe);
                assert_eq!(
                    idx.find_first_nsec(&t, nx, &name("example.com")).cloned(),
                    naive(&t, nx),
                    "{probe} nx={nx}"
                );
            }
        }
    }

    #[test]
    fn well_formed_chain_is_detected() {
        let mut z = Zone::new(name("example.com"));
        for (owner, next) in [
            ("example.com", "b.example.com"),
            ("b.example.com", "d.example.com"),
            ("d.example.com", "example.com"),
        ] {
            z.add(Record::new(
                name(owner),
                300,
                RData::Nsec(ddx_dns::Nsec {
                    next_name: name(next),
                    type_bitmap: ddx_dns::TypeBitmap::from_types([RrType::A]),
                }),
            ));
        }
        let idx = ZoneIndex::build(&z);
        assert!(idx.nsec_well_formed);
        // NXDOMAIN between b and d: the b arc covers.
        assert_eq!(
            idx.find_first_nsec(&name("c.example.com"), true, &name("example.com")),
            Some(&name("b.example.com"))
        );
        // Past the last owner: the wrap arc covers.
        assert_eq!(
            idx.find_first_nsec(&name("zz.example.com"), true, &name("example.com")),
            Some(&name("d.example.com"))
        );
        // NODATA at an existing owner: the exact set wins over the
        // predecessor arc (first-match order).
        assert_eq!(
            idx.find_first_nsec(&name("b.example.com"), false, &name("example.com")),
            Some(&name("b.example.com"))
        );
    }
}
