//! Per-client token-bucket rate limiting for the UDP transport workers.
//!
//! Each transport worker owns its own [`RateLimiter`] (shared-nothing, no
//! cross-worker locks). A client is its source IP address; every accepted
//! query costs one token, tokens refill continuously at `qps` per second up
//! to a `burst` ceiling. When a bucket is dry the worker answers REFUSED
//! (RFC 1035 rcode 5 — the conventional "go away" for policy rejections)
//! instead of spending zone-lookup work on the query.
//!
//! With `SO_REUSEPORT` the kernel pins a client socket to one worker by
//! 4-tuple hash, so one client's queries meet one bucket and the limit is
//! exact. On the `try_clone` fallback (no port sharing) a client's queries
//! can spread across workers, and the effective ceiling becomes up to
//! `workers × qps` — documented in DESIGN.md §12.
//!
//! The refill arithmetic runs on caller-supplied microsecond timestamps
//! ([`RateLimiter::allow_at`]), which makes the core deterministic and
//! directly testable; [`RateLimiter::allow`] feeds it wall-clock time.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

/// Configuration for one worker's limiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Sustained tokens per second granted to each client.
    pub qps: u32,
    /// Bucket ceiling: how many queries a client may burst after idling.
    pub burst: u32,
}

impl RateLimitConfig {
    pub fn new(qps: u32, burst: u32) -> Self {
        RateLimitConfig {
            qps: qps.max(1),
            burst: burst.max(1),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Microtokens (tokens × 1e6), avoiding float drift in long runs.
    micro_tokens: u64,
    last_refill_us: u64,
}

/// Keep the client table bounded: a hostile mix can cycle through spoofed
/// sources, and an unbounded map is itself a resource attack. Reaching the
/// cap drops the whole table (every client starts a fresh burst — brief
/// over-admission, never over-refusal).
const CLIENT_CAP: usize = 16_384;

/// A shared-nothing per-worker token-bucket table.
#[derive(Debug)]
pub struct RateLimiter {
    cfg: RateLimitConfig,
    buckets: HashMap<IpAddr, Bucket>,
    epoch: Instant,
    allowed: u64,
    refused: u64,
    obs_allowed: ddx_obs::Counter,
    obs_refused: ddx_obs::Counter,
    obs_flushes: ddx_obs::Counter,
}

impl RateLimiter {
    pub fn new(cfg: RateLimitConfig) -> Self {
        RateLimiter {
            cfg,
            buckets: HashMap::new(),
            epoch: Instant::now(),
            allowed: 0,
            refused: 0,
            obs_allowed: ddx_obs::counter("server.rate_limit.allowed", &[]),
            obs_refused: ddx_obs::counter("server.rate_limit.refused", &[]),
            obs_flushes: ddx_obs::counter("server.rate_limit.table_flushes", &[]),
        }
    }

    /// Charges one query to `client` at wall-clock now.
    pub fn allow(&mut self, client: IpAddr) -> bool {
        let now_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.allow_at(client, now_us)
    }

    /// Deterministic core: charges one query to `client` at `now_us`
    /// microseconds since this limiter's epoch. Timestamps must be
    /// monotone per limiter (a stale timestamp just grants no refill).
    pub fn allow_at(&mut self, client: IpAddr, now_us: u64) -> bool {
        if self.buckets.len() >= CLIENT_CAP && !self.buckets.contains_key(&client) {
            self.buckets.clear();
            self.obs_flushes.inc();
        }
        let full = u64::from(self.cfg.burst) * 1_000_000;
        let bucket = self.buckets.entry(client).or_insert(Bucket {
            micro_tokens: full,
            last_refill_us: now_us,
        });
        let elapsed = now_us.saturating_sub(bucket.last_refill_us);
        bucket.last_refill_us = now_us;
        bucket.micro_tokens = bucket
            .micro_tokens
            .saturating_add(elapsed.saturating_mul(u64::from(self.cfg.qps)))
            .min(full);
        if bucket.micro_tokens >= 1_000_000 {
            bucket.micro_tokens -= 1_000_000;
            self.allowed += 1;
            self.obs_allowed.inc();
            true
        } else {
            self.refused += 1;
            self.obs_refused.inc();
            false
        }
    }

    /// `(allowed, refused)` decisions so far on this worker.
    pub fn stats(&self) -> (u64, u64) {
        (self.allowed, self.refused)
    }

    /// Clients currently tracked.
    pub fn client_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, last))
    }

    #[test]
    fn burst_then_refused_then_refill() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(10, 3));
        // Burst of 3 at t=0, fourth refused.
        for _ in 0..3 {
            assert!(rl.allow_at(ip(1), 0));
        }
        assert!(!rl.allow_at(ip(1), 0));
        // 100ms at 10 qps = exactly one token back.
        assert!(rl.allow_at(ip(1), 100_000));
        assert!(!rl.allow_at(ip(1), 100_000));
        assert_eq!(rl.stats(), (4, 2));
    }

    #[test]
    fn clients_have_independent_buckets() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(1, 1));
        assert!(rl.allow_at(ip(1), 0));
        assert!(!rl.allow_at(ip(1), 0));
        // A different source is untouched by client 1's drain.
        assert!(rl.allow_at(ip(2), 0));
        assert_eq!(rl.client_count(), 2);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(100, 2));
        assert!(rl.allow_at(ip(1), 0));
        // A long idle period must not bank more than `burst` tokens.
        for _ in 0..2 {
            assert!(rl.allow_at(ip(1), 60_000_000));
        }
        assert!(!rl.allow_at(ip(1), 60_000_000));
    }

    #[test]
    fn stale_timestamp_grants_no_refill() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(1, 1));
        assert!(rl.allow_at(ip(1), 5_000_000));
        // Going backwards in time is treated as zero elapsed.
        assert!(!rl.allow_at(ip(1), 0));
    }

    #[test]
    fn wall_clock_entry_point_works() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(1_000_000, 5));
        assert!(rl.allow(ip(9)));
    }
}
