//! Batched UDP socket I/O for the multi-worker transport.
//!
//! On Linux (x86_64/aarch64) this wraps the `recvmmsg(2)`/`sendmmsg(2)`
//! syscalls — one kernel crossing moves up to a whole batch of datagrams —
//! plus `SO_REUSEPORT` socket creation so N worker sockets can share one
//! port with kernel-side 4-tuple load balancing. The bindings are declared
//! by hand (`extern "C"` against the libc the Rust std library already
//! links) because this workspace deliberately carries no FFI crates.
//!
//! Everywhere else — or when a caller forces [`BatchMode::Single`] — the
//! same [`BatchSocket`] API degrades to one blocking `recv_from` per
//! "batch" and a `send_to` loop, which is exactly the pre-sharding
//! transport behavior. The fallback matrix:
//!
//! | platform                  | recv            | send        | port sharing  |
//! |---------------------------|-----------------|-------------|---------------|
//! | linux x86_64/aarch64      | `recvmmsg`      | `sendmmsg`  | `SO_REUSEPORT`|
//! | linux (mode = Single)     | `recv_from` ×1  | `send_to`   | `SO_REUSEPORT`|
//! | everything else           | `recv_from` ×1  | `send_to`   | `try_clone`   |

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Largest DNS query we accept per datagram slot. Queries are small (a
/// question plus OPT), but EDNS allows clients to pad; 4 KiB is generous.
pub const RECV_SLOT_BYTES: usize = 4_096;

/// Default datagrams per batch.
pub const DEFAULT_BATCH: usize = 32;

/// How a [`BatchSocket`] moves datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// `recvmmsg`/`sendmmsg` (Linux fast path).
    Mmsg,
    /// One `recv_from` per batch call, `send_to` loop (portable).
    Single,
}

impl BatchMode {
    /// The fastest mode this build supports.
    pub fn fastest() -> BatchMode {
        if mmsg_supported() {
            BatchMode::Mmsg
        } else {
            BatchMode::Single
        }
    }
}

/// True when the mmsg fast path is compiled in.
pub const fn mmsg_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// One received datagram: the filled prefix of its slot plus the peer.
#[derive(Debug)]
pub struct RecvSlot {
    pub buf: Vec<u8>,
    pub len: usize,
    pub peer: SocketAddr,
}

/// Reusable receive-side state: `batch` slots of [`RECV_SLOT_BYTES`] each.
/// Allocated once per worker and recycled across batches.
#[derive(Debug)]
pub struct RecvBatch {
    slots: Vec<RecvSlot>,
    /// Number of slots filled by the last `recv_batch` call.
    filled: usize,
}

impl RecvBatch {
    pub fn new(batch: usize) -> Self {
        let batch = batch.clamp(1, 1_024);
        RecvBatch {
            slots: (0..batch)
                .map(|_| RecvSlot {
                    buf: vec![0u8; RECV_SLOT_BYTES],
                    len: 0,
                    peer: SocketAddr::from(([127, 0, 0, 1], 0)),
                })
                .collect(),
            filled: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The datagrams filled by the last `recv_batch` call.
    pub fn received(&self) -> impl Iterator<Item = (&[u8], SocketAddr)> {
        self.slots[..self.filled]
            .iter()
            .map(|s| (&s.buf[..s.len], s.peer))
    }
}

/// An outgoing datagram queued for `send_batch`.
#[derive(Debug)]
pub struct SendItem {
    pub bytes: Vec<u8>,
    pub peer: SocketAddr,
}

/// Reusable send-side state: a pool of [`SendItem`]s whose byte buffers
/// are recycled across batches, so the steady-state response path encodes
/// into already-allocated capacity instead of growing a fresh `Vec` per
/// datagram.
///
/// Usage per response: write into [`SendQueue::slot`] (cleared, capacity
/// intact), then [`SendQueue::commit`] it with the peer address. Uncommitted
/// slots are simply reused by the next `slot` call, so a handler that
/// declines to answer leaves no trace. After [`BatchSocket::send_batch`]
/// on [`SendQueue::items`], call [`SendQueue::clear`] to start the next
/// batch without dropping any buffer.
#[derive(Debug, Default)]
pub struct SendQueue {
    items: Vec<SendItem>,
    committed: usize,
}

impl SendQueue {
    pub fn with_capacity(batch: usize) -> Self {
        SendQueue {
            items: Vec::with_capacity(batch),
            committed: 0,
        }
    }

    /// The next outgoing buffer: cleared, but retaining whatever capacity
    /// it grew in earlier batches.
    pub fn slot(&mut self) -> &mut Vec<u8> {
        if self.committed == self.items.len() {
            self.items.push(SendItem {
                bytes: Vec::with_capacity(RECV_SLOT_BYTES),
                peer: SocketAddr::from(([127, 0, 0, 1], 0)),
            });
        }
        let item = &mut self.items[self.committed];
        item.bytes.clear();
        &mut item.bytes
    }

    /// Enqueues the buffer last returned by [`SendQueue::slot`] for `peer`.
    pub fn commit(&mut self, peer: SocketAddr) {
        self.items[self.committed].peer = peer;
        self.committed += 1;
    }

    pub fn len(&self) -> usize {
        self.committed
    }

    pub fn is_empty(&self) -> bool {
        self.committed == 0
    }

    /// The committed datagrams, ready for [`BatchSocket::send_batch`].
    pub fn items(&self) -> &[SendItem] {
        &self.items[..self.committed]
    }

    /// Forgets the committed items but keeps every buffer for reuse.
    pub fn clear(&mut self) {
        self.committed = 0;
    }
}

/// A UDP socket with batch send/receive on top of either the mmsg fast
/// path or the portable single-datagram fallback.
#[derive(Debug)]
pub struct BatchSocket {
    sock: UdpSocket,
    mode: BatchMode,
}

impl BatchSocket {
    /// Wraps an already bound socket. Falls back to [`BatchMode::Single`]
    /// when the requested mode is not compiled in.
    pub fn new(sock: UdpSocket, mode: BatchMode) -> Self {
        let mode = match mode {
            BatchMode::Mmsg if mmsg_supported() => BatchMode::Mmsg,
            _ => BatchMode::Single,
        };
        BatchSocket { sock, mode }
    }

    pub fn mode(&self) -> BatchMode {
        self.mode
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.sock.set_read_timeout(d)
    }

    /// Receives up to `batch.capacity()` datagrams, blocking (subject to
    /// the socket's read timeout) for the first one. Returns the number of
    /// datagrams filled; timeout surfaces as the usual
    /// `WouldBlock`/`TimedOut` error so callers can re-check stop flags.
    pub fn recv_batch(&self, batch: &mut RecvBatch) -> io::Result<usize> {
        batch.filled = 0;
        match self.mode {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BatchMode::Mmsg => {
                let n = mmsg::recv_batch(&self.sock, &mut batch.slots)?;
                batch.filled = n;
                Ok(n)
            }
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            BatchMode::Mmsg => unreachable!("BatchSocket::new downgrades Mmsg when unsupported"),
            BatchMode::Single => {
                let slot = &mut batch.slots[0];
                let (len, peer) = self.sock.recv_from(&mut slot.buf)?;
                slot.len = len;
                slot.peer = peer;
                batch.filled = 1;
                Ok(1)
            }
        }
    }

    /// Sends every item, batching syscalls on the fast path. Returns the
    /// number of datagrams handed to the kernel; per-datagram send errors
    /// (e.g. a vanished peer) are skipped, matching the old loop's
    /// `let _ = socket.send_to(..)`.
    pub fn send_batch(&self, items: &[SendItem]) -> io::Result<usize> {
        if items.is_empty() {
            return Ok(0);
        }
        match self.mode {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BatchMode::Mmsg => mmsg::send_batch(&self.sock, items),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            BatchMode::Mmsg => unreachable!("BatchSocket::new downgrades Mmsg when unsupported"),
            BatchMode::Single => {
                let mut sent = 0;
                for item in items {
                    if self.sock.send_to(&item.bytes, item.peer).is_ok() {
                        sent += 1;
                    }
                }
                Ok(sent)
            }
        }
    }
}

/// Binds a loopback IPv4 UDP socket on `port` (0 = ephemeral) that other
/// workers can bind alongside. On Linux the socket is created with
/// `SO_REUSEPORT` set *before* bind, so every subsequent worker binding
/// the same port succeeds and the kernel spreads clients across the
/// sockets by 4-tuple hash. Elsewhere this is a plain bind — callers share
/// one socket via `try_clone` instead (see [`mmsg_supported`]).
pub fn bind_worker_socket(port: u16) -> io::Result<UdpSocket> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        mmsg::bind_reuseport(port)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        UdpSocket::bind(("127.0.0.1", port))
    }
}

/// True when [`bind_worker_socket`] produces port-sharing sockets.
pub const fn reuseport_supported() -> bool {
    mmsg_supported()
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod mmsg {
    //! Hand-rolled libc declarations for the Linux batch-I/O fast path.
    //! Layouts and constants are the x86_64/aarch64 kernel ABI (identical
    //! on both): this module is only compiled for those targets.

    use std::ffi::c_void;
    use std::io;
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};

    use super::{RecvSlot, SendItem};

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEPORT: i32 = 15;
    /// Block for the first datagram only; return whatever else is queued.
    const MSG_WAITFORONE: i32 = 0x10000;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        /// Network byte order.
        sin_port: u16,
        /// Network byte order.
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    impl SockAddrIn {
        fn new(addr: SocketAddrV4) -> Self {
            SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from(*addr.ip()).to_be(),
                sin_zero: [0; 8],
            }
        }

        fn to_socket_addr(&self) -> SocketAddr {
            SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::from(u32::from_be(self.sin_addr)),
                u16::from_be(self.sin_port),
            ))
        }
    }

    #[repr(C)]
    struct IoVec {
        iov_base: *mut c_void,
        iov_len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut c_void,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut c_void,
        msg_controllen: usize,
        msg_flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: u32,
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const c_void, optlen: u32)
            -> i32;
        fn close(fd: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut c_void,
        ) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    /// Creates a 127.0.0.1 UDP socket with `SO_REUSEPORT` set before bind.
    pub fn bind_reuseport(port: u16) -> io::Result<UdpSocket> {
        unsafe {
            let fd = socket(AF_INET, SOCK_DGRAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let one: i32 = 1;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEPORT,
                &one as *const i32 as *const c_void,
                std::mem::size_of::<i32>() as u32,
            ) < 0
            {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
            let sa = SockAddrIn::new(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
            if bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) < 0 {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
            // From here the std socket owns (and will close) the fd.
            Ok(UdpSocket::from_raw_fd(fd))
        }
    }

    /// One `recvmmsg` call: blocks for the first datagram (honoring the
    /// socket's `SO_RCVTIMEO`), then drains whatever else is queued, up to
    /// `slots.len()` datagrams.
    pub fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot]) -> io::Result<usize> {
        let vlen = slots.len();
        let mut names: Vec<SockAddrIn> = (0..vlen)
            .map(|_| SockAddrIn::new(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)))
            .collect();
        let mut iovs: Vec<IoVec> = slots
            .iter_mut()
            .map(|s| IoVec {
                iov_base: s.buf.as_mut_ptr() as *mut c_void,
                iov_len: s.buf.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..vlen)
            .map(|i| MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: &mut names[i] as *mut SockAddrIn as *mut c_void,
                    msg_namelen: std::mem::size_of::<SockAddrIn>() as u32,
                    msg_iov: &mut iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        let n = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                hdrs.as_mut_ptr(),
                vlen as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let n = n as usize;
        for i in 0..n {
            slots[i].len = (hdrs[i].msg_len as usize).min(slots[i].buf.len());
            slots[i].peer = names[i].to_socket_addr();
        }
        Ok(n)
    }

    /// Sends every item with as few `sendmmsg` calls as possible. IPv6
    /// peers never occur on the loopback testbed, but are skipped safely.
    pub fn send_batch(sock: &UdpSocket, items: &[SendItem]) -> io::Result<usize> {
        let v4: Vec<(&SendItem, SocketAddrV4)> = items
            .iter()
            .filter_map(|it| match it.peer {
                SocketAddr::V4(a) => Some((it, a)),
                SocketAddr::V6(_) => None,
            })
            .collect();
        let mut names: Vec<SockAddrIn> = v4.iter().map(|(_, a)| SockAddrIn::new(*a)).collect();
        let mut iovs: Vec<IoVec> = v4
            .iter()
            .map(|(it, _)| IoVec {
                // sendmmsg never writes through iov_base; the cast is for
                // the shared msghdr layout.
                iov_base: it.bytes.as_ptr() as *mut c_void,
                iov_len: it.bytes.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..v4.len())
            .map(|i| MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: &mut names[i] as *mut SockAddrIn as *mut c_void,
                    msg_namelen: std::mem::size_of::<SockAddrIn>() as u32,
                    msg_iov: &mut iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        let mut sent = 0usize;
        while sent < hdrs.len() {
            let n = unsafe {
                sendmmsg(
                    sock.as_raw_fd(),
                    hdrs[sent..].as_mut_ptr(),
                    (hdrs.len() - sent) as u32,
                    0,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                // Give up on the rest; per-datagram errors are non-fatal
                // for a UDP responder.
                if sent > 0 {
                    return Ok(sent);
                }
                return Err(err);
            }
            if n == 0 {
                break;
            }
            sent += n as usize;
        }
        Ok(sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mode_round_trip() {
        let server = BatchSocket::new(UdpSocket::bind("127.0.0.1:0").unwrap(), BatchMode::Single);
        server
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let addr = server.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client.send_to(b"ping", addr).unwrap();
        let mut batch = RecvBatch::new(8);
        let n = server.recv_batch(&mut batch).unwrap();
        assert_eq!(n, 1);
        let (bytes, peer) = batch.received().next().unwrap();
        assert_eq!(bytes, b"ping");
        assert_eq!(peer, client.local_addr().unwrap());
        server
            .send_batch(&[SendItem {
                bytes: b"pong".to_vec(),
                peer,
            }])
            .unwrap();
        let mut buf = [0u8; 16];
        client
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let (len, _) = client.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"pong");
    }

    #[test]
    fn fastest_mode_round_trip_batches() {
        // On Linux this exercises recvmmsg/sendmmsg; elsewhere it is the
        // single-datagram path again.
        let sock = bind_worker_socket(0).unwrap();
        let server = BatchSocket::new(sock, BatchMode::fastest());
        server
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let addr = server.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        for i in 0..4u8 {
            client.send_to(&[b'm', i], addr).unwrap();
        }
        let mut batch = RecvBatch::new(8);
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut peer = None;
        while got.len() < 4 {
            let n = server.recv_batch(&mut batch).unwrap();
            assert!(n >= 1);
            for (bytes, p) in batch.received() {
                got.push(bytes.to_vec());
                peer = Some(p);
            }
        }
        got.sort();
        assert_eq!(
            got,
            vec![vec![b'm', 0], vec![b'm', 1], vec![b'm', 2], vec![b'm', 3]]
        );
        // Batched echo back.
        let items: Vec<SendItem> = got
            .iter()
            .map(|b| SendItem {
                bytes: b.clone(),
                peer: peer.unwrap(),
            })
            .collect();
        assert_eq!(server.send_batch(&items).unwrap(), 4);
        let mut echoed = 0;
        let mut buf = [0u8; 16];
        while echoed < 4 {
            let (len, _) = client.recv_from(&mut buf).unwrap();
            assert_eq!(len, 2);
            echoed += 1;
        }
    }

    #[test]
    fn send_queue_recycles_buffers_across_batches() {
        let mut q = SendQueue::with_capacity(4);
        let peer = SocketAddr::from(([127, 0, 0, 1], 53));

        q.slot().extend_from_slice(&[1u8; 512]);
        q.commit(peer);
        // An uncommitted slot must not leak into the batch.
        q.slot().extend_from_slice(b"dropped");
        assert_eq!(q.len(), 1);
        assert_eq!(q.items().len(), 1);
        assert_eq!(q.items()[0].bytes.len(), 512);
        assert_eq!(q.items()[0].peer, peer);

        q.clear();
        assert!(q.is_empty());
        // The recycled slot comes back cleared but with its old capacity.
        let slot = q.slot();
        assert!(slot.is_empty());
        assert!(slot.capacity() >= 512);
        let before = slot.as_ptr();
        slot.extend_from_slice(&[2u8; 100]);
        q.commit(peer);
        assert_eq!(q.items()[0].bytes.as_ptr(), before, "no reallocation");
        assert_eq!(q.items()[0].bytes, vec![2u8; 100]);
    }

    #[test]
    fn reuseport_allows_two_sockets_on_one_port() {
        if !reuseport_supported() {
            return;
        }
        let a = bind_worker_socket(0).unwrap();
        let port = a.local_addr().unwrap().port();
        let b = bind_worker_socket(port).unwrap();
        assert_eq!(b.local_addr().unwrap().port(), port);
    }

    #[test]
    fn timeout_surfaces_as_error_not_hang() {
        let server = BatchSocket::new(
            UdpSocket::bind("127.0.0.1:0").unwrap(),
            BatchMode::fastest(),
        );
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut batch = RecvBatch::new(4);
        let err = server.recv_batch(&mut batch).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
    }
}
