//! Operator key-rollover workflows (RFC 6781 / RFC 7583): the multi-phase
//! procedures whose mishandling causes the paper's sv→sb negative
//! transitions (§3.4: key rollovers 45.2%, algorithm rollovers 30.3%).
//! A correctly executed rollover keeps the zone valid at *every* phase; the
//! botched variants reproduce the observed breakage.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ddx_dns::Name;
use ddx_dnssec::{make_ds, Algorithm, DigestType, KeyPair, KeyRole, DNSKEY_TTL};

use crate::sandbox::Sandbox;

/// The rollover strategies modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloverKind {
    /// Pre-publish ZSK rollover (RFC 6781 §4.1.1.1).
    ZskPrePublish,
    /// Double-DS KSK rollover (RFC 6781 §4.1.2).
    KskDoubleDs,
    /// Conservative algorithm rollover (RFC 6781 §4.1.4): new-algorithm
    /// keys and signatures first, DS swap afterwards.
    AlgorithmConservative,
}

/// One executed phase: what happened and how long to wait before the next.
#[derive(Debug, Clone)]
pub struct RolloverStep {
    pub phase: usize,
    pub description: String,
    /// Seconds the operator must wait before the next phase (cache expiry).
    pub wait_secs: u32,
}

/// A rollover in progress on the sandbox's zone `apex`.
pub struct Rollover {
    pub kind: RolloverKind,
    pub apex: Name,
    phase: usize,
    new_tags: Vec<u16>,
    old_tags: Vec<u16>,
    digest: DigestType,
    rng: StdRng,
    new_algorithm: Algorithm,
}

impl Rollover {
    /// Prepares a rollover. For [`RolloverKind::AlgorithmConservative`],
    /// `new_algorithm` is the target; otherwise the current algorithm is
    /// reused.
    pub fn start(
        sandbox: &Sandbox,
        apex: &Name,
        kind: RolloverKind,
        new_algorithm: Option<Algorithm>,
        seed: u64,
    ) -> Self {
        let zone = sandbox
            .zone(apex)
            .expect("Rollover::start precondition: apex names a zone in this sandbox");
        let current_alg = zone
            .ring
            .keys()
            .first()
            .and_then(|k| k.algorithm())
            .unwrap_or(Algorithm::EcdsaP256Sha256);
        let digest = zone
            .spec
            .ds_digests
            .first()
            .copied()
            .unwrap_or(DigestType::Sha256);
        Rollover {
            kind,
            apex: apex.clone(),
            phase: 0,
            new_tags: Vec::new(),
            old_tags: Vec::new(),
            digest,
            rng: StdRng::seed_from_u64(seed),
            new_algorithm: new_algorithm.unwrap_or(current_alg),
        }
    }

    /// True once every phase has run.
    pub fn is_complete(&self) -> bool {
        self.phase >= self.total_phases()
    }

    fn total_phases(&self) -> usize {
        match self.kind {
            RolloverKind::ZskPrePublish => 3,
            RolloverKind::KskDoubleDs => 3,
            RolloverKind::AlgorithmConservative => 4,
        }
    }

    /// Executes the next phase at time `now`; returns `None` when done.
    pub fn advance(&mut self, sandbox: &mut Sandbox, now: u32) -> Option<RolloverStep> {
        if self.is_complete() {
            return None;
        }
        let step = match self.kind {
            RolloverKind::ZskPrePublish => self.advance_zsk(sandbox, now),
            RolloverKind::KskDoubleDs => self.advance_ksk(sandbox, now),
            RolloverKind::AlgorithmConservative => self.advance_algorithm(sandbox, now),
        };
        self.phase += 1;
        Some(step)
    }

    fn advance_zsk(&mut self, sandbox: &mut Sandbox, now: u32) -> RolloverStep {
        let apex = self.apex.clone();
        match self.phase {
            0 => {
                // Publish the successor, inactive until caches hold it.
                let zone = sandbox
                    .zone_mut(&apex)
                    .expect("self.apex named a sandbox zone at start(); zones are never removed");
                let alg = self.new_algorithm;
                let bits = alg.default_key_bits();
                let mut key =
                    KeyPair::generate(&mut self.rng, apex.clone(), alg, bits, KeyRole::Zsk, now);
                key.activate = now + DNSKEY_TTL;
                self.new_tags = vec![key.key_tag()];
                self.old_tags = zone
                    .ring
                    .active(KeyRole::Zsk, now)
                    .iter()
                    .map(|k| k.key_tag())
                    .collect();
                zone.ring.add(key);
                let _ = sandbox.resign_zone(&apex, now);
                RolloverStep {
                    phase: 1,
                    description: "publish successor ZSK (inactive)".into(),
                    wait_secs: DNSKEY_TTL,
                }
            }
            1 => {
                // New key is active by now; retire the old signer.
                let zone = sandbox
                    .zone_mut(&apex)
                    .expect("self.apex named a sandbox zone at start(); zones are never removed");
                for tag in &self.old_tags {
                    if let Some(k) = zone.ring.by_tag_mut(*tag) {
                        k.schedule_retire(now);
                    }
                }
                let _ = sandbox.resign_zone(&apex, now);
                RolloverStep {
                    phase: 2,
                    description: "switch signing to the successor ZSK".into(),
                    wait_secs: 2 * DNSKEY_TTL,
                }
            }
            _ => {
                // Old signatures have expired from caches: drop the old key.
                let zone = sandbox
                    .zone_mut(&apex)
                    .expect("self.apex named a sandbox zone at start(); zones are never removed");
                for tag in &self.old_tags {
                    if let Some(k) = zone.ring.by_tag_mut(*tag) {
                        k.schedule_delete(now);
                    }
                }
                let _ = sandbox.resign_zone(&apex, now);
                RolloverStep {
                    phase: 3,
                    description: "remove the predecessor ZSK".into(),
                    wait_secs: 0,
                }
            }
        }
    }

    fn advance_ksk(&mut self, sandbox: &mut Sandbox, now: u32) -> RolloverStep {
        let apex = self.apex.clone();
        match self.phase {
            0 => {
                // Publish successor KSK and the additional DS (double-DS).
                let alg = self.new_algorithm;
                let bits = alg.default_key_bits();
                let (new_ds, old_ds) = {
                    let zone = sandbox.zone_mut(&apex).expect(
                        "self.apex named a sandbox zone at start(); zones are never removed",
                    );
                    let key = KeyPair::generate(
                        &mut self.rng,
                        apex.clone(),
                        alg,
                        bits,
                        KeyRole::Ksk,
                        now,
                    );
                    self.new_tags = vec![key.key_tag()];
                    self.old_tags = zone
                        .ring
                        .active(KeyRole::Ksk, now)
                        .iter()
                        .map(|k| k.key_tag())
                        .collect();
                    let new_ds = make_ds(&apex, &key.dnskey, self.digest);
                    let old_ds: Vec<_> = zone
                        .ring
                        .keys()
                        .iter()
                        .filter(|k| self.old_tags.contains(&k.key_tag()))
                        .map(|k| make_ds(&apex, &k.dnskey, self.digest))
                        .collect();
                    zone.ring.add(key);
                    (new_ds, old_ds)
                };
                let _ = sandbox.resign_zone(&apex, now);
                let mut all_ds = old_ds;
                all_ds.push(new_ds);
                sandbox.set_ds(&apex, all_ds, now);
                RolloverStep {
                    phase: 1,
                    description: "publish successor KSK and add its DS alongside the old one"
                        .into(),
                    wait_secs: 2 * DNSKEY_TTL,
                }
            }
            1 => {
                // Caches have the new DS: retire the old KSK and its DS.
                let new_ds = {
                    let zone = sandbox.zone_mut(&apex).expect(
                        "self.apex named a sandbox zone at start(); zones are never removed",
                    );
                    for tag in self.old_tags.clone() {
                        if let Some(k) = zone.ring.by_tag_mut(tag) {
                            k.schedule_retire(now);
                        }
                    }
                    zone.ring
                        .keys()
                        .iter()
                        .filter(|k| self.new_tags.contains(&k.key_tag()))
                        .map(|k| make_ds(&apex, &k.dnskey, self.digest))
                        .collect::<Vec<_>>()
                };
                let _ = sandbox.resign_zone(&apex, now);
                sandbox.set_ds(&apex, new_ds, now);
                RolloverStep {
                    phase: 2,
                    description: "remove the old DS; retire the old KSK".into(),
                    wait_secs: 2 * DNSKEY_TTL,
                }
            }
            _ => {
                let zone = sandbox
                    .zone_mut(&apex)
                    .expect("self.apex named a sandbox zone at start(); zones are never removed");
                for tag in self.old_tags.clone() {
                    if let Some(k) = zone.ring.by_tag_mut(tag) {
                        k.schedule_delete(now);
                    }
                }
                let _ = sandbox.resign_zone(&apex, now);
                RolloverStep {
                    phase: 3,
                    description: "delete the predecessor KSK".into(),
                    wait_secs: 0,
                }
            }
        }
    }

    fn advance_algorithm(&mut self, sandbox: &mut Sandbox, now: u32) -> RolloverStep {
        let apex = self.apex.clone();
        match self.phase {
            0 => {
                // Introduce new-algorithm KSK+ZSK: keys and signatures
                // appear together (every RRset gets dual-algorithm RRSIGs,
                // RFC 6840 §5.11 compliant at all times).
                let zone = sandbox
                    .zone_mut(&apex)
                    .expect("self.apex named a sandbox zone at start(); zones are never removed");
                self.old_tags = zone.ring.keys().iter().map(|k| k.key_tag()).collect();
                let alg = self.new_algorithm;
                let bits = alg.default_key_bits();
                for role in [KeyRole::Ksk, KeyRole::Zsk] {
                    let key = KeyPair::generate(&mut self.rng, apex.clone(), alg, bits, role, now);
                    self.new_tags.push(key.key_tag());
                    zone.ring.add(key);
                }
                let _ = sandbox.resign_zone(&apex, now);
                RolloverStep {
                    phase: 1,
                    description: "publish new-algorithm keys and dual-algorithm signatures".into(),
                    wait_secs: 2 * DNSKEY_TTL,
                }
            }
            1 => {
                // Add the new-algorithm DS next to the old one.
                let new_ds = {
                    let zone = sandbox.zone(&apex).expect(
                        "self.apex named a sandbox zone at start(); zones are never removed",
                    );
                    zone.ring
                        .keys()
                        .iter()
                        .filter(|k| k.role == KeyRole::Ksk && k.is_active(now))
                        .map(|k| make_ds(&apex, &k.dnskey, self.digest))
                        .collect::<Vec<_>>()
                };
                sandbox.set_ds(&apex, new_ds, now);
                RolloverStep {
                    phase: 2,
                    description: "publish DS records for both algorithms".into(),
                    wait_secs: 2 * DNSKEY_TTL,
                }
            }
            2 => {
                // Drop the old-algorithm DS.
                let new_only = {
                    let zone = sandbox.zone(&apex).expect(
                        "self.apex named a sandbox zone at start(); zones are never removed",
                    );
                    zone.ring
                        .keys()
                        .iter()
                        .filter(|k| k.role == KeyRole::Ksk && self.new_tags.contains(&k.key_tag()))
                        .map(|k| make_ds(&apex, &k.dnskey, self.digest))
                        .collect::<Vec<_>>()
                };
                sandbox.set_ds(&apex, new_only, now);
                RolloverStep {
                    phase: 3,
                    description: "remove the old-algorithm DS".into(),
                    wait_secs: 2 * DNSKEY_TTL,
                }
            }
            _ => {
                // Retire and delete the old-algorithm keys.
                let zone = sandbox
                    .zone_mut(&apex)
                    .expect("self.apex named a sandbox zone at start(); zones are never removed");
                for tag in self.old_tags.clone() {
                    if let Some(k) = zone.ring.by_tag_mut(tag) {
                        k.schedule_retire(now);
                        k.schedule_delete(now);
                    }
                }
                let _ = sandbox.resign_zone(&apex, now);
                RolloverStep {
                    phase: 4,
                    description: "remove the old-algorithm keys and signatures".into(),
                    wait_secs: 0,
                }
            }
        }
    }
}

/// The classic botched KSK rollover behind many sv→sb transitions
/// (paper §3.4): the operator replaces the KSK and re-signs but **forgets
/// to update the DS at the registrar** — the delegation now references a
/// key that no longer exists.
pub fn botched_ksk_rollover(sandbox: &mut Sandbox, apex: &Name, now: u32, seed: u64) {
    let zone = sandbox
        .zone_mut(apex)
        .expect("self.apex named a sandbox zone at start(); zones are never removed");
    let old_tags: Vec<u16> = zone
        .ring
        .active(KeyRole::Ksk, now)
        .iter()
        .map(|k| k.key_tag())
        .collect();
    let alg = zone
        .ring
        .keys()
        .first()
        .and_then(|k| k.algorithm())
        .unwrap_or(Algorithm::EcdsaP256Sha256);
    let key = KeyPair::generate(
        &mut StdRng::seed_from_u64(seed),
        apex.clone(),
        alg,
        alg.default_key_bits(),
        KeyRole::Ksk,
        now,
    );
    zone.ring.add(key);
    for tag in old_tags {
        if let Some(k) = zone.ring.by_tag_mut(tag) {
            k.schedule_delete(now);
        }
    }
    let _ = sandbox.resign_zone(apex, now);
    // …and no set_ds() call: the registrar never hears about it.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sandbox::{build_sandbox, ZoneSpec};
    use ddx_dns::name;

    const NOW: u32 = 1_000_000;

    fn sandbox() -> Sandbox {
        build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
            ],
            NOW,
            51,
        )
    }

    /// Drives a rollover to completion, returning the times each phase ran.
    fn run_rollover(sb: &mut Sandbox, kind: RolloverKind, alg: Option<Algorithm>) -> Vec<u32> {
        let apex = name("par.a.com");
        let mut rollover = Rollover::start(sb, &apex, kind, alg, 7);
        let mut now = NOW;
        let mut times = Vec::new();
        while let Some(step) = rollover.advance(sb, now) {
            times.push(now);
            now += step.wait_secs + 1;
        }
        assert!(rollover.is_complete());
        times
    }

    #[test]
    fn zsk_rollover_completes_and_replaces_key() {
        let mut sb = sandbox();
        let apex = name("par.a.com");
        let old_tag = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].key_tag();
        let times = run_rollover(&mut sb, RolloverKind::ZskPrePublish, None);
        assert_eq!(times.len(), 3);
        let end = *times.last().unwrap();
        let ring = &sb.zone(&apex).unwrap().ring;
        let active: Vec<u16> = ring
            .active(KeyRole::Zsk, end)
            .iter()
            .map(|k| k.key_tag())
            .collect();
        assert!(!active.contains(&old_tag), "old ZSK still signing");
        assert_eq!(active.len(), 1);
    }

    #[test]
    fn ksk_double_ds_rollover_updates_delegation() {
        let mut sb = sandbox();
        let apex = name("par.a.com");
        let old_tag = sb.zone(&apex).unwrap().ring.active(KeyRole::Ksk, NOW)[0].key_tag();
        run_rollover(&mut sb, RolloverKind::KskDoubleDs, None);
        // The parent's DS now references only the new KSK.
        let parent = name("a.com");
        let pzone = sb
            .testbed
            .server(&sb.zone(&parent).unwrap().servers[0])
            .unwrap()
            .zone(&parent)
            .unwrap();
        let ds_set = pzone.get(&apex, ddx_dns::RrType::Ds).unwrap();
        for rd in &ds_set.rdatas {
            if let ddx_dns::RData::Ds(ds) = rd {
                assert_ne!(ds.key_tag, old_tag, "old DS still delegated");
            }
        }
    }

    #[test]
    fn algorithm_rollover_switches_algorithms() {
        let mut sb = sandbox();
        let apex = name("par.a.com");
        let times = run_rollover(
            &mut sb,
            RolloverKind::AlgorithmConservative,
            Some(Algorithm::RsaSha256),
        );
        assert_eq!(times.len(), 4);
        let end = *times.last().unwrap();
        let algos = sb.zone(&apex).unwrap().ring.algorithms(end);
        assert_eq!(algos, vec![8], "only the new algorithm remains: {algos:?}");
    }

    #[test]
    fn botched_rollover_breaks_delegation() {
        let mut sb = sandbox();
        let apex = name("par.a.com");
        botched_ksk_rollover(&mut sb, &apex, NOW, 99);
        // The DS at the parent references the deleted key: every published
        // key now mismatches every DS.
        let parent = name("a.com");
        let pzone = sb
            .testbed
            .server(&sb.zone(&parent).unwrap().servers[0])
            .unwrap()
            .zone(&parent)
            .unwrap();
        let ds_tags: Vec<u16> = pzone
            .get(&apex, ddx_dns::RrType::Ds)
            .unwrap()
            .rdatas
            .iter()
            .filter_map(|rd| match rd {
                ddx_dns::RData::Ds(d) => Some(d.key_tag),
                _ => None,
            })
            .collect();
        let published: Vec<u16> = sb
            .zone(&apex)
            .unwrap()
            .ring
            .published(NOW)
            .iter()
            .map(|k| k.key_tag())
            .collect();
        assert!(ds_tags.iter().all(|t| !published.contains(t)));
    }
}

#[cfg(test)]
mod wildcard_tests {
    use crate::sandbox::{build_sandbox, ZoneSpec};
    use crate::testbed::Network;
    use ddx_dns::{name, Message, RData, RrType};

    const NOW: u32 = 1_000_000;

    #[test]
    fn wildcard_answer_synthesized_with_wildcard_rrsig() {
        let mut spec = ZoneSpec::conventional(name("wild.test"));
        spec.wildcard = true;
        let sb = build_sandbox(&[spec], NOW, 71);
        let sid = sb.zones[0].servers[0].clone();
        let q = Message::query(1, name("anything.wild.test"), RrType::A);
        let r = sb.testbed.query(&sid, &q).unwrap();
        // Positive answer at the queried name…
        let set = r
            .find_answer(&name("anything.wild.test"), RrType::A)
            .expect("wildcard expansion");
        assert_eq!(set.len(), 1);
        // …signed with the *wildcard's* RRSIG: labels < owner labels.
        let sig = r
            .answers
            .iter()
            .find_map(|rec| match &rec.rdata {
                RData::Rrsig(s) if s.type_covered == RrType::A => Some(s.clone()),
                _ => None,
            })
            .expect("wildcard RRSIG present");
        assert_eq!(sig.labels as usize, 2, "labels excludes the * label");
        // …and the exact-name denial comes along (RFC 4035 §3.1.3.3).
        assert!(r.authorities.iter().any(|rec| rec.rtype() == RrType::Nsec));
    }

    #[test]
    fn wildcard_expansion_verifies_cryptographically() {
        use ddx_dnssec::verify_rrset;
        let mut spec = ZoneSpec::conventional(name("wild.test"));
        spec.wildcard = true;
        let sb = build_sandbox(&[spec], NOW, 72);
        let sid = sb.zones[0].servers[0].clone();
        let q = Message::query(2, name("xyz.wild.test"), RrType::A);
        let r = sb.testbed.query(&sid, &q).unwrap();
        let set = r.find_answer(&name("xyz.wild.test"), RrType::A).unwrap();
        let sig = r
            .answers
            .iter()
            .find_map(|rec| match &rec.rdata {
                RData::Rrsig(s) if s.type_covered == RrType::A => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        let keys = sb
            .testbed
            .server(&sid)
            .unwrap()
            .zone(&name("wild.test"))
            .unwrap()
            .get(&name("wild.test"), RrType::Dnskey)
            .unwrap()
            .clone();
        let ok = keys.rdatas.iter().any(|rd| match rd {
            RData::Dnskey(k) => verify_rrset(&set, &sig, k, &name("wild.test"), NOW).is_ok(),
            _ => false,
        });
        assert!(ok, "RFC 4035 §5.3.2 wildcard reconstruction must verify");
    }

    #[test]
    fn existing_names_not_shadowed_by_wildcard() {
        let mut spec = ZoneSpec::conventional(name("wild.test"));
        spec.wildcard = true;
        let sb = build_sandbox(&[spec], NOW, 73);
        let sid = sb.zones[0].servers[0].clone();
        // www exists explicitly: the explicit record wins (RFC 1034 §4.3.3).
        let q = Message::query(3, name("www.wild.test"), RrType::A);
        let r = sb.testbed.query(&sid, &q).unwrap();
        let set = r.find_answer(&name("www.wild.test"), RrType::A).unwrap();
        match &set.rdatas[0] {
            RData::A(a) => assert_eq!(a.octets(), [198, 51, 100, 80]),
            other => panic!("unexpected {other:?}"),
        }
        // NODATA under the wildcard still works: * has no TXT.
        let q = Message::query(4, name("zzz.wild.test"), RrType::Txt);
        let r = sb.testbed.query(&sid, &q).unwrap();
        assert!(r.answers.is_empty());
    }
}
