//! A single in-memory authoritative nameserver instance: zone storage plus
//! the RFC 1034 §4.3.2 / RFC 4035 §3.1 query-resolution algorithm, including
//! DNSSEC-aware positive answers, referrals, and NSEC/NSEC3 negative
//! responses assembled from whatever chain the zone actually contains (so
//! injected misconfigurations surface faithfully in responses).
//!
//! The query path comes in two flavors sharing one resolution algorithm:
//! [`Server::handle_arc`] serves through a generation-stamped answer memo
//! and per-generation lookup indexes (see [`crate::answer`] and
//! [`crate::index`]), while [`Server::handle_uncached`] recomputes every
//! answer with the original linear scans. The two are byte-identical by
//! construction (the indexes fall back to the same first-match scans on
//! malformed chains) and a property test pins that equivalence.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use ddx_dns::{
    base32, Flags, Message, MessageView, Name, Nsec3, Question, RData, RRset, Rcode, Record,
    RrType, Zone,
};
use ddx_dnssec::nsec3_hash;

use crate::answer::{AnswerKey, AnswerMemo};
use crate::index::ZoneIndex;

/// Identifies one server instance (e.g. `ns1.par.a.com.#0`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub String);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Failure modes a server can be put into, modeling the paper's `lm` (lame)
/// category and transport-level brokenness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServerBehavior {
    /// Answers queries normally.
    #[default]
    Normal,
    /// Responds REFUSED to everything (lame delegation).
    Refuses,
    /// Never responds (transport returns nothing).
    Unresponsive,
}

/// One authoritative server: an id, its zone copies, and a behavior switch.
#[derive(Debug)]
pub struct Server {
    pub id: ServerId,
    pub behavior: ServerBehavior,
    zones: HashMap<Name, Zone>,
    /// Generation-keyed answer memo and per-generation zone indexes.
    memo: AnswerMemo,
}

/// Cloning copies the zones (whose generation stamps come along, keeping
/// stamp⇒content soundness) but starts with a cold memo: the caches refill
/// on demand and two clones never share mutable state.
impl Clone for Server {
    fn clone(&self) -> Self {
        Server {
            id: self.id.clone(),
            behavior: self.behavior,
            zones: self.zones.clone(),
            memo: AnswerMemo::with_config(self.memo.shard_count(), self.memo.shard_cap()),
        }
    }
}

impl Server {
    pub fn new(id: ServerId) -> Self {
        Server {
            id,
            behavior: ServerBehavior::Normal,
            zones: HashMap::new(),
            memo: AnswerMemo::new(),
        }
    }

    /// Loads (or replaces) a zone on this server.
    pub fn load_zone(&mut self, zone: Zone) {
        self.zones.insert(zone.apex().clone(), zone);
    }

    /// Immutable access to a loaded zone.
    pub fn zone(&self, apex: &Name) -> Option<&Zone> {
        self.zones.get(apex)
    }

    /// Mutable access — ZReplicator's error injection hooks in here. Any
    /// mutation through the returned zone bumps its generation, which
    /// implicitly evicts this server's memoized answers for it.
    pub fn zone_mut(&mut self, apex: &Name) -> Option<&mut Zone> {
        self.zones.get_mut(apex)
    }

    /// All zone apexes this server is authoritative for.
    pub fn apexes(&self) -> Vec<Name> {
        self.zones.keys().cloned().collect()
    }

    /// Answer-memo counters: `(hits, misses)` since this server was built.
    pub fn answer_cache_stats(&self) -> (u64, u64) {
        self.memo.stats()
    }

    /// Per-shard answer-memo counters (lookups/hits/misses/evictions), in
    /// shard order — the concurrency tests check `lookups == hits + misses`
    /// holds on every shard under contention.
    pub fn answer_memo_shard_stats(&self) -> Vec<crate::answer::ShardStats> {
        self.memo.shard_stats()
    }

    /// Entries dropped by memo cap flushes since this server was built.
    pub fn answer_memo_evictions(&self) -> u64 {
        self.memo.evictions()
    }

    /// Replaces the answer memo with one of `shards` shards capped at
    /// `shard_cap` entries each. Resets the memo counters (the old memo and
    /// its stats are dropped); intended to be called at setup time, before
    /// the server starts answering.
    pub fn configure_memo(&mut self, shards: usize, shard_cap: usize) {
        self.memo = AnswerMemo::with_config(shards, shard_cap);
    }

    /// The deepest zone whose apex is an ancestor-or-self of `qname`.
    fn best_zone(&self, qname: &Name) -> Option<&Zone> {
        self.zones
            .values()
            .filter(|z| qname.is_subdomain_of(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Answers a query through the generation-stamped memo; a repeat query
    /// against an unchanged zone is an `Arc` clone. Returns `None` when the
    /// server is unresponsive (the transport layer turns that into a
    /// timeout).
    pub fn handle_arc(&self, query: &Message) -> Option<Arc<Message>> {
        match self.behavior {
            ServerBehavior::Unresponsive => return None,
            ServerBehavior::Refuses => {
                let mut resp = query.response();
                resp.rcode = Rcode::Refused;
                return Some(Arc::new(resp));
            }
            ServerBehavior::Normal => {}
        }
        let Some(key) = AnswerKey::for_query(query) else {
            let mut resp = query.response();
            resp.rcode = Rcode::FormErr;
            return Some(Arc::new(resp));
        };
        Some(patch_id(self.resolve_key(query.id, key), query.id))
    }

    /// Answers a parsed wire view without ever materializing an owned query
    /// `Message` — the zero-copy request path for the UDP/TCP transports.
    ///
    /// Unlike [`Server::handle_arc`], the returned `Arc` is NOT id-patched:
    /// a memo hit comes back under whatever id it was first computed for.
    /// Transports stamp the real id into the first two wire bytes after
    /// encoding — the id does not participate in name compression, so the
    /// restamped bytes are identical to encoding an id-patched message.
    pub fn handle_view(&self, view: &MessageView<'_>) -> Option<Arc<Message>> {
        match self.behavior {
            ServerBehavior::Unresponsive => return None,
            ServerBehavior::Refuses => {
                let mut resp = response_skeleton(view);
                resp.rcode = Rcode::Refused;
                return Some(Arc::new(resp));
            }
            ServerBehavior::Normal => {}
        }
        let Some(key) = AnswerKey::from_view(view) else {
            let mut resp = response_skeleton(view);
            resp.rcode = Rcode::FormErr;
            return Some(Arc::new(resp));
        };
        Some(self.resolve_key(view.id(), key))
    }

    /// The shared resolution core behind [`Server::handle_arc`] and
    /// [`Server::handle_view`]: resolves an extracted key for a
    /// Normal-behavior server. On a memo hit the cached `Arc` comes back
    /// unpatched — its id is whatever query first populated the entry;
    /// callers own id fidelity.
    fn resolve_key(&self, id: u16, key: AnswerKey) -> Arc<Message> {
        let Some(zone) = self.best_zone(&key.qname) else {
            let mut resp = response_for(id, &key);
            resp.rcode = Rcode::Refused;
            return Arc::new(resp);
        };
        // AXFR (RFC 5936): full zone transfer, SOA-bracketed. Only served
        // for an exact apex match, and never memoized — transfers are rare
        // and large, exactly what the memo should not hold.
        if key.qtype == RrType::Axfr {
            let mut resp = response_for(id, &key);
            if &key.qname != zone.apex() {
                resp.rcode = Rcode::Refused;
                return Arc::new(resp);
            }
            resp.flags.aa = true;
            resp.answers = axfr_records(zone);
            return Arc::new(resp);
        }
        let generation = zone.generation();
        if let Some(cached) = self.memo.get(generation, &key) {
            return cached;
        }
        let dnssec = key.edns.map(|e| e.dnssec_ok).unwrap_or(false);
        let index = self.memo.index_for(zone, &key.qname);
        let mut resp = response_for(id, &key);
        answer_from_zone(zone, &key.qname, key.qtype, dnssec, &mut resp, Some(&index));
        let resp = Arc::new(resp);
        self.memo.insert(generation, key, Arc::clone(&resp));
        resp
    }

    /// Answers a query, returning an owned message (the memoized path plus
    /// one clone). Prefer [`Server::handle_arc`] on hot paths.
    pub fn handle(&self, query: &Message) -> Option<Message> {
        self.handle_arc(query).map(|resp| (*resp).clone())
    }

    /// The original uncached, unindexed answer path: every lookup is a
    /// fresh linear scan. Kept as the semantic reference the memoized path
    /// is property-tested against.
    pub fn handle_uncached(&self, query: &Message) -> Option<Message> {
        match self.behavior {
            ServerBehavior::Unresponsive => return None,
            ServerBehavior::Refuses => {
                let mut resp = query.response();
                resp.rcode = Rcode::Refused;
                return Some(resp);
            }
            ServerBehavior::Normal => {}
        }
        let mut resp = query.response();
        let Some(q) = query.question.clone() else {
            resp.rcode = Rcode::FormErr;
            return Some(resp);
        };
        let Some(zone) = self.best_zone(&q.qname) else {
            resp.rcode = Rcode::Refused;
            return Some(resp);
        };
        if q.qtype == RrType::Axfr {
            if &q.qname != zone.apex() {
                resp.rcode = Rcode::Refused;
                return Some(resp);
            }
            resp.flags.aa = true;
            resp.answers = axfr_records(zone);
            return Some(resp);
        }
        let dnssec = query.dnssec_ok();
        answer_from_zone(zone, &q.qname, q.qtype, dnssec, &mut resp, None);
        Some(resp)
    }
}

/// Replicates `Message::response()` for the query that `key` was extracted
/// from: same flags (qr set, rd echoed), NOERROR, the question restored
/// from the key, EDNS echoed. Keeping this identical to `query.response()`
/// is what makes the keyed path byte-for-byte equal to the owned path.
fn response_for(id: u16, key: &AnswerKey) -> Message {
    Message {
        id,
        flags: Flags {
            qr: true,
            rd: key.rd,
            ..Flags::default()
        },
        rcode: Rcode::NoError,
        question: Some(Question {
            qname: key.qname.clone(),
            qtype: key.qtype,
            qclass: key.qclass,
        }),
        answers: Vec::new(),
        authorities: Vec::new(),
        additionals: Vec::new(),
        edns: key.edns,
    }
}

/// Replicates `Message::response()` for a wire view, including the
/// question-less case (FORMERR/REFUSED replies to broken queries).
pub(crate) fn response_skeleton(view: &MessageView<'_>) -> Message {
    Message {
        id: view.id(),
        flags: Flags {
            qr: true,
            rd: view.flags().rd,
            ..Flags::default()
        },
        rcode: Rcode::NoError,
        question: view.question().map(|q| q.to_question()),
        answers: Vec::new(),
        authorities: Vec::new(),
        additionals: Vec::new(),
        edns: view.edns(),
    }
}

/// Returns `resp` as-is when its id already matches, else a patched copy —
/// so steady-state cache hits (probes reuse fixed per-slot ids) stay
/// allocation-free.
fn patch_id(resp: Arc<Message>, id: u16) -> Arc<Message> {
    if resp.id == id {
        resp
    } else {
        let mut patched = (*resp).clone();
        patched.id = id;
        Arc::new(patched)
    }
}

/// The AXFR record stream: SOA first, everything else, SOA again
/// (RFC 5936 §2.2).
fn axfr_records(zone: &Zone) -> Vec<Record> {
    let mut out = Vec::with_capacity(zone.record_count() + 2);
    let soa_rec = zone
        .get(zone.apex(), RrType::Soa)
        .map(|s| s.to_records())
        .unwrap_or_default();
    out.extend(soa_rec.iter().cloned());
    for set in zone.rrsets() {
        if set.rtype == RrType::Soa && set.name == *zone.apex() {
            continue;
        }
        out.extend(set.to_records());
    }
    out.extend(soa_rec);
    out
}

/// Adds an RRset (and, when `dnssec`, its covering RRSIGs) to a section.
fn push_set(zone: &Zone, set: &RRset, dnssec: bool, section: &mut Vec<Record>) {
    section.extend(set.to_records());
    if dnssec {
        if let Some(sigset) = zone.get(&set.name, RrType::Rrsig) {
            for rd in &sigset.rdatas {
                if matches!(rd, RData::Rrsig(s) if s.type_covered == set.rtype) {
                    section.push(Record::new(set.name.clone(), sigset.ttl, rd.clone()));
                }
            }
        }
    }
}

/// True if any owner name in the zone is strictly below `name` (so `name`
/// is an empty non-terminal and must not produce NXDOMAIN). The indexed
/// path uses the zone's canonical-order range probe; the naive path keeps
/// the original full scan.
fn has_descendant(zone: &Zone, name: &Name, index: Option<&ZoneIndex>) -> bool {
    if index.is_some() {
        zone.has_descendant(name)
    } else {
        zone.names().any(|n| n.is_strict_subdomain_of(name))
    }
}

/// The main resolution algorithm over one zone. With `index` present,
/// existence checks and denial-record selection go through the
/// per-generation [`ZoneIndex`]; with `None` every lookup is the original
/// linear scan. Both produce byte-identical responses.
fn answer_from_zone(
    zone: &Zone,
    qname: &Name,
    qtype: RrType,
    dnssec: bool,
    resp: &mut Message,
    index: Option<&ZoneIndex>,
) {
    resp.flags.aa = true;

    // 1. Delegation? (only when qname is below the cut, or at the cut and
    //    the query is not for DS — the DS lives in the parent.)
    if let Some(cut) = zone.delegation_covering(qname) {
        let at_cut = qname == &cut;
        if !at_cut || qtype != RrType::Ds {
            referral(zone, &cut, dnssec, resp, index);
            return;
        }
    }

    let exists = zone.has_name(qname) || has_descendant(zone, qname, index);
    if !exists {
        // Wildcard synthesis (RFC 1034 §4.3.3 / RFC 4035 §3.1.3.3): if
        // `*.<closest encloser>` holds the type, expand it; the answer
        // carries the wildcard's RRSIG (fewer labels than the owner) plus
        // the proof that the exact name does not exist.
        if let Some((wc_owner, set)) = wildcard_match(zone, qname, qtype, index) {
            let mut expanded = set.clone();
            expanded.name = qname.clone();
            resp.answers.extend(expanded.to_records());
            if dnssec {
                if let Some(sigset) = zone.get(&wc_owner, RrType::Rrsig) {
                    for rd in &sigset.rdatas {
                        if matches!(rd, RData::Rrsig(s) if s.type_covered == qtype) {
                            resp.answers
                                .push(Record::new(qname.clone(), sigset.ttl, rd.clone()));
                        }
                    }
                }
                // Prove the exact qname does not exist.
                attach_denial(zone, qname, dnssec, true, resp, index);
            }
            return;
        }
        negative(zone, qname, dnssec, true, resp, index);
        return;
    }

    // 2. Exact data?
    if let Some(set) = zone.get(qname, qtype) {
        push_set(zone, set, dnssec, &mut resp.answers);
        return;
    }

    // 3. CNAME?
    if qtype != RrType::Cname {
        if let Some(cname) = zone.get(qname, RrType::Cname) {
            push_set(zone, cname, dnssec, &mut resp.answers);
            return;
        }
    }

    // 4. NODATA.
    negative(zone, qname, dnssec, false, resp, index);
}

/// Finds a wildcard RRset covering `qname` at its closest encloser.
fn wildcard_match<'a>(
    zone: &'a Zone,
    qname: &Name,
    qtype: RrType,
    index: Option<&ZoneIndex>,
) -> Option<(Name, &'a RRset)> {
    let mut ce = qname.parent();
    while let Some(c) = ce {
        if !c.is_subdomain_of(zone.apex()) {
            break;
        }
        if zone.has_name(&c) || has_descendant(zone, &c, index) {
            let wc = c.child("*").ok()?;
            return zone.get(&wc, qtype).map(|set| (wc, set));
        }
        ce = c.parent();
    }
    None
}

/// Builds a referral response for a delegation at `cut`.
fn referral(zone: &Zone, cut: &Name, dnssec: bool, resp: &mut Message, index: Option<&ZoneIndex>) {
    resp.flags.aa = false;
    if let Some(ns) = zone.get(cut, RrType::Ns) {
        push_set(zone, ns, dnssec, &mut resp.authorities);
        // Glue.
        for rd in &ns.rdatas {
            if let RData::Ns(host) = rd {
                if host.is_subdomain_of(cut) {
                    for t in [RrType::A, RrType::Aaaa] {
                        if let Some(glue) = zone.get(host, t) {
                            resp.additionals.extend(glue.to_records());
                        }
                    }
                }
            }
        }
    }
    if dnssec {
        if let Some(ds) = zone.get(cut, RrType::Ds) {
            push_set(zone, ds, dnssec, &mut resp.authorities);
        } else {
            // Signed zone without DS at the cut: prove its absence.
            attach_denial(zone, cut, dnssec, false, resp, index);
        }
    }
}

/// Builds an NXDOMAIN or NODATA response with SOA and denial records.
fn negative(
    zone: &Zone,
    qname: &Name,
    dnssec: bool,
    nxdomain: bool,
    resp: &mut Message,
    index: Option<&ZoneIndex>,
) {
    if nxdomain {
        resp.rcode = Rcode::NxDomain;
    }
    if let Some(soa) = zone.get(zone.apex(), RrType::Soa) {
        push_set(zone, soa, dnssec, &mut resp.authorities);
    }
    if dnssec {
        attach_denial(zone, qname, dnssec, nxdomain, resp, index);
    }
}

/// Attaches the NSEC or NSEC3 proof records the zone can actually supply.
fn attach_denial(
    zone: &Zone,
    qname: &Name,
    dnssec: bool,
    nxdomain: bool,
    resp: &mut Message,
    index: Option<&ZoneIndex>,
) {
    let uses_nsec3 = match index {
        Some(idx) => idx.uses_nsec3(),
        None => zone
            .rrsets()
            .any(|s| s.rtype == RrType::Nsec3 || s.rtype == RrType::Nsec3Param),
    };
    if uses_nsec3 {
        attach_nsec3_denial(zone, qname, dnssec, nxdomain, resp, index);
    } else {
        attach_nsec_denial(zone, qname, dnssec, nxdomain, resp, index);
    }
}

fn attach_nsec_denial(
    zone: &Zone,
    qname: &Name,
    dnssec: bool,
    nxdomain: bool,
    resp: &mut Message,
    index: Option<&ZoneIndex>,
) {
    let mut wanted: Vec<Name> = Vec::new();
    if nxdomain {
        wanted.push(qname.clone());
        // Wildcard at the closest existing ancestor.
        let mut ce = qname.parent();
        while let Some(c) = &ce {
            if zone.has_name(c) || has_descendant(zone, c, index) || c == zone.apex() {
                break;
            }
            ce = c.parent();
        }
        if let Some(ce) = ce {
            if let Ok(w) = ce.child("*") {
                wanted.push(w);
            }
        }
    } else {
        wanted.push(qname.clone());
    }

    let mut added: Vec<Name> = Vec::new();
    for target in wanted {
        let found = match index {
            Some(idx) => idx
                .find_first_nsec(&target, nxdomain, zone.apex())
                .and_then(|owner| zone.get(owner, RrType::Nsec)),
            None => zone.rrsets().filter(|s| s.rtype == RrType::Nsec).find(|s| {
                if nxdomain || s.name != target {
                    s.rdatas.iter().any(|rd| match rd {
                        RData::Nsec(n) => {
                            ddx_dnssec::denial::nsec_covers(
                                &s.name,
                                &n.next_name,
                                &target,
                                zone.apex(),
                            ) || s.name == target
                        }
                        _ => false,
                    })
                } else {
                    true
                }
            }),
        };
        if let Some(set) = found {
            if !added.contains(&set.name) {
                added.push(set.name.clone());
                push_set(zone, set, dnssec, &mut resp.authorities);
            }
        }
    }
}

/// One NSEC3 record to hunt for: an exact hash match, a covering arc, or
/// (for the wildcard proof) cover-preferred-then-match.
enum Nsec3Target {
    Match(Name),
    Cover(Name),
    CoverOrMatch(Name),
}

/// Assembles the closest-encloser / next-closer / wildcard NSEC3 targets in
/// the naive path's selection order.
fn nsec3_targets(
    zone: &Zone,
    qname: &Name,
    nxdomain: bool,
    index: Option<&ZoneIndex>,
) -> Vec<Nsec3Target> {
    let mut targets = Vec::new();
    if nxdomain {
        // Closest encloser: deepest ancestor that exists (by data or ENT).
        let mut ce = qname.parent();
        while let Some(c) = &ce {
            if zone.has_name(c) || has_descendant(zone, c, index) || c == zone.apex() {
                break;
            }
            ce = c.parent();
        }
        let ce = ce.unwrap_or_else(|| zone.apex().clone());
        targets.push(Nsec3Target::Match(ce.clone()));
        let labels = qname.labels();
        let nc_len = ce.label_count() + 1;
        if labels.len() >= nc_len {
            if let Ok(nc) = Name::from_labels(labels[labels.len() - nc_len..].to_vec()) {
                targets.push(Nsec3Target::Cover(nc));
            }
        }
        if let Ok(w) = ce.child("*") {
            targets.push(Nsec3Target::CoverOrMatch(w));
        }
    } else {
        targets.push(Nsec3Target::Match(qname.clone()));
    }
    targets
}

fn attach_nsec3_denial(
    zone: &Zone,
    qname: &Name,
    dnssec: bool,
    nxdomain: bool,
    resp: &mut Message,
    index: Option<&ZoneIndex>,
) {
    let targets = nsec3_targets(zone, qname, nxdomain, index);
    let wanted: Vec<&RRset> = match index {
        Some(idx) => {
            let Some((salt, iterations)) = idx.nsec3_params() else {
                return;
            };
            let find_match = |t: &Name| {
                idx.find_nsec3_match(t, salt, iterations)
                    .and_then(|owner| zone.get(owner, RrType::Nsec3))
            };
            let find_cover = |t: &Name| {
                idx.find_nsec3_cover(t, salt, iterations)
                    .and_then(|owner| zone.get(owner, RrType::Nsec3))
            };
            targets
                .iter()
                .filter_map(|t| match t {
                    Nsec3Target::Match(n) => find_match(n),
                    Nsec3Target::Cover(n) => find_cover(n),
                    Nsec3Target::CoverOrMatch(n) => find_cover(n).or_else(|| find_match(n)),
                })
                .collect()
        }
        None => {
            // Parameters from any NSEC3 record (fall back to NSEC3PARAM).
            let params = zone
                .rrsets()
                .find_map(|s| match s.rdatas.first() {
                    Some(RData::Nsec3(n3)) if s.rtype == RrType::Nsec3 => {
                        Some((n3.salt.clone(), n3.iterations))
                    }
                    _ => None,
                })
                .or_else(|| {
                    zone.get(zone.apex(), RrType::Nsec3Param)
                        .and_then(|s| match s.rdatas.first() {
                            Some(RData::Nsec3Param(p)) => Some((p.salt.clone(), p.iterations)),
                            _ => None,
                        })
                });
            let Some((salt, iterations)) = params else {
                return;
            };

            let nsec3_sets: Vec<(&RRset, &Nsec3)> = zone
                .rrsets()
                .filter(|s| s.rtype == RrType::Nsec3)
                .filter_map(|s| match s.rdatas.first() {
                    Some(RData::Nsec3(n3)) => Some((s, n3)),
                    _ => None,
                })
                .collect();
            let owner_hash = |set: &RRset| -> Option<Vec<u8>> {
                let label = set.name.labels().first()?;
                base32::decode(std::str::from_utf8(label.as_bytes()).ok()?)
            };
            let find_match = |target: &Name| -> Option<&RRset> {
                let h = nsec3_hash(target, &salt, iterations);
                nsec3_sets
                    .iter()
                    .find(|(s, _)| owner_hash(s).as_deref() == Some(&h[..]))
                    .map(|(s, _)| *s)
            };
            let find_cover = |target: &Name| -> Option<&RRset> {
                let h = nsec3_hash(target, &salt, iterations);
                nsec3_sets
                    .iter()
                    .find(|(s, n3)| {
                        owner_hash(s)
                            .map(|oh| {
                                ddx_dnssec::nsec3::hash_covered(&oh, &n3.next_hashed_owner, &h)
                            })
                            .unwrap_or(false)
                    })
                    .map(|(s, _)| *s)
            };
            targets
                .iter()
                .filter_map(|t| match t {
                    Nsec3Target::Match(n) => find_match(n),
                    Nsec3Target::Cover(n) => find_cover(n),
                    Nsec3Target::CoverOrMatch(n) => find_cover(n).or_else(|| find_match(n)),
                })
                .collect()
        }
    };

    let mut added: Vec<Name> = Vec::new();
    for set in wanted {
        if !added.contains(&set.name) {
            added.push(set.name.clone());
            push_set(zone, set, dnssec, &mut resp.authorities);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::{name, Soa};
    use ddx_dnssec::{sign_zone, Algorithm, KeyPair, KeyRing, KeyRole, Nsec3Config, SignerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_000_000;

    fn plain_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        z.add(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        z.add(Record::new(
            name("alias.example.com"),
            300,
            RData::Cname(name("www.example.com")),
        ));
        z.add(Record::new(
            name("sub.example.com"),
            3600,
            RData::Ns(name("ns1.sub.example.com")),
        ));
        z.add(Record::new(
            name("ns1.sub.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        z
    }

    fn signed_zone(nsec3: bool) -> Zone {
        let mut z = plain_zone();
        let mut ring = KeyRing::new();
        let mut rng = StdRng::seed_from_u64(5);
        for role in [KeyRole::Ksk, KeyRole::Zsk] {
            ring.add(KeyPair::generate(
                &mut rng,
                name("example.com"),
                Algorithm::EcdsaP256Sha256,
                256,
                role,
                NOW,
            ));
        }
        let cfg = if nsec3 {
            SignerConfig::nsec3_at(NOW, Nsec3Config::default())
        } else {
            SignerConfig::nsec_at(NOW)
        };
        sign_zone(&mut z, &ring, &cfg, NOW).unwrap();
        z
    }

    fn server(zone: Zone) -> Server {
        let mut s = Server::new(ServerId("test#0".into()));
        s.load_zone(zone);
        s
    }

    fn ask(s: &Server, qname: &str, qtype: RrType) -> Message {
        s.handle(&Message::query(1, name(qname), qtype)).unwrap()
    }

    #[test]
    fn positive_answer_with_sigs() {
        let s = server(signed_zone(false));
        let r = ask(&s, "www.example.com", RrType::A);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.flags.aa);
        assert!(r.find_answer(&name("www.example.com"), RrType::A).is_some());
        assert!(
            !Message::sigs_covering(&r.answers, &name("www.example.com"), RrType::A).is_empty()
        );
    }

    #[test]
    fn plain_query_omits_sigs() {
        let s = server(signed_zone(false));
        let mut q = Message::query(1, name("www.example.com"), RrType::A);
        q.edns = None;
        let r = s.handle(&q).unwrap();
        assert!(Message::sigs_covering(&r.answers, &name("www.example.com"), RrType::A).is_empty());
    }

    #[test]
    fn cname_answered() {
        let s = server(signed_zone(false));
        let r = ask(&s, "alias.example.com", RrType::A);
        assert!(r
            .find_answer(&name("alias.example.com"), RrType::Cname)
            .is_some());
    }

    #[test]
    fn nxdomain_with_nsec_proof() {
        let s = server(signed_zone(false));
        let r = ask(&s, "nope.example.com", RrType::A);
        assert_eq!(r.rcode, Rcode::NxDomain);
        let nsecs: Vec<_> = r
            .authorities
            .iter()
            .filter(|rec| rec.rtype() == RrType::Nsec)
            .collect();
        assert!(!nsecs.is_empty(), "NXDOMAIN must carry NSEC proof");
        // SOA present too.
        assert!(r.authorities.iter().any(|rec| rec.rtype() == RrType::Soa));
    }

    #[test]
    fn nodata_with_nsec_proof() {
        let s = server(signed_zone(false));
        let r = ask(&s, "www.example.com", RrType::Aaaa);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert!(r
            .authorities
            .iter()
            .any(|rec| rec.rtype() == RrType::Nsec && rec.name == name("www.example.com")));
    }

    #[test]
    fn nxdomain_with_nsec3_proof() {
        let s = server(signed_zone(true));
        let r = ask(&s, "nope.example.com", RrType::A);
        assert_eq!(r.rcode, Rcode::NxDomain);
        let views: Vec<(Name, Nsec3)> = r
            .authorities
            .iter()
            .filter_map(|rec| match &rec.rdata {
                RData::Nsec3(n3) => Some((rec.name.clone(), n3.clone())),
                _ => None,
            })
            .collect();
        assert!(!views.is_empty());
        // The records the server chose must form a verifiable
        // closest-encloser proof.
        let refs: Vec<(&Name, &Nsec3)> = views.iter().map(|(o, n)| (o, n)).collect();
        ddx_dnssec::verify_nsec3_denial(
            &name("nope.example.com"),
            RrType::A,
            ddx_dnssec::DenialKind::NxDomain,
            &refs,
            &name("example.com"),
        )
        .unwrap();
    }

    #[test]
    fn referral_without_aa() {
        let s = server(signed_zone(false));
        let r = ask(&s, "x.sub.example.com", RrType::A);
        assert!(!r.flags.aa);
        assert!(r
            .authorities
            .iter()
            .any(|rec| rec.rtype() == RrType::Ns && rec.name == name("sub.example.com")));
        // Glue comes along.
        assert!(r
            .additionals
            .iter()
            .any(|rec| rec.name == name("ns1.sub.example.com")));
        // Unsigned delegation in a signed zone: NSEC proves no DS.
        assert!(r
            .authorities
            .iter()
            .any(|rec| rec.rtype() == RrType::Nsec && rec.name == name("sub.example.com")));
    }

    #[test]
    fn ds_at_cut_answered_from_parent() {
        let mut zone = signed_zone(false);
        // Pretend the child is signed: parent holds a DS.
        zone.add(Record::new(
            name("sub.example.com"),
            3600,
            RData::Ds(ddx_dns::Ds {
                key_tag: 1,
                algorithm: 13,
                digest_type: 2,
                digest: vec![0; 32],
            }),
        ));
        let s = server(zone);
        let r = ask(&s, "sub.example.com", RrType::Ds);
        assert!(r
            .find_answer(&name("sub.example.com"), RrType::Ds)
            .is_some());
    }

    #[test]
    fn ent_gives_nodata_not_nxdomain() {
        let mut zone = plain_zone();
        zone.add(Record::new(
            name("a.ent.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
        ));
        let s = server(zone);
        let r = ask(&s, "ent.example.com", RrType::A);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn refused_outside_zones() {
        let s = server(plain_zone());
        let r = ask(&s, "other.org", RrType::A);
        assert_eq!(r.rcode, Rcode::Refused);
    }

    #[test]
    fn behaviors() {
        let mut s = server(plain_zone());
        s.behavior = ServerBehavior::Refuses;
        assert_eq!(ask(&s, "www.example.com", RrType::A).rcode, Rcode::Refused);
        s.behavior = ServerBehavior::Unresponsive;
        assert!(s
            .handle(&Message::query(1, name("www.example.com"), RrType::A))
            .is_none());
    }

    #[test]
    fn best_zone_picks_deepest() {
        let mut s = Server::new(ServerId("multi#0".into()));
        s.load_zone(plain_zone());
        let mut child = Zone::new(name("sub.example.com"));
        child.add(Record::new(
            name("sub.example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.sub.example.com"),
                rname: name("hostmaster.sub.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        child.add(Record::new(
            name("w.sub.example.com"),
            60,
            RData::A(Ipv4Addr::new(203, 0, 113, 1)),
        ));
        s.load_zone(child);
        let r = ask(&s, "w.sub.example.com", RrType::A);
        assert!(r.flags.aa);
        assert!(r
            .find_answer(&name("w.sub.example.com"), RrType::A)
            .is_some());
    }

    #[test]
    fn repeat_query_is_a_memo_hit_sharing_one_allocation() {
        let s = server(signed_zone(false));
        let q = Message::query(1, name("www.example.com"), RrType::A);
        let r1 = s.handle_arc(&q).unwrap();
        let r2 = s.handle_arc(&q).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2), "same id + same zone ⇒ pointer bump");
        assert_eq!(s.answer_cache_stats(), (1, 1));
        // A different id still hits, via a patched copy.
        let mut q2 = q.clone();
        q2.id = 77;
        let r3 = s.handle_arc(&q2).unwrap();
        assert_eq!(r3.id, 77);
        assert_eq!(r3.answers, r1.answers);
        assert_eq!(s.answer_cache_stats(), (2, 1));
    }

    #[test]
    fn mutation_bumps_generation_and_evicts_stale_answers() {
        let mut s = server(signed_zone(false));
        let q = Message::query(1, name("www.example.com"), RrType::A);
        let before = s.handle(&q).unwrap();
        assert!(before
            .find_answer(&name("www.example.com"), RrType::A)
            .is_some());
        assert_eq!(s.handle(&q).unwrap(), before);
        let (hits, misses) = s.answer_cache_stats();
        assert_eq!((hits, misses), (1, 1));

        let apex = name("example.com");
        let gen_before = s.zone(&apex).unwrap().generation();
        s.zone_mut(&apex)
            .unwrap()
            .remove(&name("www.example.com"), RrType::A);
        assert!(s.zone(&apex).unwrap().generation() > gen_before);

        // The stale cached answer is unreachable under the new generation:
        // the same question now recomputes and reflects the mutation.
        let after = s.handle(&q).unwrap();
        assert!(after
            .find_answer(&name("www.example.com"), RrType::A)
            .is_none());
        let (hits2, misses2) = s.answer_cache_stats();
        assert_eq!((hits2, misses2), (hits, misses + 1));
    }

    #[test]
    fn view_path_matches_owned_path_modulo_id_stamp() {
        use ddx_dns::wire;
        for behavior in [ServerBehavior::Normal, ServerBehavior::Refuses] {
            let mut s = server(signed_zone(false));
            s.behavior = behavior;
            for (qname, qtype) in [
                ("www.example.com", RrType::A),
                ("nope.example.com", RrType::A),
                ("x.sub.example.com", RrType::A),
                ("example.com", RrType::Soa),
                ("example.com", RrType::Axfr),
                ("sub.example.com", RrType::Axfr),
                ("other.org", RrType::A),
            ] {
                let q = Message::query(0x55AA, name(qname), qtype);
                let bytes = wire::encode(&q);
                let view = MessageView::parse(&bytes).expect("query parses");
                // Twice so the second round exercises the memo-hit path.
                for round in 0..2 {
                    let owned = s.handle_arc(&q).expect("answer");
                    let viewed = s.handle_view(&view).expect("answer");
                    // handle_view leaves memo-hit ids unpatched by contract;
                    // stamp the id as the transports do before comparing.
                    let mut enc = wire::encode(&viewed);
                    enc[0..2].copy_from_slice(&q.id.to_be_bytes());
                    assert_eq!(
                        enc,
                        wire::encode(&owned),
                        "{behavior:?} {qname}/{qtype:?} round {round}"
                    );
                }
            }
        }

        // Question-less queries: FORMERR from both paths.
        let s = server(signed_zone(false));
        let mut broken = Message::query(9, name("www.example.com"), RrType::A);
        broken.question = None;
        let bytes = wire::encode(&broken);
        let view = MessageView::parse(&bytes).expect("parses");
        assert_eq!(
            s.handle_view(&view).map(|r| (*r).clone()),
            s.handle(&broken)
        );
        assert_eq!(s.handle(&broken).unwrap().rcode, Rcode::FormErr);

        // Unresponsive servers answer neither path.
        let mut mute = server(plain_zone());
        mute.behavior = ServerBehavior::Unresponsive;
        assert!(mute.handle_view(&view).is_none());
    }

    #[test]
    fn cached_path_matches_uncached_path() {
        for nsec3 in [false, true] {
            let s = server(signed_zone(nsec3));
            for qname in [
                "www.example.com",
                "nope.example.com",
                "x.sub.example.com",
                "sub.example.com",
                "ent.example.com",
                "example.com",
            ] {
                for qtype in [RrType::A, RrType::Aaaa, RrType::Ds, RrType::Soa] {
                    let q = Message::query(9, name(qname), qtype);
                    // Twice: the second pass serves from the memo.
                    for _ in 0..2 {
                        assert_eq!(
                            s.handle(&q),
                            s.handle_uncached(&q),
                            "{qname}/{qtype:?} nsec3={nsec3}"
                        );
                    }
                }
            }
        }
    }
}
