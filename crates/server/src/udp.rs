//! A real loopback UDP transport: each server runs on one or more worker
//! threads speaking genuine RFC 1035 wire format via `ddx_dns::wire`. Used
//! by integration tests, the transport benchmark, and `ddx-loadgen` to show
//! the testbed is not tied to in-process shortcuts.
//!
//! The transport is a shared-nothing worker pool: every worker owns its own
//! socket (`SO_REUSEPORT` port sharing on Linux, `try_clone` elsewhere —
//! see [`crate::batch`] for the fallback matrix), its own batched
//! send/receive buffers ([`recvmmsg`/`sendmmsg`](crate::batch::BatchSocket)
//! on the fast path), and its own per-client token-bucket
//! [`RateLimiter`](crate::ratelimit::RateLimiter). Workers share only the
//! `Server` itself, whose answer memo is internally sharded by qname
//! ([`crate::answer`]), so the hot path takes no exclusive lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::RwLock;

use ddx_dns::{wire, Message, MessageView, Rcode};

use crate::batch::{BatchMode, BatchSocket, RecvBatch, SendQueue, DEFAULT_BATCH};
use crate::ratelimit::{RateLimitConfig, RateLimiter};
use crate::server::{Server, ServerId};
use crate::testbed::{Network, QueryOutcome};

/// Tuning for one spawned server transport.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// UDP worker threads. 1 reproduces the historical single-socket loop.
    pub workers: usize,
    /// Datagrams per batched receive/send.
    pub batch: usize,
    /// Syscall strategy; downgraded automatically where unsupported.
    pub mode: BatchMode,
    /// Per-client token buckets; `None` disables rate limiting.
    pub rate_limit: Option<RateLimitConfig>,
    /// Socket read timeout — the cadence at which idle workers re-check
    /// the stop flag.
    pub read_timeout: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            workers: 1,
            batch: DEFAULT_BATCH,
            mode: BatchMode::fastest(),
            rate_limit: None,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// A running UDP+TCP authoritative server bound to one loopback port.
///
/// UDP answers are truncated to the client's advertised EDNS payload size
/// (512 bytes without EDNS), setting the TC bit; the TCP listener on the
/// same port serves the full response with RFC 1035 §4.2.2 length framing.
pub struct UdpServerHandle {
    pub id: ServerId,
    pub addr: SocketAddr,
    server: Arc<RwLock<Server>>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    tcp_thread: Option<JoinHandle<()>>,
}

impl UdpServerHandle {
    /// Spawns `server` on an ephemeral 127.0.0.1 port (UDP and TCP) with
    /// the default single-worker transport.
    pub fn spawn(server: Server) -> std::io::Result<Self> {
        Self::spawn_with(server, TransportConfig::default())
    }

    /// Spawns `server` with `workers` shared-nothing UDP workers and
    /// otherwise default tuning.
    pub fn spawn_sharded(server: Server, workers: usize) -> std::io::Result<Self> {
        Self::spawn_with(
            server,
            TransportConfig {
                workers,
                ..TransportConfig::default()
            },
        )
    }

    /// Spawns `server` with explicit transport tuning.
    pub fn spawn_with(server: Server, cfg: TransportConfig) -> std::io::Result<Self> {
        let workers = cfg.workers.max(1);
        // Worker sockets: one per worker sharing the port via SO_REUSEPORT
        // where supported, else clones of one socket (the kernel then hands
        // each datagram to one of the blocked receivers).
        let mut sockets: Vec<UdpSocket> = Vec::with_capacity(workers);
        let first = crate::batch::bind_worker_socket(0)?;
        let addr = first.local_addr()?;
        sockets.push(first);
        for _ in 1..workers {
            let sock = if crate::batch::reuseport_supported() {
                crate::batch::bind_worker_socket(addr.port())?
            } else {
                sockets[0].try_clone()?
            };
            sockets.push(sock);
        }
        for sock in &sockets {
            sock.set_read_timeout(Some(cfg.read_timeout))?;
        }
        let listener = TcpListener::bind(addr)?;
        let id = server.id.clone();
        let server = Arc::new(RwLock::new(server));
        let stop = Arc::new(AtomicBool::new(false));
        let worker_threads: Vec<JoinHandle<()>> = sockets
            .into_iter()
            .enumerate()
            .map(|(i, sock)| {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let cfg = cfg.clone();
                std::thread::spawn(move || udp_worker_loop(i, sock, &cfg, &server, &stop))
            })
            .collect();
        let tcp_thread = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Blocking accept: no polling sleep. Drop wakes this thread
                // with a throwaway connection after setting the stop flag.
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            let _ = handle_tcp_client(stream, &server);
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(UdpServerHandle {
            id,
            addr,
            server,
            stop,
            workers: worker_threads,
            tcp_thread: Some(tcp_thread),
        })
    }

    /// Mutates the live server (e.g. to inject an error between probes).
    pub fn with_server_mut<R>(&self, f: impl FnOnce(&mut Server) -> R) -> R {
        f(&mut self.server.write())
    }
}

impl Drop for UdpServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking acceptor so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.tcp_thread.take() {
            let _ = t.join();
        }
    }
}

/// One shared-nothing UDP worker: batched receive, decode, rate-limit,
/// answer through the sharded memo, batched send.
fn udp_worker_loop(
    worker: usize,
    sock: UdpSocket,
    cfg: &TransportConfig,
    server: &Arc<RwLock<Server>>,
    stop: &Arc<AtomicBool>,
) {
    let worker_label = worker.to_string();
    let obs_batches = ddx_obs::counter(
        "server.worker.recv_batches",
        &[("worker", worker_label.as_str())],
    );
    let obs_queries = ddx_obs::counter(
        "server.worker.queries",
        &[("worker", worker_label.as_str())],
    );
    let obs_sent = ddx_obs::counter("server.worker.sent", &[("worker", worker_label.as_str())]);
    let obs_batch_fill = ddx_obs::global().histogram_with_bounds(
        "server.worker.batch_fill",
        &[],
        &[1, 2, 4, 8, 16, 32, 64, 128],
    );
    let bsock = BatchSocket::new(sock, cfg.mode);
    let mut batch = RecvBatch::new(cfg.batch);
    let mut limiter = cfg.rate_limit.map(RateLimiter::new);
    let mut out = SendQueue::with_capacity(cfg.batch);
    while !stop.load(Ordering::Relaxed) {
        let n = match bsock.recv_batch(&mut batch) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue; // timeout: re-check stop flag
            }
            Err(_) => break,
        };
        if n == 0 {
            continue;
        }
        obs_batches.inc();
        obs_batch_fill.record(n as u64);
        out.clear();
        {
            let server = server.read();
            for (bytes, peer) in batch.received() {
                // Zero-copy parse: the view borrows the receive slot; no
                // owned Message is built unless the memo misses.
                let Ok(view) = MessageView::parse(bytes) else {
                    continue;
                };
                obs_queries.inc();
                if let Some(rl) = limiter.as_mut() {
                    if !rl.allow(peer.ip()) {
                        // Bucket dry: answer REFUSED without touching the
                        // zone store.
                        let mut resp = crate::server::response_skeleton(&view);
                        resp.rcode = Rcode::Refused;
                        wire::encode_into(&resp, out.slot());
                        out.commit(peer);
                        continue;
                    }
                }
                if respond_into(&server, &view, out.slot()) {
                    out.commit(peer);
                }
            }
        }
        if !out.is_empty() {
            obs_sent.add(out.len() as u64);
            let _ = bsock.send_batch(out.items());
        }
    }
}

/// Answers one parsed query view into `buf` (a recycled [`SendQueue`]
/// slot), applying the UDP truncation rule. Returns whether `buf` holds a
/// response to send.
///
/// [`Server::handle_view`] returns memo-hit answers without patching the
/// message id (the cached `Arc` is shared), so the query id is stamped
/// directly into the first two wire bytes after encoding — the id never
/// participates in name compression, making this byte-identical to
/// encoding a patched message.
fn respond_into(server: &Server, view: &MessageView<'_>, buf: &mut Vec<u8>) -> bool {
    // The client's advertised maximum UDP payload.
    let limit = view
        .edns()
        .map(|e| e.udp_size.max(512) as usize)
        .unwrap_or(512);
    let Some(resp) = server.handle_view(view) else {
        return false;
    };
    wire::encode_into(&resp, buf);
    if buf.len() > limit {
        // RFC 1035 §4.2.1/RFC 2181 §9: answer doesn't fit — return a
        // truncated response with TC so the client retries over TCP.
        let mut truncated = (*resp).clone();
        truncated.flags.tc = true;
        truncated.answers.clear();
        truncated.authorities.clear();
        truncated.additionals.clear();
        wire::encode_into(&truncated, buf);
    }
    buf[0..2].copy_from_slice(&view.id().to_be_bytes());
    true
}

/// Serves one TCP connection: length-framed queries and responses
/// (RFC 1035 §4.2.2), no truncation.
fn handle_tcp_client(mut stream: TcpStream, server: &Arc<RwLock<Server>>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf)?;
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut msg = vec![0u8; len];
    stream.read_exact(&mut msg)?;
    let Ok(view) = MessageView::parse(&msg) else {
        return Ok(());
    };
    let resp = server.read().handle_view(&view);
    if let Some(resp) = resp {
        let mut bytes = wire::encode(&resp);
        // handle_view leaves memo-hit ids unpatched; stamp the wire bytes.
        bytes[0..2].copy_from_slice(&view.id().to_be_bytes());
        stream.write_all(&(bytes.len() as u16).to_be_bytes())?;
        stream.write_all(&bytes)?;
    }
    Ok(())
}

/// Sends one query over TCP with RFC 1035 §4.2.2 framing.
fn tcp_query(addr: SocketAddr, query: &Message, timeout: Duration) -> Option<Message> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let bytes = wire::encode(query);
    stream.write_all(&(bytes.len() as u16).to_be_bytes()).ok()?;
    stream.write_all(&bytes).ok()?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut msg = vec![0u8; len];
    stream.read_exact(&mut msg).ok()?;
    wire::decode(&msg).ok()
}

/// A [`Network`] that reaches servers over loopback UDP, retrying over TCP
/// when a response comes back truncated (TC bit).
#[derive(Default)]
pub struct UdpNetwork {
    routes: std::collections::HashMap<ServerId, SocketAddr>,
    hosts: std::collections::HashMap<ddx_dns::Name, ServerId>,
    /// Per-query timeout; queries past it count as unresponsive.
    pub timeout: Duration,
    /// Retry truncated answers over TCP (on by default, like a stub
    /// resolver). Disable to observe raw TC responses.
    pub tcp_fallback: bool,
}

impl UdpNetwork {
    pub fn new() -> Self {
        UdpNetwork {
            routes: Default::default(),
            hosts: Default::default(),
            timeout: Duration::from_millis(500),
            tcp_fallback: true,
        }
    }

    /// Registers a spawned server's address.
    pub fn add_route(&mut self, handle: &UdpServerHandle) {
        self.routes.insert(handle.id.clone(), handle.addr);
    }

    /// Declares that NS hostname `host` resolves to `server`.
    pub fn register_ns(&mut self, host: ddx_dns::Name, server: ServerId) {
        self.hosts.insert(host, server);
    }
}

thread_local! {
    /// One reusable client socket per thread. Binding a fresh ephemeral
    /// socket used to dominate the cost of small queries; reuse keeps the
    /// same source-address/ID verification on every response.
    static CLIENT_SOCKET: std::cell::RefCell<Option<UdpSocket>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with this thread's client socket, binding it on first use.
fn with_client_socket<R>(f: impl FnOnce(&UdpSocket) -> Option<R>) -> Option<R> {
    CLIENT_SOCKET.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            *slot = UdpSocket::bind("127.0.0.1:0").ok();
        }
        slot.as_ref().and_then(f)
    })
}

/// What one UDP exchange produced, before any TCP fallback decision.
enum UdpReply {
    Outcome(QueryOutcome),
    /// The answer came back with TC set and the caller wants TCP fallback:
    /// the truncated body was never materialized into an owned `Message`.
    Truncated,
}

impl UdpNetwork {
    /// One UDP exchange: send, then wait for a datagram attributable to
    /// this query. Bytes that echo the query ID but do not parse surface as
    /// [`QueryOutcome::Malformed`] instead of silently waiting out the
    /// timeout.
    ///
    /// Response verification (id, question echo) runs entirely on the
    /// borrowed [`MessageView`]; `to_owned` runs once, only for the
    /// accepted answer that the caller retains.
    fn udp_exchange(&self, addr: &SocketAddr, query: &Message) -> UdpReply {
        let out = with_client_socket(|socket| {
            socket.set_read_timeout(Some(self.timeout)).ok()?;
            socket.send_to(&wire::encode(query), addr).ok()?;
            let mut buf = [0u8; 4096];
            loop {
                let (len, peer) = socket.recv_from(&mut buf).ok()?;
                // The socket outlives a single query: besides checking the
                // source address and ID, skip datagrams that do not echo
                // this query's question (stale answers from an earlier,
                // timed-out exchange).
                if peer != *addr {
                    continue;
                }
                match MessageView::parse(&buf[..len]) {
                    Ok(view) => {
                        let question_matches = match (view.question(), &query.question) {
                            (Some(qv), Some(q)) => qv.matches(q),
                            (None, None) => true,
                            _ => false,
                        };
                        if view.id() != query.id || !question_matches {
                            continue;
                        }
                        if view.flags().tc && self.tcp_fallback {
                            // The full answer comes over TCP; don't pay to
                            // materialize the truncated one.
                            return Some(UdpReply::Truncated);
                        }
                        return Some(UdpReply::Outcome(QueryOutcome::Answer(Arc::new(
                            view.to_owned(),
                        ))));
                    }
                    Err(_) => {
                        if len >= 2 && buf[..2] == query.id.to_be_bytes() {
                            return Some(UdpReply::Outcome(QueryOutcome::Malformed));
                        }
                        continue;
                    }
                }
            }
        });
        out.unwrap_or(UdpReply::Outcome(QueryOutcome::Timeout))
    }
}

impl Network for UdpNetwork {
    fn query(&self, server: &ServerId, query: &Message) -> Option<Arc<Message>> {
        self.query_outcome(server, query).into_answer()
    }

    fn query_outcome(&self, server: &ServerId, query: &Message) -> QueryOutcome {
        let Some(addr) = self.routes.get(server) else {
            return QueryOutcome::Timeout;
        };
        match self.udp_exchange(addr, query) {
            UdpReply::Truncated => match tcp_query(*addr, query, self.timeout) {
                Some(m) => QueryOutcome::Answer(Arc::new(m)),
                None => QueryOutcome::Timeout,
            },
            UdpReply::Outcome(out) => out,
        }
    }

    fn resolve_ns(&self, host: &ddx_dns::Name) -> Option<ServerId> {
        self.hosts.get(host).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerBehavior;
    use ddx_dns::{name, RData, Record, RrType, Soa, Zone};
    use std::net::Ipv4Addr;

    fn zone() -> Zone {
        let mut z = Zone::new(name("udp.test"));
        z.add(Record::new(
            name("udp.test"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.udp.test"),
                rname: name("hostmaster.udp.test"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            name("www.udp.test"),
            60,
            RData::A(Ipv4Addr::new(127, 0, 0, 1)),
        ));
        z
    }

    #[test]
    fn udp_round_trip() {
        let mut server = Server::new(ServerId("udp#0".into()));
        server.load_zone(zone());
        let handle = UdpServerHandle::spawn(server).unwrap();
        let mut net = UdpNetwork::new();
        net.add_route(&handle);
        let q = Message::query(77, name("www.udp.test"), RrType::A);
        let r = net.query(&ServerId("udp#0".into()), &q).unwrap();
        assert_eq!(r.id, 77);
        assert!(r.find_answer(&name("www.udp.test"), RrType::A).is_some());
    }

    #[test]
    fn unresponsive_server_times_out() {
        let mut server = Server::new(ServerId("udp#1".into()));
        server.load_zone(zone());
        server.behavior = ServerBehavior::Unresponsive;
        let handle = UdpServerHandle::spawn(server).unwrap();
        let mut net = UdpNetwork::new();
        net.timeout = Duration::from_millis(100);
        net.add_route(&handle);
        let q = Message::query(78, name("www.udp.test"), RrType::A);
        assert!(net.query(&ServerId("udp#1".into()), &q).is_none());
    }

    #[test]
    fn live_mutation_visible() {
        let mut server = Server::new(ServerId("udp#2".into()));
        server.load_zone(zone());
        let handle = UdpServerHandle::spawn(server).unwrap();
        let mut net = UdpNetwork::new();
        net.add_route(&handle);
        handle.with_server_mut(|s| {
            s.zone_mut(&name("udp.test")).unwrap().add(Record::new(
                name("new.udp.test"),
                60,
                RData::A(Ipv4Addr::new(127, 0, 0, 2)),
            ));
        });
        let q = Message::query(79, name("new.udp.test"), RrType::A);
        let r = net.query(&ServerId("udp#2".into()), &q).unwrap();
        assert!(r.find_answer(&name("new.udp.test"), RrType::A).is_some());
    }

    #[test]
    fn sharded_transport_answers_from_many_client_threads() {
        let mut server = Server::new(ServerId("udp#3".into()));
        server.load_zone(zone());
        let handle = UdpServerHandle::spawn_sharded(server, 4).unwrap();
        let addr_id = ServerId("udp#3".into());
        let handle = Arc::new(handle);
        let threads: Vec<_> = (0..4u16)
            .map(|t| {
                let handle = Arc::clone(&handle);
                let id = addr_id.clone();
                std::thread::spawn(move || {
                    // Per-thread UdpNetwork: the thread-local client socket
                    // gives each thread its own 4-tuple (and so, with
                    // SO_REUSEPORT, possibly its own server worker).
                    let mut net = UdpNetwork::new();
                    net.add_route(&handle);
                    for i in 0..50u16 {
                        let qid = t * 1000 + i + 1;
                        let q = Message::query(qid, name("www.udp.test"), RrType::A);
                        let r = net.query(&id, &q).expect("answer");
                        assert_eq!(r.id, qid);
                        assert!(r.find_answer(&name("www.udp.test"), RrType::A).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn rate_limited_client_gets_refused() {
        let mut server = Server::new(ServerId("udp#4".into()));
        server.load_zone(zone());
        let handle = UdpServerHandle::spawn_with(
            server,
            TransportConfig {
                rate_limit: Some(RateLimitConfig::new(1, 1)),
                ..TransportConfig::default()
            },
        )
        .unwrap();
        let mut net = UdpNetwork::new();
        net.add_route(&handle);
        let id = ServerId("udp#4".into());
        let mut ok = 0;
        let mut refused = 0;
        for i in 0..10u16 {
            let q = Message::query(200 + i, name("www.udp.test"), RrType::A);
            match net.query(&id, &q) {
                Some(r) if r.rcode == Rcode::Refused => refused += 1,
                Some(_) => ok += 1,
                None => {}
            }
        }
        assert!(ok >= 1, "the burst allowance must admit the first query");
        assert!(
            refused >= 5,
            "a 1 qps bucket must refuse most of a 10-query burst (ok={ok}, refused={refused})"
        );
    }

    #[test]
    fn shutdown_joins_quickly_without_polling() {
        let mut server = Server::new(ServerId("udp#5".into()));
        server.load_zone(zone());
        let handle = UdpServerHandle::spawn_sharded(server, 2).unwrap();
        // Exercise both transports once so the threads are demonstrably live.
        let mut net = UdpNetwork::new();
        net.add_route(&handle);
        let q = Message::query(91, name("www.udp.test"), RrType::A);
        assert!(net.query(&ServerId("udp#5".into()), &q).is_some());
        let started = std::time::Instant::now();
        drop(handle);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "drop must join the acceptor via the wake connection, not a poll loop"
        );
    }
}

#[cfg(test)]
mod tcp_tests {
    use super::*;
    use ddx_dns::{name, Edns, RData, Record, RrType, Soa, Zone};
    use std::net::Ipv4Addr;

    /// A zone whose TXT RRset cannot fit a 512-byte UDP response.
    fn big_zone() -> Zone {
        let mut z = Zone::new(name("big.test"));
        z.add(Record::new(
            name("big.test"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.big.test"),
                rname: name("hostmaster.big.test"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        for i in 0..12 {
            z.add(Record::new(
                name("fat.big.test"),
                60,
                RData::Txt(vec![format!("{:0>120}", i)]),
            ));
        }
        z.add(Record::new(
            name("fat.big.test"),
            60,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        z
    }

    fn spawn_big() -> (UdpServerHandle, UdpNetwork) {
        let mut server = Server::new(ServerId("big#0".into()));
        server.load_zone(big_zone());
        let handle = UdpServerHandle::spawn(server).unwrap();
        let mut net = UdpNetwork::new();
        net.add_route(&handle);
        (handle, net)
    }

    #[test]
    fn oversized_answer_truncated_without_fallback() {
        let (_handle, mut net) = spawn_big();
        net.tcp_fallback = false;
        let mut q = Message::query(5, name("fat.big.test"), RrType::Txt);
        q.edns = Some(Edns {
            udp_size: 512,
            dnssec_ok: false,
        });
        let r = net.query(&ServerId("big#0".into()), &q).unwrap();
        assert!(r.flags.tc, "TC bit must be set");
        assert!(r.answers.is_empty(), "truncated responses carry no answers");
    }

    #[test]
    fn tcp_fallback_recovers_full_answer() {
        let (_handle, net) = spawn_big();
        let mut q = Message::query(6, name("fat.big.test"), RrType::Txt);
        q.edns = Some(Edns {
            udp_size: 512,
            dnssec_ok: false,
        });
        let r = net.query(&ServerId("big#0".into()), &q).unwrap();
        assert!(!r.flags.tc);
        assert_eq!(
            r.find_answer(&name("fat.big.test"), RrType::Txt)
                .unwrap()
                .len(),
            12
        );
    }

    #[test]
    fn large_edns_budget_avoids_truncation() {
        let (_handle, mut net) = spawn_big();
        net.tcp_fallback = false;
        let mut q = Message::query(7, name("fat.big.test"), RrType::Txt);
        q.edns = Some(Edns {
            udp_size: 4096,
            dnssec_ok: false,
        });
        let r = net.query(&ServerId("big#0".into()), &q).unwrap();
        assert!(!r.flags.tc);
        assert_eq!(
            r.find_answer(&name("fat.big.test"), RrType::Txt)
                .unwrap()
                .len(),
            12
        );
    }

    #[test]
    fn no_edns_means_512_byte_limit() {
        let (_handle, mut net) = spawn_big();
        net.tcp_fallback = false;
        let mut q = Message::query(8, name("fat.big.test"), RrType::Txt);
        q.edns = None;
        let r = net.query(&ServerId("big#0".into()), &q).unwrap();
        assert!(r.flags.tc, "plain-DNS clients get the classic 512 limit");
    }
}

#[cfg(test)]
mod axfr_tests {
    use super::*;
    use crate::sandbox::{build_sandbox, ZoneSpec};
    use crate::server::Server;
    use ddx_dns::{name, RrType, Zone};

    /// Reconstructs a zone from an AXFR answer stream.
    fn zone_from_axfr(apex: &ddx_dns::Name, records: &[ddx_dns::Record]) -> Zone {
        let mut z = Zone::new(apex.clone());
        // Skip the trailing SOA duplicate.
        for rec in &records[..records.len().saturating_sub(1)] {
            z.add(rec.clone());
        }
        z
    }

    #[test]
    fn axfr_over_tcp_fallback_transfers_signed_zone() {
        // A fully signed zone never fits 512 bytes: AXFR over UDP gets TC
        // and the client transparently retries over TCP (RFC 5936 behavior
        // approximated by fallback).
        let sb = build_sandbox(&[ZoneSpec::conventional(name("xfer.test"))], 1_000_000, 31);
        let apex = name("xfer.test");
        let original = sb
            .testbed
            .server(&sb.zones[0].servers[0])
            .unwrap()
            .zone(&apex)
            .unwrap()
            .clone();
        let mut server = Server::new(ServerId("xfer#0".into()));
        server.load_zone(original.clone());
        let handle = UdpServerHandle::spawn(server).unwrap();
        let mut net = UdpNetwork::new();
        net.add_route(&handle);

        let mut q = Message::query(9, apex.clone(), RrType::Axfr);
        q.edns = None; // classic 512-byte UDP: forces the TCP path
        let r = net.query(&ServerId("xfer#0".into()), &q).unwrap();
        assert!(!r.flags.tc, "fallback must deliver the untruncated stream");
        // SOA-bracketed stream.
        assert_eq!(r.answers.first().map(|r| r.rtype()), Some(RrType::Soa));
        assert_eq!(r.answers.last().map(|r| r.rtype()), Some(RrType::Soa));
        // The transferred zone equals the original.
        let transferred = zone_from_axfr(&apex, &r.answers);
        assert_eq!(transferred, original);
    }

    #[test]
    fn axfr_refused_for_non_apex() {
        let sb = build_sandbox(&[ZoneSpec::conventional(name("xfer.test"))], 1_000_000, 32);
        let server = sb.testbed.server(&sb.zones[0].servers[0]).unwrap();
        let q = Message::query(10, name("www.xfer.test"), RrType::Axfr);
        let r = server.handle(&q).unwrap();
        assert_eq!(r.rcode, ddx_dns::Rcode::Refused);
    }
}
