//! A TTL-respecting answer cache wrapped around any [`Network`] — the
//! client-side reality behind DFixer's *"wait at least one full TTL for the
//! removed DS record to expire from the cache of any validator"* step
//! (paper Fig 8 step 5): until cached delegation material expires,
//! validators keep judging the zone by its *old* state.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use ddx_dns::{Message, Name};

use crate::answer::AnswerKey;
use crate::server::ServerId;
use crate::testbed::Network;

/// Cache key: which server was asked what. The question half is the same
/// [`AnswerKey`] the server-side memo uses, so both layers agree on what
/// identifies a cacheable question (typed `RrType`, class, RD, EDNS state).
type Key = (ServerId, AnswerKey);

struct Entry {
    expires_at: u32,
    response: Arc<Message>,
}

/// A caching view over an upstream network. The clock is external: set
/// [`CachingNetwork::set_now`] before issuing queries (probe timestamps and
/// cache expiry share the simulation clock).
pub struct CachingNetwork<'a> {
    upstream: &'a dyn Network,
    now: Cell<u32>,
    entries: RefCell<HashMap<Key, Entry>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'a> CachingNetwork<'a> {
    pub fn new(upstream: &'a dyn Network, now: u32) -> Self {
        CachingNetwork {
            upstream,
            now: Cell::new(now),
            entries: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Advances (or rewinds) the cache clock.
    pub fn set_now(&self, now: u32) {
        self.now.set(now);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Drops every cached entry (`rndc flush` for the client side).
    pub fn flush(&self) {
        self.entries.borrow_mut().clear();
    }

    /// The TTL a response is cacheable for: the minimum record TTL across
    /// sections, or the SOA minimum for empty (negative) answers
    /// (RFC 2308 §5), capped at one day.
    fn cache_ttl(response: &Message) -> u32 {
        let min_ttl = response
            .answers
            .iter()
            .chain(&response.authorities)
            .map(|r| r.ttl)
            .min();
        min_ttl.unwrap_or(60).clamp(1, 86_400)
    }
}

impl Network for CachingNetwork<'_> {
    fn query(&self, server: &ServerId, query: &Message) -> Option<Arc<Message>> {
        let key = (server.clone(), AnswerKey::for_query(query)?);
        let now = self.now.get();
        if let Some(entry) = self.entries.borrow().get(&key) {
            if now < entry.expires_at {
                self.hits.set(self.hits.get() + 1);
                // Echo the query id like a resolver would; when it already
                // matches, the hit is a pointer bump.
                if entry.response.id == query.id {
                    return Some(Arc::clone(&entry.response));
                }
                let mut resp = (*entry.response).clone();
                resp.id = query.id;
                return Some(Arc::new(resp));
            }
        }
        self.misses.set(self.misses.get() + 1);
        let response = self.upstream.query(server, query)?;
        let ttl = Self::cache_ttl(&response);
        self.entries.borrow_mut().insert(
            key,
            Entry {
                expires_at: now.saturating_add(ttl),
                response: Arc::clone(&response),
            },
        );
        Some(response)
    }

    fn resolve_ns(&self, host: &Name) -> Option<ServerId> {
        self.upstream.resolve_ns(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sandbox::{build_sandbox, ZoneSpec};
    use ddx_dns::{name, RrType};

    const NOW: u32 = 1_000_000;

    #[test]
    fn second_query_is_served_from_cache() {
        let sb = build_sandbox(&[ZoneSpec::conventional(name("c.test"))], NOW, 41);
        let cache = CachingNetwork::new(&sb.testbed, NOW);
        let sid = sb.zones[0].servers[0].clone();
        let q = Message::query(1, name("www.c.test"), RrType::A);
        let r1 = cache.query(&sid, &q).unwrap();
        let q2 = Message::query(2, name("www.c.test"), RrType::A);
        let r2 = cache.query(&sid, &q2).unwrap();
        assert_eq!(r2.id, 2, "cached responses echo the query id");
        assert_eq!(r1.answers, r2.answers);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn stale_entries_expire_with_the_clock() {
        let sb = build_sandbox(&[ZoneSpec::conventional(name("c.test"))], NOW, 42);
        let cache = CachingNetwork::new(&sb.testbed, NOW);
        let sid = sb.zones[0].servers[0].clone();
        let q = Message::query(1, name("www.c.test"), RrType::A);
        cache.query(&sid, &q).unwrap();
        // www TTL is 300: at +299 cached, at +301 refetched.
        cache.set_now(NOW + 299);
        cache.query(&sid, &q).unwrap();
        assert_eq!(cache.stats(), (1, 1));
        cache.set_now(NOW + 301);
        cache.query(&sid, &q).unwrap();
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn flush_clears_everything() {
        let sb = build_sandbox(&[ZoneSpec::conventional(name("c.test"))], NOW, 43);
        let cache = CachingNetwork::new(&sb.testbed, NOW);
        let sid = sb.zones[0].servers[0].clone();
        let q = Message::query(1, name("www.c.test"), RrType::A);
        cache.query(&sid, &q).unwrap();
        cache.flush();
        cache.query(&sid, &q).unwrap();
        assert_eq!(cache.stats(), (0, 2));
    }
}
