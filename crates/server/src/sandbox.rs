//! Sandbox construction: builds a linear hierarchy of signed zones — e.g.
//! `a.com` → `par.a.com` → `inv-chd.par.a.com` (the layout ZReplicator uses,
//! paper §4.5) — each hosted on N authoritative servers, with DS records
//! installed in the parent and NS hostnames registered in the testbed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

use ddx_dns::{Name, RData, Record, RrType, Soa, Zone};
use ddx_dnssec::{
    make_ds, sign_zone, sign_zone_cached, Algorithm, DenialMode, DigestType, KeyPair, KeyRing,
    KeyRole, Nsec3Config, SigCache, SignError, SignerConfig,
};

use crate::server::{Server, ServerId};
use crate::testbed::Testbed;

/// Specification for one zone in the hierarchy.
#[derive(Debug, Clone)]
pub struct ZoneSpec {
    pub apex: Name,
    /// Number of authoritative servers (the paper's testbed uses two).
    pub server_count: usize,
    /// Keys to generate: (role, algorithm, bits).
    pub keys: Vec<(KeyRole, Algorithm, u16)>,
    /// NSEC3 parameters; `None` → NSEC.
    pub nsec3: Option<Nsec3Config>,
    /// Digest type(s) for the DS uploaded to the parent.
    pub ds_digests: Vec<DigestType>,
    /// Whether the parent publishes DS records at all.
    pub publish_ds: bool,
    /// Add a `*.<apex>` wildcard A record (exercises RFC 4035 §3.1.3.3
    /// wildcard expansion).
    pub wildcard: bool,
}

impl ZoneSpec {
    /// A conventional spec: 2 servers, ECDSA P-256 KSK+ZSK, NSEC, SHA-256 DS.
    pub fn conventional(apex: Name) -> Self {
        ZoneSpec {
            apex,
            server_count: 2,
            keys: vec![
                (KeyRole::Ksk, Algorithm::EcdsaP256Sha256, 256),
                (KeyRole::Zsk, Algorithm::EcdsaP256Sha256, 256),
            ],
            nsec3: None,
            ds_digests: vec![DigestType::Sha256],
            publish_ds: true,
            wildcard: false,
        }
    }
}

/// One built zone with its operator-side state.
pub struct SandboxZone {
    pub apex: Name,
    pub ring: KeyRing,
    pub signer_config: SignerConfig,
    pub servers: Vec<ServerId>,
    pub ns_hosts: Vec<Name>,
    pub spec: ZoneSpec,
}

/// A fully wired sandbox hierarchy.
pub struct Sandbox {
    pub testbed: Testbed,
    /// Zones anchor-first.
    pub zones: Vec<SandboxZone>,
    pub now: u32,
    /// RRSIG memo shared across every re-sign of every zone in this
    /// sandbox, so DFixer's per-iteration `SignZone` instructions only pay
    /// for signatures over RRsets that actually changed.
    pub sig_cache: SigCache,
}

impl Sandbox {
    /// The anchor zone (local root).
    pub fn anchor(&self) -> &SandboxZone {
        &self.zones[0]
    }

    /// The leaf (query) zone.
    pub fn leaf(&self) -> &SandboxZone {
        self.zones
            .last()
            .expect("build_sandbox asserts at least one ZoneSpec, so zones is never empty")
    }

    /// Zone lookup by apex.
    pub fn zone(&self, apex: &Name) -> Option<&SandboxZone> {
        self.zones.iter().find(|z| &z.apex == apex)
    }

    /// Mutable zone lookup by apex.
    pub fn zone_mut(&mut self, apex: &Name) -> Option<&mut SandboxZone> {
        self.zones.iter_mut().find(|z| &z.apex == apex)
    }

    /// Re-signs a zone on every server from its ring (the effect of running
    /// `dnssec-signzone` and reloading all secondaries).
    ///
    /// Sign-once fan-out: replicas whose pre-sign content is identical are
    /// signed once and receive clones of the signed result, instead of
    /// re-running the signer per server. Replicas that have diverged (e.g.
    /// ZReplicator injected an inconsistency on one server) are still signed
    /// independently so per-server differences survive the way they did
    /// under per-server signing — though the shared RRSIG cache still spares
    /// them recomputing signatures for the RRsets they agree on.
    pub fn resign_zone(&mut self, apex: &Name, now: u32) -> Result<(), SignError> {
        let (ring, cfg) = {
            let z = self
                .zone(apex)
                .expect("resign_zone precondition: apex names a zone in this sandbox");
            (z.ring.clone(), z.signer_config.clone())
        };
        let ids = self.testbed.servers_hosting(apex);
        // (pre-sign content, signed content, sign result) per distinct replica.
        let mut signed: Vec<(Zone, Zone, Result<(), SignError>)> = Vec::new();
        let mut result = Ok(());
        for id in &ids {
            let (post, res) = {
                let Some(current) = self.testbed.server(id).and_then(|s| s.zone(apex)) else {
                    continue;
                };
                if let Some((_, post, res)) = signed.iter().find(|(pre, _, _)| pre == current) {
                    (post.clone(), res.clone())
                } else {
                    let pre = current.clone();
                    let mut zone = pre.clone();
                    let res = sign_zone_cached(&mut zone, &ring, &cfg, now, &mut self.sig_cache);
                    signed.push((pre, zone.clone(), res.clone()));
                    (zone, res)
                }
            };
            if let Some(zone) = self.testbed.server_mut(id).and_then(|s| s.zone_mut(apex)) {
                *zone = post;
            }
            if res.is_err() {
                result = res;
            }
        }
        result
    }

    /// Replaces the DS RRset for `child` inside the parent zone and
    /// re-signs the parent (modeling a registrar DS update).
    pub fn set_ds(&mut self, child: &Name, ds_records: Vec<ddx_dns::Ds>, now: u32) {
        let parent_apex = self
            .zones
            .iter()
            .map(|z| z.apex.clone())
            .filter(|a| child.is_strict_subdomain_of(a))
            .max_by_key(|a| a.label_count());
        let Some(parent_apex) = parent_apex else {
            return;
        };
        self.testbed.mutate_zone_everywhere(&parent_apex, |zone| {
            zone.remove(child, RrType::Ds);
            for ds in &ds_records {
                zone.add(Record::new(child.clone(), 3600, RData::Ds(ds.clone())));
            }
        });
        let _ = self.resign_zone(&parent_apex, now);
    }

    /// One stamp over the whole sandbox: the testbed topology generation
    /// folded with every zone's content fingerprint. Equality means no
    /// server, mapping, or zone copy changed since the last reading — the
    /// precondition for reusing a diagnosis taken at the same clock.
    pub fn state_fingerprint(&self) -> u64 {
        use crate::testbed::{fnv1a, GenerationSource, FNV_OFFSET};
        let mut acc = fnv1a(
            FNV_OFFSET,
            &self.testbed.topology_generation().to_le_bytes(),
        );
        for z in &self.zones {
            acc = fnv1a(acc, z.apex.key().as_bytes());
            let fp = self.testbed.zone_fingerprint(&z.apex).unwrap_or(0);
            acc = fnv1a(acc, &fp.to_le_bytes());
        }
        acc
    }
}

/// Builds the hierarchy described by `specs` (anchor first, each subsequent
/// zone a strict subdomain of the previous). `seed` drives all key material.
pub fn build_sandbox(specs: &[ZoneSpec], now: u32, seed: u64) -> Sandbox {
    assert!(!specs.is_empty(), "sandbox needs at least one zone");
    let mut rng = StdRng::seed_from_u64(seed);

    // Generate rings and plain zones.
    let mut rings: Vec<KeyRing> = Vec::new();
    let mut plain: Vec<Zone> = Vec::new();
    let mut ns_hosts_all: Vec<Vec<Name>> = Vec::new();
    for spec in specs {
        let mut ring = KeyRing::new();
        for &(role, alg, bits) in &spec.keys {
            ring.add(KeyPair::generate(
                &mut rng,
                spec.apex.clone(),
                alg,
                bits,
                role,
                now,
            ));
        }
        rings.push(ring);

        let apex = spec.apex.clone();
        let mut zone = Zone::new(apex.clone());
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex
                    .child("ns1")
                    .expect("sandbox apexes are short fixed names"),
                rname: apex
                    .child("hostmaster")
                    .expect("sandbox apexes are short fixed names"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            }),
        ));
        let mut hosts = Vec::new();
        for i in 0..spec.server_count.max(1) {
            let host = apex
                .child(&format!("ns{}", i + 1))
                .expect("sandbox apexes are short fixed names");
            zone.add(Record::new(apex.clone(), 3600, RData::Ns(host.clone())));
            zone.add(Record::new(
                host.clone(),
                3600,
                RData::A(Ipv4Addr::new(192, 0, 2, (10 + i) as u8)),
            ));
            hosts.push(host);
        }
        zone.add(Record::new(
            apex.child("www")
                .expect("sandbox apexes are short fixed names"),
            300,
            RData::A(Ipv4Addr::new(198, 51, 100, 80)),
        ));
        zone.add(Record::new(
            apex.clone(),
            300,
            RData::Txt(vec!["ddx sandbox zone".into()]),
        ));
        if spec.wildcard {
            zone.add(Record::new(
                apex.child("*")
                    .expect("sandbox apexes are short fixed names"),
                300,
                RData::A(Ipv4Addr::new(198, 51, 100, 99)),
            ));
        }
        ns_hosts_all.push(hosts);
        plain.push(zone);
    }

    // Wire delegations parent → child (NS + glue).
    for i in 0..specs.len() - 1 {
        let child_apex = specs[i + 1].apex.clone();
        assert!(
            child_apex.is_strict_subdomain_of(&specs[i].apex),
            "{} must be under {}",
            child_apex,
            specs[i].apex
        );
        let child_hosts = ns_hosts_all[i + 1].clone();
        let parent = &mut plain[i];
        for (j, host) in child_hosts.iter().enumerate() {
            parent.add(Record::new(
                child_apex.clone(),
                3600,
                RData::Ns(host.clone()),
            ));
            parent.add(Record::new(
                host.clone(),
                3600,
                RData::A(Ipv4Addr::new(192, 0, 2, (50 + j) as u8)),
            ));
        }
    }

    // Sign leaf-first so DS records can flow upward.
    let mut signer_configs: Vec<SignerConfig> = specs
        .iter()
        .map(|s| match &s.nsec3 {
            Some(cfg) => SignerConfig::nsec3_at(now, cfg.clone()),
            None => SignerConfig::nsec_at(now),
        })
        .collect();
    for i in (0..specs.len()).rev() {
        // Install child DS before signing this zone.
        if i + 1 < specs.len() && specs[i + 1].publish_ds {
            let child_apex = specs[i + 1].apex.clone();
            let ksks = rings[i + 1].active(KeyRole::Ksk, now);
            let ds_source = ksks
                .first()
                .copied()
                .or_else(|| rings[i + 1].active(KeyRole::Zsk, now).first().copied());
            if let Some(key) = ds_source {
                for dt in &specs[i + 1].ds_digests {
                    let ds = make_ds(&child_apex, &key.dnskey, *dt);
                    plain[i].add(Record::new(child_apex.clone(), 3600, RData::Ds(ds)));
                }
            }
        }
        if rings[i].is_empty() {
            // Unsigned zone: leave as plain DNS.
            signer_configs[i].denial = DenialMode::Nsec;
            continue;
        }
        sign_zone(&mut plain[i], &rings[i], &signer_configs[i], now)
            .expect("freshly generated rings always contain a usable signing key");
    }

    // Deploy: one server per NS host, identical zone copies.
    let mut testbed = Testbed::new();
    let mut zones = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let mut server_ids = Vec::new();
        for (j, host) in ns_hosts_all[i].iter().enumerate() {
            let id = ServerId(format!("{}#{}", spec.apex, j));
            let mut server = Server::new(id.clone());
            server.load_zone(plain[i].clone());
            testbed.add_server(server);
            testbed.register_ns(host.clone(), id.clone());
            server_ids.push(id);
        }
        zones.push(SandboxZone {
            apex: spec.apex.clone(),
            ring: rings[i].clone(),
            signer_config: signer_configs[i].clone(),
            servers: server_ids,
            ns_hosts: ns_hosts_all[i].clone(),
            spec: spec.clone(),
        });
    }

    Sandbox {
        testbed,
        zones,
        now,
        sig_cache: SigCache::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Network;
    use ddx_dns::{name, Message};

    const NOW: u32 = 1_000_000;

    fn three_level() -> Sandbox {
        build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
                ZoneSpec::conventional(name("chd.par.a.com")),
            ],
            NOW,
            7,
        )
    }

    #[test]
    fn builds_three_levels_with_ds_chain() {
        let sb = three_level();
        assert_eq!(sb.zones.len(), 3);
        // Parent zones hold DS for children.
        let anchor_server = &sb.zones[0].servers[0];
        let q = Message::query(1, name("par.a.com"), RrType::Ds);
        let r = sb.testbed.query(anchor_server, &q).unwrap();
        assert!(r.find_answer(&name("par.a.com"), RrType::Ds).is_some());
        let mid_server = &sb.zones[1].servers[0];
        let q = Message::query(2, name("chd.par.a.com"), RrType::Ds);
        let r = sb.testbed.query(mid_server, &q).unwrap();
        assert!(r.find_answer(&name("chd.par.a.com"), RrType::Ds).is_some());
    }

    #[test]
    fn two_servers_per_zone() {
        let sb = three_level();
        for z in &sb.zones {
            assert_eq!(z.servers.len(), 2);
            for s in &z.servers {
                assert!(sb.testbed.server(s).is_some());
            }
        }
        // NS hosts resolve.
        assert!(sb.testbed.resolve_ns(&name("ns1.par.a.com")).is_some());
        assert!(sb.testbed.resolve_ns(&name("ns2.chd.par.a.com")).is_some());
    }

    #[test]
    fn nsec3_spec_builds_nsec3_zone() {
        let mut spec = ZoneSpec::conventional(name("a.com"));
        spec.nsec3 = Some(Nsec3Config::default());
        let sb = build_sandbox(&[spec], NOW, 3);
        let server = &sb.zones[0].servers[0];
        let q = Message::query(1, name("a.com"), RrType::Nsec3Param);
        let r = sb.testbed.query(server, &q).unwrap();
        assert!(r.find_answer(&name("a.com"), RrType::Nsec3Param).is_some());
    }

    #[test]
    fn no_ds_when_publish_disabled() {
        let mut child = ZoneSpec::conventional(name("par.a.com"));
        child.publish_ds = false;
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), child], NOW, 9);
        let anchor_server = &sb.zones[0].servers[0];
        let q = Message::query(1, name("par.a.com"), RrType::Ds);
        let r = sb.testbed.query(anchor_server, &q).unwrap();
        assert!(r.find_answer(&name("par.a.com"), RrType::Ds).is_none());
    }

    #[test]
    fn set_ds_replaces_and_resigns() {
        let mut sb = three_level();
        sb.set_ds(&name("par.a.com"), vec![], NOW);
        let anchor_server = sb.zones[0].servers[0].clone();
        let q = Message::query(1, name("par.a.com"), RrType::Ds);
        let r = sb.testbed.query(&anchor_server, &q).unwrap();
        assert!(r.find_answer(&name("par.a.com"), RrType::Ds).is_none());
        // And the parent SOA signature is still fresh/valid serial-wise.
        let q = Message::query(2, name("a.com"), RrType::Soa);
        let r = sb.testbed.query(&anchor_server, &q).unwrap();
        assert!(r.find_answer(&name("a.com"), RrType::Soa).is_some());
    }

    #[test]
    fn resign_zone_touches_all_servers() {
        let mut sb = three_level();
        let apex = name("chd.par.a.com");
        // Break one server copy, then resign everywhere.
        let id = sb.zones[2].servers[0].clone();
        sb.testbed
            .server_mut(&id)
            .unwrap()
            .zone_mut(&apex)
            .unwrap()
            .strip_type(RrType::Rrsig);
        sb.resign_zone(&apex, NOW + 10).unwrap();
        let copies: Vec<Zone> = sb
            .testbed
            .servers_hosting(&apex)
            .iter()
            .map(|sid| sb.testbed.server(sid).unwrap().zone(&apex).unwrap().clone())
            .collect();
        assert_eq!(copies.len(), 2);
        for z in &copies {
            assert!(z.rrsets().any(|s| s.rtype == RrType::Rrsig));
        }
        // Fan-out must leave every server with an identical signed copy:
        // both replicas held the same data modulo DNSSEC material, which a
        // full re-sign regenerates from scratch.
        assert_eq!(copies[0], copies[1], "server copies diverged after resign");
    }

    #[test]
    fn resign_preserves_per_server_divergence() {
        let mut sb = three_level();
        let apex = name("chd.par.a.com");
        // ZReplicator-style divergence: one server carries an extra record.
        let id = sb.zones[2].servers[0].clone();
        let extra = name("only-here.chd.par.a.com");
        sb.testbed
            .server_mut(&id)
            .unwrap()
            .zone_mut(&apex)
            .unwrap()
            .add(Record::new(
                extra.clone(),
                300,
                RData::A(Ipv4Addr::new(203, 0, 113, 1)),
            ));
        sb.resign_zone(&apex, NOW + 10).unwrap();
        let other = sb.zones[2].servers[1].clone();
        let z0 = sb.testbed.server(&id).unwrap().zone(&apex).unwrap();
        let z1 = sb.testbed.server(&other).unwrap().zone(&apex).unwrap();
        assert!(
            z0.get(&extra, RrType::A).is_some(),
            "divergent record survives resign"
        );
        assert!(
            z1.get(&extra, RrType::A).is_none(),
            "divergence must not fan out"
        );
        assert_ne!(z0, z1);
    }

    #[test]
    fn state_fingerprint_tracks_any_mutation() {
        let mut sb = three_level();
        let fp0 = sb.state_fingerprint();
        assert_eq!(sb.state_fingerprint(), fp0, "stable when idle");
        sb.set_ds(&name("chd.par.a.com"), vec![], NOW);
        let fp1 = sb.state_fingerprint();
        assert_ne!(fp0, fp1, "DS change must move the fingerprint");
        sb.resign_zone(&name("chd.par.a.com"), NOW + 5).unwrap();
        assert_ne!(sb.state_fingerprint(), fp1, "resign must move it");
    }

    #[test]
    fn sig_cache_hits_across_resigns() {
        let mut sb = three_level();
        let apex = name("chd.par.a.com");
        sb.resign_zone(&apex, NOW + 10).unwrap();
        let after_first = sb.sig_cache.stats();
        assert!(after_first.misses > 0, "cold pass populates the cache");
        // Same signer window, unchanged data (bar the serial bump): the
        // second pass should reuse almost every signature.
        sb.resign_zone(&apex, NOW + 20).unwrap();
        let after_second = sb.sig_cache.stats();
        assert!(
            after_second.hits > after_first.hits,
            "warm pass must hit the cache: {after_second:?}"
        );
    }
}
