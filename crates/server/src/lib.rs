//! # ddx-server — in-memory authoritative DNS server testbed
//!
//! Models the paper's evaluation substrate: per-zone authoritative servers
//! (two per zone, possibly with divergent copies), a query engine with
//! DNSSEC-aware positive, referral, and negative responses, an in-process
//! [`testbed::Network`], and a real loopback UDP transport speaking
//! RFC 1035 wire format.

pub mod answer;
pub mod batch;
pub mod cache;
pub mod fault;
pub mod index;
pub mod ratelimit;
pub mod rollover;
pub mod sandbox;
pub mod server;
pub mod testbed;
pub mod udp;

pub use answer::{AnswerKey, AnswerMemo, ShardStats};
pub use batch::{
    bind_worker_socket, mmsg_supported, reuseport_supported, BatchMode, BatchSocket, RecvBatch,
    SendItem, SendQueue,
};
pub use cache::CachingNetwork;
pub use fault::{FaultNetwork, FaultPlan, FaultStats, FlapSchedule};
pub use index::ZoneIndex;
pub use ratelimit::{RateLimitConfig, RateLimiter};
pub use rollover::{botched_ksk_rollover, Rollover, RolloverKind, RolloverStep};
pub use sandbox::{build_sandbox, Sandbox, SandboxZone, ZoneSpec};
pub use server::{Server, ServerBehavior, ServerId};
pub use testbed::{GenerationSource, Network, QueryOutcome, Testbed, UncachedNetwork};
pub use udp::{TransportConfig, UdpNetwork, UdpServerHandle};
