//! The longitudinal analysis pipeline (paper §3): every table and figure of
//! the measurement section, computed from corpus snapshots alone — the same
//! derivations the paper runs over the real DNSViz logs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ddx_dnsviz::{SnapshotStatus, Subcategory};

use crate::corpus::{Corpus, DomainRecord, Level};

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

fn percentile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((values.len() as f64 - 1.0) * p).round() as usize;
    values[idx]
}

// ------------------------------------------------------------- Table 1

/// Dataset overview (paper Table 1).
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub level: &'static str,
    pub snapshots: u64,
    pub domains: u64,
    pub multi: u64,
    pub cd: u64,
    pub sd: u64,
}

pub fn table1(corpus: &Corpus) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for (level, label) in [
        (Level::Root, "Root"),
        (Level::Tld, "TLD"),
        (Level::SldPlus, "SLD+"),
    ] {
        let domains: Vec<&DomainRecord> =
            corpus.domains.iter().filter(|d| d.level == level).collect();
        rows.push(Table1Row {
            level: label,
            snapshots: domains.iter().map(|d| d.snapshots.len() as u64).sum(),
            domains: domains.len() as u64,
            multi: domains.iter().filter(|d| d.snapshots.len() >= 2).count() as u64,
            cd: domains.iter().filter(|d| d.is_cd()).count() as u64,
            sd: domains.iter().filter(|d| d.is_sd()).count() as u64,
        });
    }
    rows
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} snapshots={:<9} domains={:<8} multi={:<7} CD={:<7} SD={}",
            self.level, self.snapshots, self.domains, self.multi, self.cd, self.sd
        )
    }
}

// ------------------------------------------------------------- Figure 2

/// First→last status transitions for CD domains (paper Fig 2).
#[derive(Debug, Clone, Default)]
pub struct FirstLast {
    /// (first, last) → count.
    pub counts: BTreeMap<(SnapshotStatus, SnapshotStatus), u64>,
}

impl FirstLast {
    pub fn total_from(&self, first: SnapshotStatus) -> u64 {
        self.counts
            .iter()
            .filter(|((f, _), _)| *f == first)
            .map(|(_, c)| c)
            .sum()
    }

    /// Share of sb-starting domains that ended valid (sv or svm) — the
    /// paper's "positive trajectory" (67%).
    pub fn sb_recovered_share(&self) -> f64 {
        let total = self.total_from(SnapshotStatus::Sb) as f64;
        let good = self
            .counts
            .get(&(SnapshotStatus::Sb, SnapshotStatus::Sv))
            .copied()
            .unwrap_or(0)
            + self
                .counts
                .get(&(SnapshotStatus::Sb, SnapshotStatus::Svm))
                .copied()
                .unwrap_or(0);
        good as f64 / total.max(1.0)
    }

    /// Share of is-starting domains that enabled DNSSEC (62% in the paper).
    pub fn newly_signed_share(&self) -> f64 {
        let total = self.total_from(SnapshotStatus::Is) as f64;
        let signed: u64 = [SnapshotStatus::Sv, SnapshotStatus::Svm, SnapshotStatus::Sb]
            .iter()
            .filter_map(|&last| self.counts.get(&(SnapshotStatus::Is, last)))
            .sum();
        signed as f64 / total.max(1.0)
    }
}

pub fn first_last(corpus: &Corpus) -> FirstLast {
    let mut out = FirstLast::default();
    for d in corpus.sld_domains().filter(|d| d.is_cd()) {
        let first = d.snapshots.first().expect("non-empty").status;
        let last = d.snapshots.last().expect("non-empty").status;
        *out.counts.entry((first, last)).or_default() += 1;
    }
    out
}

// ------------------------------------------------------------- Table 2

/// Causes of negative transitions (paper Table 2).
#[derive(Debug, Clone, Default)]
pub struct CauseBreakdown {
    pub total: u64,
    pub ns_update: u64,
    pub key_rollover: u64,
    pub algo_rollover: u64,
}

impl CauseBreakdown {
    pub fn attributed_share(&self) -> f64 {
        (self.ns_update + self.key_rollover + self.algo_rollover) as f64
            / (self.total as f64).max(1.0)
    }
}

#[derive(Debug, Clone, Default)]
pub struct NegativeTransitions {
    pub sv_to_sb: CauseBreakdown,
    pub sv_to_is: CauseBreakdown,
}

pub fn negative_transitions(corpus: &Corpus) -> NegativeTransitions {
    let mut out = NegativeTransitions::default();
    for d in corpus.sld_domains() {
        for w in d.snapshots.windows(2) {
            if w[0].status != SnapshotStatus::Sv {
                continue;
            }
            let breakdown = match w[1].status {
                SnapshotStatus::Sb => &mut out.sv_to_sb,
                SnapshotStatus::Is => &mut out.sv_to_is,
                _ => continue,
            };
            breakdown.total += 1;
            if w[1].ns_set != w[0].ns_set {
                breakdown.ns_update += 1;
            } else if w[1].algorithms != w[0].algorithms {
                breakdown.algo_rollover += 1;
            } else if w[1].key_set != w[0].key_set {
                breakdown.key_rollover += 1;
            }
        }
    }
    out
}

// ------------------------------------------------------------- Table 3

/// One prevalence row (paper Table 3).
#[derive(Debug, Clone)]
pub struct PrevalenceRow {
    pub subcategory: Subcategory,
    pub snapshots: u64,
    pub snapshot_pct: f64,
    pub domains: u64,
    pub domain_pct: f64,
}

#[derive(Debug, Clone)]
pub struct Prevalence {
    pub rows: Vec<PrevalenceRow>,
    pub total_snapshots: u64,
    pub total_domains: u64,
    pub erroneous_snapshots: u64,
    pub erroneous_domains: u64,
}

pub fn prevalence(corpus: &Corpus) -> Prevalence {
    let mut snap_counts: BTreeMap<Subcategory, u64> = BTreeMap::new();
    let mut dom_counts: BTreeMap<Subcategory, BTreeSet<u64>> = BTreeMap::new();
    let mut total_snapshots = 0u64;
    let mut erroneous_snapshots = 0u64;
    let mut erroneous_domains: BTreeSet<u64> = BTreeSet::new();
    let total_domains = corpus.sld_domains().count() as u64;
    for d in corpus.sld_domains() {
        for s in &d.snapshots {
            total_snapshots += 1;
            if !s.errors.is_empty() {
                erroneous_snapshots += 1;
                erroneous_domains.insert(d.id);
            }
            for sub in s.subcategories() {
                *snap_counts.entry(sub).or_default() += 1;
                dom_counts.entry(sub).or_default().insert(d.id);
            }
        }
    }
    let rows = Subcategory::ALL
        .iter()
        .map(|&sub| {
            let snapshots = snap_counts.get(&sub).copied().unwrap_or(0);
            let domains = dom_counts.get(&sub).map(|s| s.len() as u64).unwrap_or(0);
            PrevalenceRow {
                subcategory: sub,
                snapshots,
                snapshot_pct: 100.0 * snapshots as f64 / total_snapshots.max(1) as f64,
                domains,
                domain_pct: 100.0 * domains as f64 / total_domains.max(1) as f64,
            }
        })
        .collect();
    Prevalence {
        rows,
        total_snapshots,
        total_domains,
        erroneous_snapshots,
        erroneous_domains: erroneous_domains.len() as u64,
    }
}

/// Figure 3: share of snapshots per parent error category.
pub fn category_shares(prev: &Prevalence) -> Vec<(ddx_dnsviz::Category, f64)> {
    let mut by_cat: BTreeMap<ddx_dnsviz::Category, u64> = BTreeMap::new();
    for row in &prev.rows {
        *by_cat.entry(row.subcategory.category()).or_default() += row.snapshots;
    }
    ddx_dnsviz::Category::ALL
        .iter()
        .map(|&c| {
            (
                c,
                100.0 * by_cat.get(&c).copied().unwrap_or(0) as f64
                    / prev.total_snapshots.max(1) as f64,
            )
        })
        .collect()
}

// ------------------------------------------------------------- Table 4

/// Transition adjacency matrix with median times (paper Table 4).
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    /// Indexed sv, svm, sb, is.
    pub counts: [[u64; 4]; 4],
    pub median_hours: [[f64; 4]; 4],
}

pub const MATRIX_STATES: [SnapshotStatus; 4] = [
    SnapshotStatus::Sv,
    SnapshotStatus::Svm,
    SnapshotStatus::Sb,
    SnapshotStatus::Is,
];

pub fn transitions(corpus: &Corpus) -> TransitionMatrix {
    let mut counts = [[0u64; 4]; 4];
    let mut gaps: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 4]; 4];
    let idx = |s: SnapshotStatus| MATRIX_STATES.iter().position(|&x| x == s);
    for d in corpus.sld_domains().filter(|d| d.is_cd()) {
        for w in d.snapshots.windows(2) {
            let (Some(i), Some(j)) = (idx(w[0].status), idx(w[1].status)) else {
                continue;
            };
            if i == j {
                continue;
            }
            counts[i][j] += 1;
            gaps[i][j].push(w[1].t_hours - w[0].t_hours);
        }
    }
    let mut median_hours = [[0.0; 4]; 4];
    for (i, row) in gaps.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            median_hours[i][j] = median(cell);
        }
    }
    TransitionMatrix {
        counts,
        median_hours,
    }
}

// ------------------------------------------------------------- Figure 4

/// Resolution-time distribution for one marked subcategory.
#[derive(Debug, Clone)]
pub struct ResolutionRow {
    pub marker: u8,
    pub subcategory: Subcategory,
    /// True when instances started from sb (SERVFAIL-level).
    pub critical: bool,
    pub instances: u64,
    pub p20_hours: f64,
    pub p50_hours: f64,
    pub p80_hours: f64,
}

#[derive(Debug, Clone)]
pub struct ResolutionTimes {
    pub rows: Vec<ResolutionRow>,
    /// Median hours from first insecure snapshot to first signed snapshot
    /// (Fig 4's black "deploy DNSSEC" box).
    pub deploy_median_hours: f64,
    pub deploy_instances: u64,
}

pub fn resolution_times(corpus: &Corpus) -> ResolutionTimes {
    // Duration samples per (subcategory, critical).
    let mut samples: BTreeMap<(Subcategory, bool), Vec<f64>> = BTreeMap::new();
    let mut deploy: Vec<f64> = Vec::new();
    for d in corpus.sld_domains() {
        let mut open: BTreeMap<Subcategory, (f64, bool)> = BTreeMap::new();
        let mut insecure_since: Option<f64> = None;
        for s in &d.snapshots {
            let subs = s.subcategories();
            for &sub in subs.iter() {
                open.entry(sub)
                    .or_insert((s.t_hours, s.status == SnapshotStatus::Sb));
            }
            if s.status == SnapshotStatus::Sv {
                // Domain fully valid: every open error episode resolves.
                for (sub, (t1, critical)) in std::mem::take(&mut open) {
                    samples
                        .entry((sub, critical))
                        .or_default()
                        .push(s.t_hours - t1);
                }
            }
            match s.status {
                SnapshotStatus::Is => {
                    insecure_since.get_or_insert(s.t_hours);
                }
                SnapshotStatus::Sv | SnapshotStatus::Svm | SnapshotStatus::Sb => {
                    if let Some(t0) = insecure_since.take() {
                        deploy.push(s.t_hours - t0);
                    }
                }
                _ => {}
            }
        }
    }
    let mut rows = Vec::new();
    for sub in Subcategory::ALL {
        let Some(marker) = sub.marker() else { continue };
        for critical in [true, false] {
            if let Some(mut v) = samples.remove(&(sub, critical)) {
                if v.is_empty() {
                    continue;
                }
                rows.push(ResolutionRow {
                    marker,
                    subcategory: sub,
                    critical,
                    instances: v.len() as u64,
                    p20_hours: percentile(&mut v, 0.2),
                    p50_hours: percentile(&mut v, 0.5),
                    p80_hours: percentile(&mut v, 0.8),
                });
            }
        }
    }
    rows.sort_by_key(|r| (r.marker, !r.critical));
    ResolutionTimes {
        rows,
        deploy_median_hours: median(&mut deploy),
        deploy_instances: deploy.len() as u64,
    }
}

// ------------------------------------------------------------- Figure 5

/// CDF of per-domain median inter-snapshot gaps (paper Fig 5).
#[derive(Debug, Clone)]
pub struct GapCdf {
    /// Sorted per-domain median gaps, hours.
    pub medians: Vec<f64>,
    pub share_under_day: f64,
}

impl GapCdf {
    /// CDF evaluated at `hours`.
    pub fn cdf(&self, hours: f64) -> f64 {
        if self.medians.is_empty() {
            return 0.0;
        }
        let below = self.medians.iter().filter(|&&m| m <= hours).count();
        below as f64 / self.medians.len() as f64
    }
}

pub fn gap_cdf(corpus: &Corpus) -> GapCdf {
    let mut medians = Vec::new();
    for d in corpus.sld_domains().filter(|d| d.snapshots.len() >= 2) {
        let mut gaps: Vec<f64> = d
            .snapshots
            .windows(2)
            .map(|w| w[1].t_hours - w[0].t_hours)
            .collect();
        medians.push(median(&mut gaps));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let under = medians.iter().filter(|&&m| m < 24.0).count();
    let share_under_day = under as f64 / (medians.len() as f64).max(1.0);
    GapCdf {
        medians,
        share_under_day,
    }
}

// ------------------------------------------------------------- Table 5

/// Never-resolved shares per state (paper Table 5).
#[derive(Debug, Clone)]
pub struct UnresolvedRow {
    pub state: SnapshotStatus,
    pub domains: u64,
    pub unresolved: u64,
}

impl UnresolvedRow {
    pub fn share(&self) -> f64 {
        self.unresolved as f64 / (self.domains as f64).max(1.0)
    }
}

pub fn unresolved(corpus: &Corpus) -> Vec<UnresolvedRow> {
    let mut rows = Vec::new();
    for state in [SnapshotStatus::Sb, SnapshotStatus::Svm, SnapshotStatus::Is] {
        let mut domains = 0u64;
        let mut never = 0u64;
        // Resolution is only observable with at least two snapshots; the
        // paper's Table 5 universe is the multi-snapshot population.
        for d in corpus.sld_domains().filter(|d| d.snapshots.len() >= 2) {
            if d.snapshots.iter().any(|s| s.status == state) {
                domains += 1;
                let last = d.snapshots.last().expect("non-empty");
                if last.status == state {
                    never += 1;
                }
            }
        }
        rows.push(UnresolvedRow {
            state,
            domains,
            unresolved: never,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            scale: 0.02,
            seed: 99,
        })
    }

    #[test]
    fn table1_shape() {
        let c = corpus();
        let rows = table1(&c);
        assert_eq!(rows.len(), 3);
        let sld = &rows[2];
        assert_eq!(sld.level, "SLD+");
        assert_eq!(sld.cd + sld.sd, sld.multi);
        assert!(sld.snapshots > sld.domains);
        let cd_share = sld.cd as f64 / (sld.cd + sld.sd) as f64;
        assert!((0.15..0.40).contains(&cd_share), "{cd_share}");
    }

    #[test]
    fn fig2_positive_trajectory() {
        let c = corpus();
        let fl = first_last(&c);
        let sb = fl.sb_recovered_share();
        assert!((0.4..0.9).contains(&sb), "sb recovered {sb}");
        let is = fl.newly_signed_share();
        assert!((0.35..0.9).contains(&is), "newly signed {is}");
    }

    #[test]
    fn table2_causes_attributed() {
        let c = corpus();
        let nt = negative_transitions(&c);
        assert!(nt.sv_to_sb.total > 0);
        let share = nt.sv_to_sb.attributed_share();
        assert!((0.55..0.98).contains(&share), "attributed {share}");
        assert!(nt.sv_to_sb.key_rollover >= nt.sv_to_sb.ns_update);
    }

    #[test]
    fn table3_nzic_top() {
        let c = corpus();
        let prev = prevalence(&c);
        let nzic = prev
            .rows
            .iter()
            .find(|r| r.subcategory == Subcategory::NonzeroIterationCount)
            .unwrap();
        for r in &prev.rows {
            assert!(r.snapshots <= nzic.snapshots, "{} > NZIC", r.subcategory);
        }
        assert!(
            (15.0..45.0).contains(&nzic.snapshot_pct),
            "{}",
            nzic.snapshot_pct
        );
        let share = prev.erroneous_snapshots as f64 / prev.total_snapshots as f64;
        assert!((0.28..0.52).contains(&share), "{share}");
    }

    #[test]
    fn fig3_nsec3_only_leads() {
        let c = corpus();
        let prev = prevalence(&c);
        let shares = category_shares(&prev);
        let n3 = shares
            .iter()
            .find(|(c, _)| *c == ddx_dnsviz::Category::Nsec3Only)
            .unwrap()
            .1;
        for (cat, s) in &shares {
            if *cat != ddx_dnsviz::Category::Nsec3Only {
                assert!(*s <= n3, "{cat} {s} > {n3}");
            }
        }
    }

    #[test]
    fn table4_sb_to_sv_fast() {
        let c = corpus();
        let tm = transitions(&c);
        let fix = tm.median_hours[2][0];
        let brk = tm.median_hours[0][2];
        assert!(fix.is_finite() && brk.is_finite());
        assert!(fix < brk, "fix {fix} !< break {brk}");
        assert!(tm.counts[2][0] > 0);
    }

    #[test]
    fn fig4_noncritical_slower() {
        let c = corpus();
        let rt = resolution_times(&c);
        assert!(!rt.rows.is_empty());
        let nzic = rt.rows.iter().find(|r| r.marker == 9 && !r.critical);
        let deleg = rt.rows.iter().find(|r| r.marker == 5 && r.critical);
        if let (Some(nzic), Some(deleg)) = (nzic, deleg) {
            assert!(
                nzic.p50_hours > deleg.p50_hours,
                "NZIC p50 {} !> delegation p50 {}",
                nzic.p50_hours,
                deleg.p50_hours
            );
        }
        assert!(rt.deploy_median_hours > 0.0);
        assert!(rt.deploy_instances > 0);
    }

    #[test]
    fn fig5_share_under_day() {
        let c = corpus();
        let cdf = gap_cdf(&c);
        assert!(
            (0.3..0.9).contains(&cdf.share_under_day),
            "{}",
            cdf.share_under_day
        );
        assert!(cdf.cdf(f64::MAX) > 0.99);
        assert!(cdf.cdf(0.0) <= cdf.cdf(1000.0));
    }

    #[test]
    fn table5_shapes() {
        let c = corpus();
        let rows = unresolved(&c);
        assert_eq!(rows.len(), 3);
        let sb = &rows[0];
        let svm = &rows[1];
        assert!(sb.domains > 0 && svm.domains > 0);
        assert!(
            svm.share() > sb.share(),
            "svm {} !> sb {}",
            svm.share(),
            sb.share()
        );
    }
}
