//! Figure 1's popularity analysis: coverage of Tranco-ranked domains in the
//! DNSViz dataset, overall / among ever-signed domains / misconfiguration
//! share, per 100K rank bin. The Tranco list itself is an external
//! artifact; we model a ranked universe with rank-dependent inclusion and
//! signing propensities matching the paper's reading of Fig 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Tranco rank bin (100K domains at full scale).
#[derive(Debug, Clone)]
pub struct TrancoBin {
    /// Bin index: 0 = ranks 1-100K … 9 = ranks 900K-1M.
    pub bin: usize,
    pub domains: u64,
    /// Domains appearing in the DNSViz dataset.
    pub in_dataset: u64,
    /// Domains that were ever DNSSEC-signed.
    pub ever_signed: u64,
    /// Ever-signed domains appearing in the dataset.
    pub signed_in_dataset: u64,
    /// Dataset domains that were ever misconfigured (sb/svm).
    pub misconfigured: u64,
}

impl TrancoBin {
    /// Fig 1 bottom line: share of the bin present in DNSViz.
    pub fn dataset_share(&self) -> f64 {
        self.in_dataset as f64 / self.domains.max(1) as f64
    }

    /// Fig 1 middle line: share of ever-signed domains present in DNSViz.
    pub fn signed_dataset_share(&self) -> f64 {
        self.signed_in_dataset as f64 / self.ever_signed.max(1) as f64
    }

    /// Fig 1 top panel: misconfigured share among dataset domains.
    pub fn misconfigured_share(&self) -> f64 {
        self.misconfigured as f64 / self.in_dataset.max(1) as f64
    }
}

/// Generates the ten Fig 1 bins at `scale` (1.0 → 1M domains).
pub fn tranco_bins(scale: f64, seed: u64) -> Vec<TrancoBin> {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_bin = ((100_000.0 * scale).round() as u64).max(100);
    (0..10)
        .map(|bin| {
            let i = bin as f64;
            // Calibration to the paper's observations: ~20% of the top bin
            // is in the dataset, falling with rank; >30% of ever-signed
            // domains appear in every bin; misconfiguration is less common
            // among popular domains.
            let p_in = 0.20 - 0.0145 * i;
            let p_signed = 0.085 - 0.002 * i;
            let p_signed_in = 0.46 - 0.013 * i;
            let p_misconf = 0.22 + 0.022 * i;
            let mut in_dataset = 0;
            let mut ever_signed = 0;
            let mut signed_in_dataset = 0;
            let mut misconfigured = 0;
            for _ in 0..per_bin {
                let signed = rng.gen_bool(p_signed);
                if signed {
                    ever_signed += 1;
                }
                let included = if signed {
                    rng.gen_bool(p_signed_in)
                } else {
                    rng.gen_bool(p_in * 0.92)
                };
                if included {
                    in_dataset += 1;
                    if signed {
                        signed_in_dataset += 1;
                        if rng.gen_bool(p_misconf) {
                            misconfigured += 1;
                        }
                    }
                }
            }
            TrancoBin {
                bin,
                domains: per_bin,
                in_dataset,
                ever_signed,
                signed_in_dataset,
                misconfigured,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_bins_generated() {
        let bins = tranco_bins(0.05, 1);
        assert_eq!(bins.len(), 10);
        for b in &bins {
            assert_eq!(b.domains, 5_000);
            assert!(b.in_dataset <= b.domains);
            assert!(b.signed_in_dataset <= b.ever_signed);
            assert!(b.misconfigured <= b.in_dataset);
        }
    }

    #[test]
    fn top_bin_best_covered() {
        let bins = tranco_bins(0.1, 2);
        // ~20% in the top bin, decreasing with rank.
        assert!((0.15..0.25).contains(&bins[0].dataset_share()));
        assert!(bins[0].dataset_share() > bins[9].dataset_share());
    }

    #[test]
    fn signed_domains_visible_across_spectrum() {
        let bins = tranco_bins(0.1, 3);
        for b in &bins {
            assert!(
                b.signed_dataset_share() > 0.30,
                "bin {} signed share {}",
                b.bin,
                b.signed_dataset_share()
            );
        }
    }

    #[test]
    fn misconfiguration_rarer_among_popular() {
        let bins = tranco_bins(0.1, 4);
        assert!(bins[0].misconfigured_share() < bins[9].misconfigured_share());
    }

    #[test]
    fn deterministic() {
        let a = tranco_bins(0.05, 9);
        let b = tranco_bins(0.05, 9);
        assert_eq!(a[3].in_dataset, b[3].in_dataset);
    }
}
