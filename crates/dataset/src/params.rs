//! Calibration constants for the synthetic DNSViz-log corpus, taken from
//! the paper's published tables (see DESIGN.md §4: the raw DNS-OARC logs
//! are access-restricted; we reproduce their marginal distributions and run
//! the identical analysis pipeline over the synthetic corpus).

use ddx_dnsviz::Subcategory;

/// Paper Table 1 — dataset composition (SLD+ rows; Root/TLD kept for the
/// overview table).
pub mod table1 {
    pub const ROOT_SNAPSHOTS: u64 = 6_234;
    pub const TLD_SNAPSHOTS: u64 = 356_136;
    pub const SLD_SNAPSHOTS: u64 = 747_455;
    pub const ROOT_DOMAINS: u64 = 1;
    pub const TLD_DOMAINS: u64 = 4_196;
    pub const SLD_DOMAINS: u64 = 319_277;
    pub const TLD_MULTI: u64 = 2_349;
    pub const SLD_MULTI: u64 = 84_962;
    pub const TLD_CD: u64 = 642;
    pub const SLD_CD: u64 = 21_734;
    pub const TLD_SD: u64 = 1_707;
    pub const SLD_SD: u64 = 63_228;
}

/// Observation window: 2020-03-11 → 2024-09-25 ≈ 39,744 hours.
pub const WINDOW_HOURS: f64 = 39_744.0;

/// Paper Table 3 — snapshot counts per subcategory (SLD+). The two cells
/// the published table leaves blank (Original TTL, Unsupported NSEC3
/// Algorithm) are estimated from their domain shares.
pub fn subcategory_snapshots(sub: Subcategory) -> u64 {
    use Subcategory::*;
    match sub {
        MissingKskForAlgorithm => 63_004,
        InvalidDigest => 1_103,
        InconsistentDnskey => 19_330,
        RevokedKey => 302,
        BadKeyLength => 108,
        IncompleteAlgorithmSetup => 6_859,
        MissingSignature => 38_662,
        ExpiredSignature => 11_670,
        InvalidSignature => 10_336,
        IncorrectSigner => 1_961,
        NotYetValidSignature => 663,
        IncorrectSignatureLabels => 99,
        BadSignatureLength => 42,
        OriginalTtlExceedsRrsetTtl => 4_485, // est. (0.6% of snapshots)
        TtlBeyondExpiration => 2_556,
        MissingNonexistenceProof => 65_378,
        IncorrectTypeBitmap => 18_218,
        BadNonexistenceProof => 9_678,
        IncorrectLastNsec => 405,
        NonzeroIterationCount => 215_036,
        InconsistentAncestorForNxdomain => 2_296,
        IncorrectClosestEncloserProof => 1_278,
        InvalidNsec3Hash => 456,
        InvalidNsec3OwnerName => 301,
        IncorrectOptOutFlag => 186,
        UnsupportedNsec3Algorithm => 24, // est. (11 domains)
        // Extension beyond Table 3 (validation budgets postdate the paper's
        // dataset); absent from `Subcategory::ALL`, so it never contributes
        // to the reproduced marginals.
        ExcessiveValidationWork => 0,
    }
}

/// Table 3 last row: snapshots with at least one DNSSEC error.
pub const ERROR_SNAPSHOTS: u64 = 296_813;
/// …and the NZIC-only subset S1 (paper Table 6).
pub const NZIC_ONLY_SNAPSHOTS: u64 = 168_482;

/// Paper Table 4 — transition counts between consecutive snapshots in the
/// CD set: `TRANSITIONS[from][to]`, order sv, svm, sb, is. Diagonals 0.
pub const TRANSITION_COUNTS: [[u64; 4]; 4] = [
    [0, 1_310, 4_064, 804],
    [3_132, 0, 5_573, 1_486],
    [8_052, 8_065, 0, 3_922],
    [2_150, 2_097, 2_001, 0],
];

/// Paper Table 4 — median transition times in hours, same indexing.
pub const TRANSITION_MEDIAN_HOURS: [[f64; 4]; 4] = [
    [0.0, 34.2, 133.7, 58.6],
    [73.4, 0.0, 104.2, 71.8],
    [0.7, 0.87, 0.0, 1.6],
    [2.7, 3.3, 1.8, 0.0],
];

/// Paper Table 2 — causes of sv→sb transitions.
pub mod table2 {
    pub const SV_SB_TOTAL: u64 = 4_064;
    pub const SV_SB_NS: f64 = 0.067;
    pub const SV_SB_KEY: f64 = 0.452;
    pub const SV_SB_ALGO: f64 = 0.303;
    pub const SV_IS_TOTAL: u64 = 804;
    pub const SV_IS_NS: f64 = 0.07;
    pub const SV_IS_KEY: f64 = 0.30;
    pub const SV_IS_ALGO: f64 = 0.18;
}

/// Paper Table 5 — never-resolved shares per state.
pub mod table5 {
    pub const SB_DOMAINS: u64 = 15_209;
    pub const SB_UNRESOLVED: f64 = 0.18;
    pub const SVM_DOMAINS: u64 = 9_052;
    pub const SVM_UNRESOLVED: f64 = 0.619;
    pub const IS_DOMAINS: u64 = 7_149;
    pub const IS_UNRESOLVED: f64 = 0.365;
}

/// Fig 5: share of domains whose median inter-snapshot gap is < 1 day.
pub const MEDIAN_GAP_UNDER_DAY: f64 = 0.65;

/// Fraction of erroneous snapshots containing at least one error that
/// cannot be replicated locally (paper §5.5.1: "only 2% snapshots have
/// these errors").
pub const UNREPLICABLE_SNAPSHOT_SHARE: f64 = 0.02;

/// Share of metas using NSEC3 (vs NSEC); NSEC3 dominates the error set
/// because of NZIC.
pub const NSEC3_META_SHARE: f64 = 0.55;

/// Share of metas carrying a deprecated (substitutable) algorithm, and the
/// share of those that exhaust all substitutes (paper: "a small fraction").
pub const DEPRECATED_ALGO_SHARE: f64 = 0.03;
pub const ALGO_EXHAUSTED_SHARE: f64 = 0.002;

/// Fig 4 resolution-time calibration: 80th-percentile days for the marked
/// subcategories (critical ①③④⑤⑥ vs non-critical ⑧⑨ per §3.6).
pub fn resolution_p80_days(sub: Subcategory) -> f64 {
    use Subcategory::*;
    match sub {
        InvalidDigest | MissingKskForAlgorithm => 2.5,
        InconsistentDnskey => 4.0,
        ExpiredSignature | InvalidSignature => 10.0,
        IncompleteAlgorithmSetup => 7.0,
        MissingNonexistenceProof => 5.0,
        OriginalTtlExceedsRrsetTtl => 60.0,
        NonzeroIterationCount => 250.0,
        _ => 14.0,
    }
}

/// Median days to first enable DNSSEC (Fig 4's black box: "more than a
/// day").
pub const DEPLOY_MEDIAN_DAYS: f64 = 1.4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcategory_weights_sum_plausibly() {
        let total: u64 = Subcategory::ALL
            .iter()
            .map(|s| subcategory_snapshots(*s))
            .sum();
        // Error mentions exceed erroneous snapshots (multi-error snapshots),
        // as in the paper's Table 3.
        assert!(total > ERROR_SNAPSHOTS);
        assert!(total < 2 * ERROR_SNAPSHOTS);
    }

    #[test]
    fn nzic_dominates() {
        let nzic = subcategory_snapshots(Subcategory::NonzeroIterationCount);
        for s in Subcategory::ALL {
            assert!(subcategory_snapshots(s) <= nzic);
        }
        assert!(NZIC_ONLY_SNAPSHOTS < nzic);
    }

    #[test]
    fn transition_matrix_diagonal_empty() {
        for i in 0..4 {
            assert_eq!(TRANSITION_COUNTS[i][i], 0);
            assert_eq!(TRANSITION_MEDIAN_HOURS[i][i], 0.0);
        }
    }

    #[test]
    fn table1_consistency() {
        assert_eq!(table1::SLD_CD + table1::SLD_SD, table1::SLD_MULTI);
        assert_eq!(table1::TLD_CD + table1::TLD_SD, table1::TLD_MULTI);
        // Constant relations checked at compile time.
        const _: () = assert!(table1::SLD_SNAPSHOTS > table1::SLD_DOMAINS);
    }
}
