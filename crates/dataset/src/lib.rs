//! # ddx-dataset — calibrated synthetic corpus + longitudinal analysis
//!
//! The DNS-OARC DNSViz historical database is access-restricted, so this
//! crate substitutes a synthetic corpus whose marginal distributions come
//! from the paper's published tables (DESIGN.md §4) and re-implements the
//! paper's full analysis pipeline over it: snapshot categorization, CD/SD
//! splits, transition matrices, negative-transition attribution, error
//! prevalence, resolution times, and never-resolved shares (Tables 1-5,
//! Figures 1-5).

pub mod analysis;
pub mod corpus;
pub mod params;
pub mod tranco;

pub use corpus::{
    generate, sample_error_set, sample_meta, Corpus, CorpusConfig, DomainRecord, Level, Snapshot,
};
