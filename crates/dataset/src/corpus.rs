//! The synthetic DNSViz-log corpus generator.
//!
//! Produces per-domain snapshot trajectories whose marginal statistics are
//! calibrated to the paper's published tables (see `params`); the analysis
//! pipeline (`analysis`) then *recomputes* every table and figure from the
//! generated snapshots alone, exactly as the paper's pipeline does over the
//! real DNS-OARC data.

use std::collections::BTreeSet;

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ddx_dnsviz::{ErrorCode, SnapshotStatus, Subcategory};
use ddx_replicator::{KeySpec, Nsec3Meta, ZoneMeta};

use crate::params;

/// Domain hierarchy level (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    Root,
    Tld,
    SldPlus,
}

/// One diagnostic snapshot of one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Hours since the observation window opened (2020-03-11).
    pub t_hours: f64,
    pub status: SnapshotStatus,
    /// DNSSEC error codes present.
    pub errors: BTreeSet<ErrorCode>,
    /// Identity of the NS set (changes on nameserver migration).
    pub ns_set: u16,
    /// Identity of the DNSKEY set (changes on key rollover).
    pub key_set: u16,
    /// DNSKEY algorithms in use.
    pub algorithms: Vec<u8>,
    /// Zone meta-parameters for replication (paper §5.1 step 2).
    pub meta: ZoneMeta,
    /// Rare condition behind the paper's five unfixed S2 snapshots: the
    /// *parent* zone is bogus (DS present, DNSKEY missing), which a
    /// child-side fix cannot repair.
    #[serde(default)]
    pub parent_broken: bool,
}

impl Snapshot {
    /// Subcategories of the errors present.
    pub fn subcategories(&self) -> BTreeSet<Subcategory> {
        self.errors.iter().map(|e| e.subcategory()).collect()
    }

    /// True when NZIC is the only error (paper's S1 subset).
    pub fn is_nzic_only(&self) -> bool {
        self.errors.len() == 1 && self.errors.contains(&ErrorCode::Nsec3IterationsNonzero)
    }
}

/// One domain with its snapshot history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainRecord {
    pub id: u64,
    pub level: Level,
    pub snapshots: Vec<Snapshot>,
}

impl DomainRecord {
    /// Changing Domain (paper §3.2.2): at least two snapshots differing in
    /// status or error codes.
    pub fn is_cd(&self) -> bool {
        self.snapshots.len() >= 2
            && self
                .snapshots
                .windows(2)
                .any(|w| w[0].status != w[1].status || w[0].errors != w[1].errors)
    }

    /// Stable Domain: multi-snapshot but never changing.
    pub fn is_sd(&self) -> bool {
        self.snapshots.len() >= 2 && !self.is_cd()
    }
}

/// The generated corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    pub domains: Vec<DomainRecord>,
    /// Scale factor relative to the paper's dataset.
    pub scale: f64,
    pub seed: u64,
}

impl Corpus {
    pub fn sld_domains(&self) -> impl Iterator<Item = &DomainRecord> {
        self.domains.iter().filter(|d| d.level == Level::SldPlus)
    }

    pub fn snapshot_count(&self, level: Level) -> u64 {
        self.domains
            .iter()
            .filter(|d| d.level == level)
            .map(|d| d.snapshots.len() as u64)
            .sum()
    }

    /// All erroneous SLD+ snapshots — the Table 6 evaluation population.
    pub fn erroneous_snapshots(&self) -> impl Iterator<Item = &Snapshot> {
        self.sld_domains()
            .flat_map(|d| d.snapshots.iter())
            .filter(|s| !s.errors.is_empty())
    }

    /// Serializes the corpus to JSON (the interchange format standing in
    /// for the DNS-OARC snapshot archive).
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).expect("serializes"))
    }

    /// Loads a corpus saved with [`Corpus::save`].
    pub fn load(path: &str) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// 1.0 reproduces the paper-scale dataset (319,277 SLD+ domains,
    /// 747,455 snapshots); the default 0.01 is laptop-friendly.
    pub scale: f64,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            scale: 0.01,
            seed: 20_200_311,
        }
    }
}

// ------------------------------------------------------------ error model

/// Table 3 subcategory weights for co-occurring errors (NZIC's weight here
/// is only its co-occurrence mass; NZIC-only snapshots are drawn first).
fn cooccur_weights() -> Vec<(Subcategory, u64)> {
    Subcategory::ALL
        .iter()
        .map(|&s| {
            let w = if s == Subcategory::NonzeroIterationCount {
                params::subcategory_snapshots(s) - params::NZIC_ONLY_SNAPSHOTS
            } else {
                params::subcategory_snapshots(s)
            };
            (s, w)
        })
        .collect()
}

/// Denial mechanism implied by the codes picked so far (zones use NSEC or
/// NSEC3, not both — the sampler keeps an error set self-consistent).
#[derive(Clone, Copy, PartialEq)]
enum DenialAffinity {
    Unknown,
    Nsec,
    Nsec3,
}

fn affinity_of(code: ErrorCode) -> DenialAffinity {
    use ErrorCode::*;
    match code {
        NsecProofMissing
        | NsecBitmapAssertsType
        | NsecCoverageBroken
        | NsecMissingWildcardProof
        | LastNsecNotApex => DenialAffinity::Nsec,
        Nsec3ProofMissing
        | Nsec3BitmapAssertsType
        | Nsec3CoverageBroken
        | Nsec3MissingWildcardProof
        | Nsec3ParamMismatch
        | Nsec3IterationsNonzero
        | Nsec3OptOutViolation
        | Nsec3UnsupportedAlgorithm
        | Nsec3NoClosestEncloser
        | Nsec3InconsistentAncestor
        | Nsec3HashInvalidLength
        | Nsec3OwnerNotBase32 => DenialAffinity::Nsec3,
        _ => DenialAffinity::Unknown,
    }
}

/// Concrete code for a subcategory, weighted toward the common (replicable)
/// representative; unreplicable variants keep their natural small share.
/// `mode` keeps NSEC- and NSEC3-specific picks consistent within one set.
fn code_for_subcategory(rng: &mut StdRng, sub: Subcategory, mode: DenialAffinity) -> ErrorCode {
    use ErrorCode::*;
    use Subcategory as S;
    match sub {
        S::MissingKskForAlgorithm => *pick(
            rng,
            &[
                (DsMissingKeyForAlgorithm, 70),
                (NoSecureEntryPoint, 15),
                (DnskeyMissingForDs, 10),
                (NoSepForDsAlgorithm, 5),
            ],
        ),
        S::InvalidDigest => *pick(
            rng,
            &[
                (DsDigestInvalid, 80),
                (DsAlgorithmMismatch, 15),
                (DsUnknownDigestType, 5),
            ],
        ),
        S::InconsistentDnskey => *pick(
            rng,
            &[
                (DnskeyMissingFromServers, 70),
                (DnskeyInconsistentRrset, 30),
            ],
        ),
        S::RevokedKey => *pick(
            rng,
            &[
                (DsReferencesRevokedKey, 45),
                (RevokedKeyInUse, 35),
                (DnskeyRevokedNoOtherSep, 20),
            ],
        ),
        S::BadKeyLength => *pick(
            rng,
            &[
                (KeyLengthTooShort, 55),
                (KeyLengthInvalidForAlgorithm, 45), // unreplicable variant
            ],
        ),
        S::IncompleteAlgorithmSetup => *pick(
            rng,
            &[
                (DsAlgorithmWithoutRrsig, 40),
                (DnskeyAlgorithmWithoutRrsig, 40),
                (RrsigAlgorithmWithoutDnskey, 20),
            ],
        ),
        S::MissingSignature => *pick(
            rng,
            &[
                (RrsigMissing, 70),
                (RrsigMissingFromServers, 20),
                (RrsigMissingForDnskey, 10),
            ],
        ),
        S::ExpiredSignature => RrsigExpired,
        S::InvalidSignature => *pick(
            rng,
            &[
                (RrsigInvalid, 70),
                (RrsigUnknownKeyTag, 20),
                (RrsigInvalidRdata, 10),
            ],
        ),
        S::IncorrectSigner => RrsigSignerMismatch,
        S::NotYetValidSignature => RrsigNotYetValid,
        S::IncorrectSignatureLabels => RrsigLabelsExceedOwner,
        S::BadSignatureLength => RrsigBadLength,
        S::OriginalTtlExceedsRrsetTtl => OriginalTtlExceeded,
        S::TtlBeyondExpiration => TtlBeyondSignatureExpiry,
        S::MissingNonexistenceProof => match mode {
            DenialAffinity::Nsec => NsecProofMissing,
            DenialAffinity::Nsec3 => Nsec3ProofMissing,
            DenialAffinity::Unknown => {
                *pick(rng, &[(NsecProofMissing, 45), (Nsec3ProofMissing, 55)])
            }
        },
        S::IncorrectTypeBitmap => match mode {
            DenialAffinity::Nsec => NsecBitmapAssertsType,
            DenialAffinity::Nsec3 => Nsec3BitmapAssertsType,
            DenialAffinity::Unknown => *pick(
                rng,
                &[(NsecBitmapAssertsType, 45), (Nsec3BitmapAssertsType, 55)],
            ),
        },
        S::BadNonexistenceProof => match mode {
            DenialAffinity::Nsec => *pick(
                rng,
                &[(NsecCoverageBroken, 60), (NsecMissingWildcardProof, 40)],
            ),
            DenialAffinity::Nsec3 => *pick(
                rng,
                &[
                    (Nsec3CoverageBroken, 50),
                    (Nsec3MissingWildcardProof, 30),
                    (Nsec3ParamMismatch, 20),
                ],
            ),
            DenialAffinity::Unknown => *pick(
                rng,
                &[
                    (NsecCoverageBroken, 30),
                    (Nsec3CoverageBroken, 30),
                    (NsecMissingWildcardProof, 15),
                    (Nsec3MissingWildcardProof, 15),
                    (Nsec3ParamMismatch, 10),
                ],
            ),
        },
        S::IncorrectLastNsec => LastNsecNotApex,
        S::NonzeroIterationCount => Nsec3IterationsNonzero,
        S::InconsistentAncestorForNxdomain => Nsec3InconsistentAncestor, // unreplicable
        S::IncorrectClosestEncloserProof => Nsec3NoClosestEncloser,
        S::InvalidNsec3Hash => Nsec3HashInvalidLength, // unreplicable
        S::InvalidNsec3OwnerName => Nsec3OwnerNotBase32, // unreplicable
        S::IncorrectOptOutFlag => Nsec3OptOutViolation,
        S::UnsupportedNsec3Algorithm => Nsec3UnsupportedAlgorithm,
        // Not one of the paper's 26 subcategories: the synthetic corpus
        // mirrors the dataset's Table 3 distribution, which predates the
        // validation-budget extension.
        S::ExcessiveValidationWork => ValidationBudgetExceeded,
    }
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [(T, u32)]) -> &'a T {
    let dist = WeightedIndex::new(options.iter().map(|(_, w)| *w)).expect("weights");
    &options[dist.sample(rng)].0
}

/// Samples the error set of one erroneous snapshot. `force_critical`
/// biases toward SERVFAIL-level errors (used for sb-state snapshots).
pub fn sample_error_set(rng: &mut StdRng, force_critical: Option<bool>) -> BTreeSet<ErrorCode> {
    // NZIC-only snapshots make up 56.8% of all erroneous snapshots (S1);
    // conditioned on the snapshot being non-critical (svm), the share is
    // higher still.
    let nzic_only_share = match force_critical {
        Some(false) => 0.78,
        _ => params::NZIC_ONLY_SNAPSHOTS as f64 / params::ERROR_SNAPSHOTS as f64,
    };
    if force_critical != Some(true) && rng.gen_bool(nzic_only_share) {
        return [ErrorCode::Nsec3IterationsNonzero].into_iter().collect();
    }
    let weights = cooccur_weights();
    let dist = WeightedIndex::new(weights.iter().map(|(_, w)| *w)).expect("weights");
    let mut out = BTreeSet::new();
    let mut mode = DenialAffinity::Unknown;
    // NZIC co-occurs with most other errors (215K of 297K erroneous
    // snapshots carry it): bogus zones commonly kept their nonzero
    // iteration count while something else broke.
    if force_critical == Some(true) && rng.gen_bool(0.55) {
        out.insert(ErrorCode::Nsec3IterationsNonzero);
        mode = DenialAffinity::Nsec3;
    }
    let k = out.len() + 1 + rng.gen_range(0..3).min(rng.gen_range(0..3)); // +1-3, skewed to 1
    let mut guard = 0;
    while out.len() < k && guard < 64 {
        guard += 1;
        let sub = weights[dist.sample(rng)].0;
        let code = code_for_subcategory(rng, sub, mode);
        match force_critical {
            Some(true)
                if out.iter().all(|c: &ErrorCode| !c.is_critical())
                    && !code.is_critical()
                    && guard < 48 =>
            {
                continue
            }
            Some(false) if code.is_critical() => continue,
            _ => {}
        }
        let code_affinity = affinity_of(code);
        if mode != DenialAffinity::Unknown
            && code_affinity != DenialAffinity::Unknown
            && code_affinity != mode
        {
            continue; // structurally inconsistent with this zone
        }
        if mode == DenialAffinity::Unknown {
            mode = code_affinity;
        }
        out.insert(code);
    }
    if out.is_empty() {
        out.insert(if force_critical == Some(false) {
            ErrorCode::Nsec3IterationsNonzero
        } else {
            ErrorCode::RrsigExpired
        });
    }
    // An sb snapshot must contain at least one SERVFAIL-level error.
    if force_critical == Some(true) && out.iter().all(|c| !c.is_critical()) {
        out.insert(ErrorCode::RrsigExpired);
    }
    out
}

/// Builds the zone meta consistent with an error set (NSEC3 when the
/// errors demand it), with a small injected inconsistency rate modeling the
/// replication failures of §5.5.1.
pub fn sample_meta(rng: &mut StdRng, errors: &BTreeSet<ErrorCode>) -> ZoneMeta {
    let needs_nsec3 = errors.iter().any(|c| {
        matches!(
            c,
            ErrorCode::Nsec3ProofMissing
                | ErrorCode::Nsec3BitmapAssertsType
                | ErrorCode::Nsec3CoverageBroken
                | ErrorCode::Nsec3MissingWildcardProof
                | ErrorCode::Nsec3ParamMismatch
                | ErrorCode::Nsec3IterationsNonzero
                | ErrorCode::Nsec3OptOutViolation
                | ErrorCode::Nsec3UnsupportedAlgorithm
                | ErrorCode::Nsec3NoClosestEncloser
                | ErrorCode::Nsec3InconsistentAncestor
                | ErrorCode::Nsec3HashInvalidLength
                | ErrorCode::Nsec3OwnerNotBase32
        )
    });
    let needs_nsec = errors.iter().any(|c| {
        matches!(
            c,
            ErrorCode::NsecProofMissing
                | ErrorCode::NsecBitmapAssertsType
                | ErrorCode::NsecCoverageBroken
                | ErrorCode::NsecMissingWildcardProof
                | ErrorCode::LastNsecNotApex
        )
    });
    // Meta inconsistency: the observed parameters sometimes contradict the
    // denial mechanism the errors imply (stale scans, mid-rollover zones) —
    // one of the reasons real replication attempts fail.
    let mismatch = rng.gen_bool(0.10);
    let use_nsec3 = if mismatch {
        !(needs_nsec3 || (!needs_nsec && rng.gen_bool(params::NSEC3_META_SHARE)))
    } else if needs_nsec3 {
        true
    } else if needs_nsec {
        false
    } else {
        rng.gen_bool(params::NSEC3_META_SHARE)
    };

    let algorithm = if rng.gen_bool(params::DEPRECATED_ALGO_SHARE) {
        if rng.gen_bool(0.5) {
            6
        } else {
            3
        }
    } else {
        *pick(rng, &[(13u8, 50), (8, 35), (10, 5), (15, 8), (14, 2)])
    };
    let bits = match algorithm {
        8 | 10 => *pick(rng, &[(2048u16, 70), (1024, 25), (4096, 5)]),
        13 => 256,
        14 => 384,
        15 => 256,
        _ => 1024,
    };
    let mut keys = vec![
        KeySpec {
            role: ddx_dnssec::KeyRole::Ksk,
            algorithm,
            bits,
        },
        KeySpec {
            role: ddx_dnssec::KeyRole::Zsk,
            algorithm,
            bits,
        },
    ];
    // A few zones exhaust all substitutable algorithms (paper §5.5.1).
    if rng.gen_bool(params::ALGO_EXHAUSTED_SHARE) {
        keys = vec![
            KeySpec {
                role: ddx_dnssec::KeyRole::Ksk,
                algorithm: 8,
                bits: 2048,
            },
            KeySpec {
                role: ddx_dnssec::KeyRole::Ksk,
                algorithm: 13,
                bits: 256,
            },
            KeySpec {
                role: ddx_dnssec::KeyRole::Zsk,
                algorithm: 3,
                bits: 1024,
            },
        ];
    }
    ZoneMeta {
        keys,
        ds_digest_types: vec![*pick(rng, &[(2u8, 85), (1, 10), (4, 5)])],
        nsec3: use_nsec3.then(|| Nsec3Meta {
            iterations: if errors.contains(&ErrorCode::Nsec3IterationsNonzero) {
                *pick(rng, &[(1u16, 20), (5, 25), (10, 30), (16, 15), (150, 10)])
            } else {
                0
            },
            salt_len: *pick(rng, &[(0u8, 60), (4, 20), (8, 20)]),
            opt_out: rng.gen_bool(0.08),
        }),
    }
}

// ------------------------------------------------------- trajectory model

const STATES: [SnapshotStatus; 4] = [
    SnapshotStatus::Sv,
    SnapshotStatus::Svm,
    SnapshotStatus::Sb,
    SnapshotStatus::Is,
];

fn state_index(s: SnapshotStatus) -> Option<usize> {
    STATES.iter().position(|&x| x == s)
}

/// Log-normal sample with the given median (hours).
fn lognormal_hours(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    let z: f64 = {
        // Box-Muller.
        let u1: f64 = rng.gen_range(1e-9..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    (median.max(0.05)) * (sigma * z).exp()
}

struct DomainState {
    ns_set: u16,
    key_set: u16,
    algorithms: Vec<u8>,
}

/// The generator.
pub fn generate(cfg: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scale = cfg.scale;
    let mut domains = Vec::new();
    let mut next_id = 0u64;

    let scaled = |v: u64| ((v as f64 * scale).round() as u64).max(1);

    // --- Root & TLD levels (Table 1 only) ---
    domains.push(DomainRecord {
        id: next_id,
        level: Level::Root,
        snapshots: (0..scaled(params::table1::ROOT_SNAPSHOTS))
            .map(|i| healthy_snapshot(i as f64 * 6.0))
            .collect(),
    });
    next_id += 1;
    let tld_domains = scaled(params::table1::TLD_DOMAINS);
    let tld_multi = scaled(params::table1::TLD_MULTI);
    let tld_snapshots = scaled(params::table1::TLD_SNAPSHOTS);
    let per_multi = ((tld_snapshots - (tld_domains - tld_multi)) / tld_multi.max(1)).max(2);
    for i in 0..tld_domains {
        let n = if i < tld_multi { per_multi } else { 1 };
        let base = rng.gen_range(0.0..params::WINDOW_HOURS * 0.5);
        domains.push(DomainRecord {
            id: next_id,
            level: Level::Tld,
            snapshots: (0..n)
                .map(|k| healthy_snapshot(base + k as f64 * 24.0))
                .collect(),
        });
        next_id += 1;
    }

    // --- SLD+ level: the analysis population ---
    let n_domains = scaled(params::table1::SLD_DOMAINS);
    let n_multi = scaled(params::table1::SLD_MULTI);
    let n_cd = scaled(params::table1::SLD_CD);
    let n_sd = n_multi.saturating_sub(n_cd);
    let n_single = n_domains.saturating_sub(n_multi);

    // Singles: one snapshot, status mix tuned to the corpus-wide error
    // share (Table 3 bottom row: 39.7% of snapshots carry an error).
    for _ in 0..n_single {
        let t = rng.gen_range(0.0..params::WINDOW_HOURS);
        let snapshot = single_snapshot(&mut rng, t);
        domains.push(DomainRecord {
            id: next_id,
            level: Level::SldPlus,
            snapshots: vec![snapshot],
        });
        next_id += 1;
    }

    // Stable multi-snapshot domains.
    for _ in 0..n_sd {
        let snaps = sd_trajectory(&mut rng);
        domains.push(DomainRecord {
            id: next_id,
            level: Level::SldPlus,
            snapshots: snaps,
        });
        next_id += 1;
    }

    // Changing domains: Markov trajectories over Table 4.
    for _ in 0..n_cd {
        let snaps = cd_trajectory(&mut rng);
        domains.push(DomainRecord {
            id: next_id,
            level: Level::SldPlus,
            snapshots: snaps,
        });
        next_id += 1;
    }

    Corpus {
        domains,
        scale,
        seed: cfg.seed,
    }
}

fn default_meta() -> ZoneMeta {
    ZoneMeta::default()
}

fn healthy_snapshot(t: f64) -> Snapshot {
    Snapshot {
        t_hours: t,
        status: SnapshotStatus::Sv,
        errors: BTreeSet::new(),
        ns_set: 0,
        key_set: 0,
        algorithms: vec![13],
        meta: default_meta(),
        parent_broken: false,
    }
}

/// Status mix for one-shot domains: calibrated so the corpus-wide share of
/// erroneous snapshots approaches Table 3's 39.7%.
fn single_snapshot(rng: &mut StdRng, t: f64) -> Snapshot {
    // Singles mix: calibrated so erroneous singles ≈ 24.6% (Table 5's
    // multi-domain universe accounts for the rest of the 81,805 erroneous
    // domains).
    let status = *pick(
        rng,
        &[
            (SnapshotStatus::Sv, 510u32),
            (SnapshotStatus::Svm, 190),
            (SnapshotStatus::Sb, 80),
            (SnapshotStatus::Is, 170),
            (SnapshotStatus::Lm, 25),
            (SnapshotStatus::Ic, 5),
        ],
    );
    make_snapshot(
        rng,
        t,
        status,
        &mut DomainState {
            ns_set: 0,
            key_set: 0,
            algorithms: vec![13],
        },
    )
}

fn make_snapshot(
    rng: &mut StdRng,
    t: f64,
    status: SnapshotStatus,
    st: &mut DomainState,
) -> Snapshot {
    let errors = match status {
        SnapshotStatus::Sb => sample_error_set(rng, Some(true)),
        SnapshotStatus::Svm => sample_error_set(rng, Some(false)),
        _ => BTreeSet::new(),
    };
    let meta = if errors.is_empty() {
        default_meta()
    } else {
        sample_meta(rng, &errors)
    };
    // The algorithm set tracks the domain's trajectory state (Table 2
    // attribution compares consecutive snapshots); the replication meta may
    // differ — it reflects what a scan recorded, not the rollover history.
    let algorithms = st.algorithms.clone();
    // The paper found ~5 in 100K erroneous snapshots whose parent zone was
    // itself bogus (§5.4) — the only DFixer failures.
    let parent_broken = !errors.is_empty() && rng.gen_bool(0.00005);
    Snapshot {
        t_hours: t,
        status,
        errors,
        ns_set: st.ns_set,
        key_set: st.key_set,
        algorithms,
        meta,
        parent_broken,
    }
}

/// Stable-domain trajectories: identical category (and errors) throughout.
fn sd_trajectory(rng: &mut StdRng) -> Vec<Snapshot> {
    // Stable-domain status mix: calibrated jointly with the CD dynamics so
    // the Table 5 never-resolved shares land near the paper's 18% (sb),
    // 62% (svm), 36.5% (is): stable sb/svm/is domains are, by definition,
    // never resolved.
    let status = *pick(
        rng,
        &[
            (SnapshotStatus::Sv, 736u32),
            (SnapshotStatus::Svm, 34),
            (SnapshotStatus::Sb, 20),
            (SnapshotStatus::Is, 25),
            (SnapshotStatus::Lm, 15),
            (SnapshotStatus::Ic, 5),
        ],
    );
    // Broken-but-tolerated zones (svm/NZIC) accumulate the longest scan
    // histories; hard-broken zones get fixed or abandoned sooner.
    let mean = match status {
        SnapshotStatus::Svm => 34.0,
        SnapshotStatus::Sb => 8.0,
        _ => 4.3,
    };
    let n = sample_snapshot_count(rng, mean);
    let mut st = DomainState {
        ns_set: 0,
        key_set: 0,
        algorithms: vec![13],
    };
    let mut t = rng.gen_range(0.0..params::WINDOW_HOURS * 0.6);
    let first = make_snapshot(rng, t, status, &mut st);
    let mut snaps = vec![first.clone()];
    for _ in 1..n {
        t += lognormal_hours(rng, 20.0, 1.5);
        let mut s = first.clone();
        s.t_hours = t;
        snaps.push(s);
    }
    snaps
}

/// Number of snapshots for a multi-snapshot domain: 2 + geometric with the
/// given mean. Broken domains are re-scanned far more often than healthy
/// ones (the dataset's user-initiated self-selection, §3.1): erroneous
/// trajectories run long, healthy ones short, jointly matching Table 1's
/// 747K snapshots and Table 3's 296K erroneous snapshots.
fn sample_snapshot_count(rng: &mut StdRng, mean: f64) -> usize {
    let extra = (mean - 2.0).max(0.5);
    let cont = extra / (extra + 1.0);
    let mut n = 2;
    while n < 80 && rng.gen_bool(cont) {
        n += 1;
    }
    n
}

/// Changing-domain trajectories: Markov walk over Table 4's transition
/// counts with transition-specific gap medians; sv→sb / sv→is transitions
/// carry causes (NS update / key rollover / algorithm rollover) expressed
/// as ns/key/algorithm set changes (Table 2).
fn cd_trajectory(rng: &mut StdRng) -> Vec<Snapshot> {
    // First-snapshot state mix from Fig 2's CD population.
    let start = *pick(
        rng,
        &[
            (SnapshotStatus::Sv, 4_633u32),
            (SnapshotStatus::Svm, 2_292),
            (SnapshotStatus::Sb, 10_668),
            (SnapshotStatus::Is, 3_907),
        ],
    );
    let n = sample_snapshot_count(rng, 9.0);
    let mut st = DomainState {
        ns_set: 0,
        key_set: 0,
        algorithms: vec![13],
    };
    let mut t = rng.gen_range(0.0..params::WINDOW_HOURS * 0.6);
    let mut status = start;
    let mut snaps = vec![make_snapshot(rng, t, status, &mut st)];
    for _ in 1..n {
        let from = state_index(status).unwrap_or(0);
        // Stay or move: sticky svm (overlooked non-blocking errors) vs
        // prompt sb reactions (§3.6).
        let stay_prob = match status {
            SnapshotStatus::Svm => 0.62,
            SnapshotStatus::Sb => 0.15,
            SnapshotStatus::Sv => 0.45,
            // Unsigned domains mostly stay unsigned between scans (Fig 2:
            // 62% of is-starting CD domains sign by their last snapshot).
            SnapshotStatus::Is => 0.60,
            _ => 0.35,
        };
        if rng.gen_bool(stay_prob) {
            let gap = match status {
                SnapshotStatus::Svm => lognormal_hours(rng, 400.0, 1.3),
                _ => lognormal_hours(rng, 13.0, 1.2),
            };
            t += gap;
            let mut s = snaps.last().expect("non-empty").clone();
            s.t_hours = t;
            snaps.push(s);
            continue;
        }
        let weights = params::TRANSITION_COUNTS[from];
        let dist = WeightedIndex::new(weights).expect("row weights");
        let to = dist.sample(rng);
        let new_status = STATES[to];
        let mut median = params::TRANSITION_MEDIAN_HOURS[from][to];
        // First-ever DNSSEC deployment takes longer than later state flips
        // (Fig 4's black box: median > 1 day).
        if status == SnapshotStatus::Is && snaps.len() == 1 {
            median = median.max(34.0);
        }
        t += lognormal_hours(rng, median, 1.4);

        // Attribute causes on negative transitions from sv (Table 2).
        if status == SnapshotStatus::Sv
            && matches!(new_status, SnapshotStatus::Sb | SnapshotStatus::Is)
        {
            let (ns_p, key_p, algo_p) = if new_status == SnapshotStatus::Sb {
                (
                    params::table2::SV_SB_NS,
                    params::table2::SV_SB_KEY,
                    params::table2::SV_SB_ALGO,
                )
            } else {
                (
                    params::table2::SV_IS_NS,
                    params::table2::SV_IS_KEY,
                    params::table2::SV_IS_ALGO,
                )
            };
            let roll: f64 = rng.gen();
            if roll < ns_p {
                st.ns_set += 1;
            } else if roll < ns_p + key_p {
                st.key_set += 1;
            } else if roll < ns_p + key_p + algo_p {
                st.key_set += 1;
                st.algorithms = vec![if st.algorithms == vec![13] { 8 } else { 13 }];
            }
        }
        status = new_status;
        snaps.push(make_snapshot(rng, t, status, &mut st));
    }
    // Ending calibration against Fig 2 / Table 5:
    let last_status = snaps.last().map(|s| s.status);
    let append =
        |rng: &mut StdRng, st: &mut DomainState, snaps: &mut Vec<Snapshot>, status, median| {
            let t =
                snaps.last().map(|s| s.t_hours).unwrap_or(0.0) + lognormal_hours(rng, median, 1.2);
            let snap = make_snapshot(rng, t, status, st);
            snaps.push(snap);
        };
    match last_status {
        // 38% of is-starting CD domains never (re-)enable DNSSEC (§3.4
        // "Switching to Insecure"): operators try signing and give up.
        Some(s) if start == SnapshotStatus::Is && s != SnapshotStatus::Is && rng.gen_bool(0.30) => {
            append(rng, &mut st, &mut snaps, SnapshotStatus::Is, 48.0);
        }
        // Admins react promptly to breakage (Table 4: sb→sv median 0.7h);
        // only 18% of sb-touching domains stay broken (Table 5).
        Some(SnapshotStatus::Sb) if rng.gen_bool(0.60) => {
            let to = if rng.gen_bool(0.5) {
                SnapshotStatus::Sv
            } else {
                SnapshotStatus::Svm
            };
            append(rng, &mut st, &mut snaps, to, 0.7);
        }
        // A share of is-ending transit domains eventually signs (Table 5:
        // 63.5% of is-touching domains re-enable DNSSEC).
        Some(SnapshotStatus::Is) if start != SnapshotStatus::Is && rng.gen_bool(0.35) => {
            append(rng, &mut st, &mut snaps, SnapshotStatus::Sv, 72.0);
        }
        // NZIC-style misconfigurations linger or return (61.9% of
        // svm-touching domains end svm).
        Some(SnapshotStatus::Sv)
            if snaps.iter().any(|s| s.status == SnapshotStatus::Svm) && rng.gen_bool(0.35) =>
        {
            append(rng, &mut st, &mut snaps, SnapshotStatus::Svm, 400.0);
        }
        _ => {}
    }
    snaps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        generate(&CorpusConfig {
            scale: 0.01,
            seed: 42,
        })
    }

    #[test]
    fn deterministic() {
        let a = generate(&CorpusConfig {
            scale: 0.005,
            seed: 7,
        });
        let b = generate(&CorpusConfig {
            scale: 0.005,
            seed: 7,
        });
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(
            a.snapshot_count(Level::SldPlus),
            b.snapshot_count(Level::SldPlus)
        );
    }

    #[test]
    fn scale_matches_table1_shape() {
        let c = small();
        let sld_domains = c.sld_domains().count() as f64;
        assert!(
            (sld_domains - 3_192.0).abs() / 3_192.0 < 0.02,
            "{sld_domains}"
        );
        let sld_snaps = c.snapshot_count(Level::SldPlus) as f64;
        // 747,455 × 0.01 ≈ 7,475 within 25% (trajectory-length variance).
        assert!(
            (sld_snaps - 7_474.0).abs() / 7_474.0 < 0.25,
            "snapshots {sld_snaps}"
        );
        let multi = c.sld_domains().filter(|d| d.snapshots.len() >= 2).count() as f64;
        assert!((multi - 850.0).abs() / 850.0 < 0.05, "{multi}");
    }

    #[test]
    fn cd_sd_split_plausible() {
        let c = small();
        let cd = c.sld_domains().filter(|d| d.is_cd()).count() as f64;
        let sd = c.sld_domains().filter(|d| d.is_sd()).count() as f64;
        // Paper: 21,734 CD vs 63,228 SD (25.6% / 74.4%).
        let cd_share = cd / (cd + sd);
        assert!((0.15..0.40).contains(&cd_share), "cd share {cd_share}");
    }

    #[test]
    fn error_share_near_paper() {
        let c = small();
        let total = c.snapshot_count(Level::SldPlus) as f64;
        let erroneous = c.erroneous_snapshots().count() as f64;
        let share = erroneous / total;
        // Paper: 39.7%.
        assert!((0.28..0.52).contains(&share), "error share {share}");
    }

    #[test]
    fn nzic_dominates_errors() {
        let c = small();
        let mut nzic = 0usize;
        let mut any = 0usize;
        for s in c.erroneous_snapshots() {
            any += 1;
            if s.errors.contains(&ErrorCode::Nsec3IterationsNonzero) {
                nzic += 1;
            }
        }
        let share = nzic as f64 / any as f64;
        // Paper: 215,036 / 296,813 ≈ 72%.
        assert!((0.5..0.9).contains(&share), "nzic share {share}");
    }

    #[test]
    fn s1_share_matches() {
        let c = small();
        let total = c.erroneous_snapshots().count() as f64;
        let s1 = c.erroneous_snapshots().filter(|s| s.is_nzic_only()).count() as f64;
        // Paper: 168,482 / 296,813 ≈ 56.8%.
        assert!(
            (0.42..0.68).contains(&(s1 / total)),
            "s1 share {}",
            s1 / total
        );
    }

    #[test]
    fn sb_snapshots_have_critical_errors() {
        let c = small();
        for d in c.sld_domains() {
            for s in &d.snapshots {
                match s.status {
                    SnapshotStatus::Sb => {
                        assert!(s.errors.iter().any(|e| e.is_critical()), "{:?}", s.errors)
                    }
                    SnapshotStatus::Svm => {
                        assert!(!s.errors.is_empty());
                        assert!(s.errors.iter().all(|e| !e.is_critical()), "{:?}", s.errors)
                    }
                    _ => assert!(s.errors.is_empty()),
                }
            }
        }
    }

    #[test]
    fn meta_consistency_mostly_holds() {
        let c = small();
        let mut consistent = 0usize;
        let mut total = 0usize;
        for s in c.erroneous_snapshots() {
            if s.errors.contains(&ErrorCode::Nsec3IterationsNonzero) {
                total += 1;
                if s.meta
                    .nsec3
                    .as_ref()
                    .map(|m| m.iterations > 0)
                    .unwrap_or(false)
                {
                    consistent += 1;
                }
            }
        }
        assert!(total > 0);
        let share = consistent as f64 / total as f64;
        assert!(share > 0.8, "consistency {share}");
    }

    #[test]
    fn timestamps_increase() {
        let c = small();
        for d in &c.domains {
            for w in d.snapshots.windows(2) {
                assert!(w[1].t_hours > w[0].t_hours);
            }
        }
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;

    #[test]
    fn corpus_save_load_round_trip() {
        let c = generate(&CorpusConfig {
            scale: 0.001,
            seed: 2,
        });
        let path = std::env::temp_dir().join("ddx_corpus_roundtrip.json");
        let path = path.to_str().unwrap();
        c.save(path).unwrap();
        let back = Corpus::load(path).unwrap();
        assert_eq!(back.domains.len(), c.domains.len());
        assert_eq!(back.scale, c.scale);
        assert_eq!(
            back.erroneous_snapshots().count(),
            c.erroneous_snapshots().count()
        );
        let _ = std::fs::remove_file(path);
    }
}
