//! Seed-swept chaos harness for the probe→grok pipeline.
//!
//! Every seed derives a deterministic fault mix; the full zone-variant
//! corpus is probed through a [`FaultNetwork`] under that mix and the
//! pipeline must never panic. Each failing seed is reported as a one-line
//! repro command, and a single seed/variant can be replayed via the
//! `CHAOS_SEED` / `CHAOS_VARIANT` environment variables:
//!
//! ```text
//! CHAOS_SEED=17 CHAOS_VARIANT=nsec3 \
//!     cargo test -q -p ddx-dnsviz --test probe_resilience -- seed_sweep
//! ```
//!
//! `CHAOS_SEEDS=<n>` caps the sweep (CI smoke runs use a small fixed set).

use std::panic::{catch_unwind, AssertUnwindSafe};

use ddx_dnsviz::{grok, probe, ErrorDetail, GrokReport, RetryPolicy};
use ddx_server::{FaultNetwork, FaultPlan, FlapSchedule, Sandbox};

mod common;
use common::{probe_cfg, variants};

/// The deterministic fault mix for one sweep seed: rate, flap, and healing
/// horizon all derive from the seed so the sweep covers persistent faults,
/// transient faults, and flapping servers.
fn plan_for(seed: u64) -> FaultPlan {
    let permille = 40 + (seed % 7) as u16 * 20;
    let mut plan = FaultPlan::uniform(seed, permille);
    if seed % 3 == 0 {
        plan.flap = Some(FlapSchedule {
            period_ms: 200,
            down_ms: 60,
        });
    }
    if seed % 4 == 1 {
        plan.max_faulty_attempts = Some(2);
    }
    plan
}

fn sweep_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let seed = s.parse().expect("CHAOS_SEED must be an integer seed");
        return vec![seed];
    }
    let n = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    (0..n).collect()
}

fn repro_line(seed: u64, variant: &str) -> String {
    format!(
        "CHAOS_SEED={seed} CHAOS_VARIANT={variant} \
         cargo test -q -p ddx-dnsviz --test probe_resilience -- seed_sweep"
    )
}

/// One pipeline run under faults. Returns the report so callers can assert
/// on it; panics inside propagate to the caller's `catch_unwind`.
fn run_faulted(sb: &Sandbox, plan: FaultPlan) -> GrokReport {
    let net = FaultNetwork::new(&sb.testbed, plan);
    let cfg = probe_cfg(sb);
    grok(&probe(&net, &cfg))
}

/// The headline sweep: ≥200 seeds × every zone variant, probe→grok must
/// never panic, and every report must serialize and parse back.
#[test]
fn seed_sweep() {
    let variant_filter = std::env::var("CHAOS_VARIANT").ok();
    let mut failing: Vec<String> = Vec::new();
    for seed in sweep_seeds() {
        for (label, sb) in variants() {
            if let Some(f) = &variant_filter {
                if f != label {
                    continue;
                }
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let report = run_faulted(sb, plan_for(seed));
                let json = report.to_json();
                GrokReport::from_json(&json).expect("chaos report round-trips through JSON");
            }));
            if outcome.is_err() {
                failing.push(repro_line(seed, label));
            }
        }
    }
    assert!(
        failing.is_empty(),
        "pipeline panicked under fault injection; repro each with:\n{}",
        failing.join("\n")
    );
}

/// A zero-fault plan, whatever its seed, must leave the diagnostics
/// byte-identical to probing the wrapped network directly, with no
/// failures recorded anywhere.
#[test]
fn zero_fault_probe_is_byte_identical() {
    for (label, sb) in variants() {
        let cfg = probe_cfg(sb);
        let baseline = grok(&probe(&sb.testbed, &cfg));
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let report = run_faulted(sb, FaultPlan::none(seed));
            assert_eq!(
                report.to_json(),
                baseline.to_json(),
                "variant={label} seed={seed}: passthrough changed the diagnostics"
            );
            assert!(
                report.fully_observed(),
                "variant={label} seed={seed}: passthrough produced observation gaps"
            );
        }
    }
}

/// Transient faults (healing horizon shorter than the retry budget) must
/// converge to the fault-free diagnostics: every retry-exhausting fault
/// heals before the prober gives up.
#[test]
fn transient_faults_converge_to_fault_free_diagnostics() {
    for (label, sb) in variants() {
        let cfg = probe_cfg(sb);
        assert!(
            cfg.retry.attempts >= 3,
            "test needs the default retry budget"
        );
        let baseline = grok(&probe(&sb.testbed, &cfg)).to_json();
        for seed in 0..20u64 {
            let plan = FaultPlan {
                // Heal strictly before the third attempt: the prober always
                // gets a clean answer within its budget.
                max_faulty_attempts: Some(2),
                ..FaultPlan::uniform(seed, 150)
            };
            let report = run_faulted(sb, plan);
            assert_eq!(
                report.to_json(),
                baseline,
                "variant={label} seed={seed}: transient faults leaked into the diagnostics"
            );
        }
    }
}

/// A persistently dead server must surface as a typed observation gap —
/// "couldn't observe", not "observed broken".
#[test]
fn persistent_timeouts_become_observation_gaps() {
    let (label, sb) = &variants()[0];
    let dead = sb.leaf().servers[0].clone();
    let plan = FaultPlan {
        timeout_permille: 1000,
        only_server: Some(dead.clone()),
        ..FaultPlan::none(99)
    };
    let report = run_faulted(sb, plan);
    assert!(
        !report.fully_observed(),
        "variant={label}: a fully dead server left no observation gap"
    );
    let attempts = RetryPolicy::default().attempts;
    assert!(
        report.observation_gaps().any(|(_, g)| matches!(
            g,
            ErrorDetail::ServerUnreachable { server, attempts: a }
                if *server == dead && *a == attempts
        )),
        "variant={label}: expected ServerUnreachable for {dead:?}, gaps: {:?}",
        report.observation_gaps().collect::<Vec<_>>()
    );
}
