//! Golden-file regression tests pinning the `GrokReport` JSON schema.
//!
//! Two deterministic erroneous sandboxes — one NSEC (expired leaf RRSIG)
//! and one NSEC3 (non-zero iteration count) — are probed and grokked, and
//! the pretty-printed report JSON is compared byte-for-byte against a
//! checked-in golden file. Any change to the serialized shape of
//! [`GrokReport`], [`ddx_dnsviz::ErrorInstance`], or the typed
//! `detail_data` payloads shows up as a diff here before it silently
//! breaks downstream consumers of the JSON.
//!
//! The goldens are self-bootstrapping: when a golden file is absent (or
//! `UPDATE_GOLDEN` is set in the environment) the test regenerates it from
//! the deterministic sandbox instead of failing, prints the path, and
//! passes. Commit the regenerated file to re-pin the schema.

use std::fs;
use std::path::PathBuf;

use ddx_dns::{name, RrType};
use ddx_dnssec::{resign_rrset, KeyRole, Nsec3Config, SignOptions};
use ddx_dnsviz::{
    grok, probe, BudgetCounter, ErrorCode, ErrorDetail, GrokReport, ProbeConfig, SnapshotStatus,
};
use ddx_replicator::{replicate_attack, AttackFamily};
use ddx_server::{build_sandbox, FaultNetwork, FaultPlan, Sandbox, ZoneSpec};

const NOW: u32 = 1_000_000;
const SEED: u64 = 0x601D;

fn probe_cfg(sb: &Sandbox) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name("www.chd.par.a.com"),
        target_types: vec![RrType::A],
        time: NOW,
        retry: ddx_dnsviz::RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

fn three_level(leaf_nsec3: Option<Nsec3Config>) -> Sandbox {
    let mut leaf = ZoneSpec::conventional(name("chd.par.a.com"));
    leaf.nsec3 = leaf_nsec3;
    build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
            leaf,
        ],
        NOW,
        SEED,
    )
}

/// NSEC sandbox whose leaf `www` RRSIG expired five seconds ago.
fn expired_sig_sandbox() -> Sandbox {
    let mut sb = three_level(None);
    let apex = name("chd.par.a.com");
    let zsk = sb
        .zone(&apex)
        .expect("leaf zone exists")
        .ring
        .active(KeyRole::Zsk, NOW)[0]
        .clone();
    let www = name("www.chd.par.a.com");
    sb.testbed.mutate_zone_everywhere(&apex, |zone| {
        resign_rrset(
            zone,
            &www,
            RrType::A,
            &zsk,
            SignOptions {
                inception: 0,
                expiration: NOW - 5,
            },
        );
    });
    sb
}

fn nsec_report() -> GrokReport {
    let sb = expired_sig_sandbox();
    let cfg = probe_cfg(&sb);
    grok(&probe(&sb.testbed, &cfg))
}

/// The expired-sig sandbox probed with one leaf server persistently dead:
/// the report carries both the real error and typed observation gaps, so
/// this golden pins the `observation_gaps` JSON shape.
fn gapped_report() -> GrokReport {
    let sb = expired_sig_sandbox();
    let dead = sb.leaf().servers[0].clone();
    let plan = FaultPlan {
        timeout_permille: 1000,
        only_server: Some(dead),
        ..FaultPlan::none(SEED)
    };
    let net = FaultNetwork::new(&sb.testbed, plan);
    let cfg = probe_cfg(&sb);
    grok(&probe(&net, &cfg))
}

/// NSEC3 sandbox whose leaf violates RFC 9276 (ten extra iterations).
fn nsec3_report() -> GrokReport {
    let sb = three_level(Some(Nsec3Config {
        iterations: 10,
        ..Nsec3Config::default()
    }));
    let cfg = probe_cfg(&sb);
    grok(&probe(&sb.testbed, &cfg))
}

/// One deterministic KeyTrap-class sandbox per attack family, groked under
/// the default validation budget — these goldens pin the truncated-report
/// shape, including the `ValidationBudgetExceeded` error and its typed
/// `BudgetExceeded` payload.
fn attack_report(family: AttackFamily) -> GrokReport {
    let rep = replicate_attack(family, NOW, SEED).expect("attack replicates");
    assert!(
        rep.skipped.is_empty(),
        "{family}: skipped {:?}",
        rep.skipped
    );
    grok(&probe(&rep.sandbox.testbed, &rep.probe))
}

fn golden_path(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{tag}.json"))
}

fn check_golden(tag: &str, report: &GrokReport, expect: ErrorCode) {
    // The sandbox must actually exhibit the intended error, or the golden
    // would pin a report of the wrong shape.
    assert!(
        report.codes().contains(&expect),
        "{tag}: expected {expect}, got {:?}",
        report.codes()
    );
    assert_ne!(report.status, SnapshotStatus::Sv, "{tag}: sandbox is valid");

    let json = report.to_json();
    // Independent of the golden: the JSON must parse back, and the legacy
    // `detail` string must accompany every typed `detail_data` payload.
    let value: serde_json::Value =
        serde_json::from_str(&json).expect("report JSON parses back into a Value");
    for zone in value["zones"].as_array().expect("zones is an array") {
        for err in zone["errors"].as_array().expect("errors is an array") {
            assert!(err["detail"].is_string(), "{tag}: legacy detail missing");
        }
    }

    let path = golden_path(tag);
    if std::env::var_os("UPDATE_GOLDEN").is_some() || !path.exists() {
        fs::create_dir_all(path.parent().expect("golden path has a parent"))
            .expect("golden dir is creatable");
        fs::write(&path, &json).expect("golden file is writable");
        eprintln!("golden: (re)wrote {} — commit it to pin", path.display());
        return;
    }
    let golden = fs::read_to_string(&path).expect("golden file is readable");
    assert_eq!(
        json,
        golden,
        "{tag}: GrokReport JSON diverged from {}; \
         re-run with UPDATE_GOLDEN=1 and commit the result if intended",
        path.display()
    );
}

#[test]
fn nsec_erroneous_report_matches_golden() {
    check_golden(
        "nsec_rrsig_expired",
        &nsec_report(),
        ErrorCode::RrsigExpired,
    );
}

#[test]
fn nsec3_erroneous_report_matches_golden() {
    check_golden(
        "nsec3_iterations_nonzero",
        &nsec3_report(),
        ErrorCode::Nsec3IterationsNonzero,
    );
}

/// A report probed through a persistent fault must pin the
/// `observation_gaps` shape alongside the real error, and round-trip
/// through JSON with the gaps intact.
#[test]
fn observation_gap_report_matches_golden() {
    let report = gapped_report();
    assert!(
        !report.fully_observed(),
        "a dead leaf server must leave observation gaps"
    );
    let parsed = GrokReport::from_json(&report.to_json()).expect("gap report parses back");
    assert!(
        !parsed.fully_observed(),
        "observation gaps must survive the JSON round-trip"
    );
    check_golden("nsec_observation_gaps", &report, ErrorCode::RrsigExpired);
}

/// The probe→grok path is deterministic for a fixed seed and clock — the
/// precondition for golden comparison to be meaningful across machines.
#[test]
fn reports_are_deterministic() {
    assert_eq!(nsec_report().to_json(), nsec_report().to_json());
    assert_eq!(nsec3_report().to_json(), nsec3_report().to_json());
    assert_eq!(gapped_report().to_json(), gapped_report().to_json());
    for family in AttackFamily::ALL {
        assert_eq!(
            attack_report(family).to_json(),
            attack_report(family).to_json(),
            "{family}"
        );
    }
}

// --- KeyTrap-class attack corpus: one golden per family pins the shape of
// a budget-truncated report.

#[test]
fn sigjam_report_matches_golden() {
    check_golden(
        "attack_sigjam",
        &attack_report(AttackFamily::SigJam),
        ErrorCode::ValidationBudgetExceeded,
    );
}

#[test]
fn lockcram_report_matches_golden() {
    check_golden(
        "attack_lockcram",
        &attack_report(AttackFamily::LockCram),
        ErrorCode::ValidationBudgetExceeded,
    );
}

#[test]
fn nsec3_iterations_report_matches_golden() {
    check_golden(
        "attack_nsec3_iterations",
        &attack_report(AttackFamily::Nsec3Iterations),
        ErrorCode::ValidationBudgetExceeded,
    );
}

#[test]
fn oversized_rrset_report_matches_golden() {
    check_golden(
        "attack_oversized_rrset",
        &attack_report(AttackFamily::OversizedRrset),
        ErrorCode::ValidationBudgetExceeded,
    );
}

/// The typed `BudgetExceeded` payload survives the JSON round-trip intact:
/// counter, used, and cap all reconstruct, and the re-serialization is
/// byte-stable.
#[test]
fn budget_detail_round_trips() {
    let report = attack_report(AttackFamily::SigJam);
    let json = report.to_json();
    let parsed = GrokReport::from_json(&json).expect("attack report parses back");
    assert_eq!(parsed.to_json(), json, "round-trip is byte-stable");
    let detail = parsed
        .errors()
        .find(|e| e.code == ErrorCode::ValidationBudgetExceeded)
        .map(|e| e.detail.clone())
        .expect("typed budget finding survives the round-trip");
    match detail {
        ErrorDetail::BudgetExceeded { counter, used, cap } => {
            assert_eq!(counter, BudgetCounter::SigVerifications);
            assert!(used > cap, "used {used} <= cap {cap}");
        }
        other => panic!("unexpected detail {other:?}"),
    }
}
