//! Equivalence harness for the incremental probe→grok layer: a
//! [`GrokMemo`]-driven revalidation must be **byte-for-byte identical**
//! (report JSON) to a from-scratch `grok(&probe(..))` of the same state,
//! across the shared zone-variant corpus, random mutation sequences, and
//! deterministic fault plans — while reusing every zone the mutations did
//! not touch.

use std::net::Ipv4Addr;

use ddx_dns::{name, RData, Record, RrType};
use ddx_dnsviz::{grok, probe, ErrorCode, GrokMemo};
use ddx_replicator::{inject_attack, AttackFamily};
use ddx_server::{FaultNetwork, FaultPlan, Sandbox};
use proptest::prelude::*;

mod common;
use common::{build_variant, probe_cfg, ANCHOR_APEX, LEAF_APEX, NOW, PAR_APEX, VARIANT_NAMES};

/// One deterministic sandbox mutation, selected by `op`. `round` feeds
/// fresh record names so repeated adds stay distinct.
fn apply_mutation(sb: &mut Sandbox, op: u8, round: usize) {
    let a = |last: u8| RData::A(Ipv4Addr::new(192, 0, 2, last));
    match op % 8 {
        0 => sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
            z.add(Record::new(
                name(&format!("extra{round}.{LEAF_APEX}")),
                300,
                a(100 + round as u8),
            ));
        }),
        1 => {
            let _ = sb.resign_zone(&name(LEAF_APEX), NOW);
        }
        2 => sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
            z.strip_type(RrType::Rrsig);
        }),
        3 => sb.set_ds(&name(LEAF_APEX), Vec::new(), NOW),
        4 => sb.testbed.mutate_zone_everywhere(&name(PAR_APEX), |z| {
            z.add(Record::new(
                name(&format!("extra{round}.{PAR_APEX}")),
                300,
                a(150 + round as u8),
            ));
        }),
        5 => sb.testbed.mutate_zone_everywhere(&name(ANCHOR_APEX), |z| {
            z.add(Record::new(
                name(&format!("extra{round}.{ANCHOR_APEX}")),
                300,
                a(200 + round as u8),
            ));
        }),
        6 => {
            let _ = sb.resign_zone(&name(PAR_APEX), NOW);
        }
        _ => sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
            z.strip_type(RrType::Nsec);
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline pin: across every corpus variant and a random sequence
    /// of zone mutations, incremental revalidation through one long-lived
    /// memo serializes byte-for-byte like a from-scratch run after every
    /// step, and the memo's accounting stays balanced.
    #[test]
    fn incremental_report_equals_scratch(
        variant_idx in 0usize..8,
        ops in prop::collection::vec(0u8..8, 1..6),
    ) {
        let label = VARIANT_NAMES[variant_idx];
        let mut sb = build_variant(label);
        let cfg = probe_cfg(&sb);
        let mut memo = GrokMemo::new();
        let first = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
        prop_assert_eq!(
            first.to_json(),
            grok(&probe(&sb.testbed, &cfg)).to_json(),
            "variant={} cold run diverged", label
        );
        for (round, op) in ops.iter().enumerate() {
            apply_mutation(&mut sb, *op, round);
            let inc = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
            let scratch = grok(&probe(&sb.testbed, &cfg));
            prop_assert_eq!(
                inc.to_json(),
                scratch.to_json(),
                "variant={} op={} round={}", label, op, round
            );
        }
        let s = memo.stats();
        prop_assert_eq!(s.lookups, s.hits + s.misses);
    }

    /// Chaos pin: under a deterministic fault plan (fresh [`FaultNetwork`]
    /// per walk, same seed, no flap — flapping advances a per-instance
    /// clock and is order-dependent by design), incremental and scratch
    /// runs still agree after every mutation: clean cached observations
    /// were taken under identical per-query draws, and any gapped zone is
    /// forced dirty and re-probed live.
    #[test]
    fn incremental_equals_scratch_under_chaos(
        variant_idx in 0usize..8,
        seed in 0u64..64,
        ops in prop::collection::vec(0u8..8, 1..4),
    ) {
        let label = VARIANT_NAMES[variant_idx];
        let mut sb = build_variant(label);
        let cfg = probe_cfg(&sb);
        let permille = 40 + (seed % 7) as u16 * 20;
        let plan = FaultPlan {
            max_faulty_attempts: if seed % 2 == 0 { Some(2) } else { None },
            ..FaultPlan::uniform(seed, permille)
        };
        let mut memo = GrokMemo::new();
        for (round, op) in ops.iter().enumerate() {
            if round > 0 {
                apply_mutation(&mut sb, *op, round);
            }
            let inc_net = FaultNetwork::new(&sb.testbed, plan.clone());
            let inc = memo.probe_grok(&inc_net, &sb.testbed, &cfg);
            let scratch_net = FaultNetwork::new(&sb.testbed, plan.clone());
            let scratch = grok(&probe(&scratch_net, &cfg));
            prop_assert_eq!(
                inc.to_json(),
                scratch.to_json(),
                "variant={} seed={} op={} round={}", label, seed, op, round
            );
        }
        let s = memo.stats();
        prop_assert_eq!(s.lookups, s.hits + s.misses);
    }
}

/// A warm memo over unchanged state reuses every zone without a query.
#[test]
fn warm_rerun_reuses_every_zone() {
    let sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    let first = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s1 = memo.stats();
    assert_eq!((s1.hits, s1.misses), (0, 3), "cold run: all misses");
    let second = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s2 = memo.stats();
    assert_eq!((s2.hits, s2.misses), (3, 3), "warm run: all hits");
    assert_eq!(s2.invalidations, 0);
    assert_eq!(first.to_json(), second.to_json());
}

/// A leaf-content change dirties exactly the leaf; the anchor and the
/// intermediate zone splice from cache.
#[test]
fn leaf_change_reprobes_only_the_leaf() {
    let mut sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    sb.testbed
        .mutate_zone_everywhere(&name(LEAF_APEX), |z| z.bump_serial());
    let report = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s = memo.stats();
    assert_eq!(
        (s.hits, s.misses),
        (2, 4),
        "anchor+par reused, leaf re-probed"
    );
    assert_eq!(s.invalidations, 1);
    assert_eq!(report.to_json(), grok(&probe(&sb.testbed, &cfg)).to_json());
}

/// A parent-side change (DS update) dirties the parent **and** its child
/// through the parent edge of the memo key.
#[test]
fn parent_change_dirties_the_child_too() {
    let mut sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    sb.set_ds(&name(LEAF_APEX), Vec::new(), NOW);
    let report = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s = memo.stats();
    assert_eq!((s.hits, s.misses), (1, 5), "only the anchor survives");
    assert_eq!(report.to_json(), grok(&probe(&sb.testbed, &cfg)).to_json());
}

/// An anchor (trust-anchor zone) change flushes the whole chain.
#[test]
fn anchor_change_flushes_everything() {
    let mut sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    sb.testbed
        .mutate_zone_everywhere(&name(ANCHOR_APEX), |z| z.bump_serial());
    let report = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s = memo.stats();
    assert_eq!(
        (s.hits, s.misses),
        (0, 6),
        "nothing survives an anchor change"
    );
    assert_eq!(report.to_json(), grok(&probe(&sb.testbed, &cfg)).to_json());
}

/// A clock move keeps every cached probe (zero queries) but re-runs the
/// analysis: RRSIG validity windows read the clock.
#[test]
fn clock_move_reuses_probes_and_reruns_analysis() {
    let sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let mut later = cfg.clone();
    later.time = NOW + 500;
    let report = memo.probe_grok(&sb.testbed, &sb.testbed, &later);
    let s = memo.stats();
    assert_eq!(
        (s.hits, s.misses),
        (3, 3),
        "clock move alone re-probes nothing"
    );
    assert_eq!(report.time, NOW + 500);
    assert_eq!(
        report.to_json(),
        grok(&probe(&sb.testbed, &later)).to_json()
    );
}

/// A topology change (NS registration) is an epoch change: even though no
/// zone content moved, the whole memo flushes and the next walk re-observes
/// everything under the new server map.
#[test]
fn topology_change_flushes_the_epoch() {
    let mut sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let target = sb.anchor().servers[0].clone();
    sb.testbed.register_ns(name("ns-spare.a.com"), target);
    let report = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s = memo.stats();
    assert_eq!(
        (s.hits, s.misses),
        (0, 6),
        "epoch change leaves nothing to reuse"
    );
    assert_eq!(report.to_json(), grok(&probe(&sb.testbed, &cfg)).to_json());
}

/// A budget trip (KeyTrap-class zone) forces its cut dirty on the next
/// round even though no generation moved — a truncated analysis is never
/// replayed from cache — and the incremental report still equals scratch
/// both while tripped and after the zone is repaired.
#[test]
fn budget_trip_forces_reprobe_until_repaired() {
    let mut sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);

    inject_attack(&mut sb, AttackFamily::SigJam, NOW).expect("attack injects");
    let tripped = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    assert!(
        tripped
            .codes()
            .contains(&ErrorCode::ValidationBudgetExceeded),
        "SigJam did not trip the budget: {:?}",
        tripped.codes()
    );
    assert_eq!(
        tripped.to_json(),
        grok(&probe(&sb.testbed, &cfg)).to_json(),
        "tripped incremental run diverged from scratch"
    );
    let misses_after_trip = memo.stats().misses;

    // Same state, same clock: the tripped cut must be re-probed anyway,
    // and deterministic truncation reproduces the same report.
    let again = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    assert!(
        memo.stats().misses > misses_after_trip,
        "budget-tripped zone was spliced from cache instead of re-probed"
    );
    assert_eq!(again.to_json(), tripped.to_json());

    // Repair: re-signing strips the signature flood; the next round must
    // see the fix (not the cached truncation) and converge on the clean
    // scratch report.
    sb.resign_zone(&name(LEAF_APEX), NOW)
        .expect("leaf re-signs");
    let healed = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    assert!(
        !healed
            .codes()
            .contains(&ErrorCode::ValidationBudgetExceeded),
        "repaired zone still reports a budget trip"
    );
    assert_eq!(healed.to_json(), grok(&probe(&sb.testbed, &cfg)).to_json());
}

/// An observation gap (dead server) forces its zone dirty on the next
/// round even though no generation moved — the probe must either re-observe
/// the fault or watch it heal; it may never reuse "couldn't see".
#[test]
fn observation_gap_forces_reprobe_until_healed() {
    let sb = build_variant("nsec");
    let cfg = probe_cfg(&sb);
    let mut memo = GrokMemo::new();
    let dead = sb.leaf().servers[0].clone();
    let plan = FaultPlan {
        timeout_permille: 1000,
        only_server: Some(dead),
        ..FaultPlan::none(99)
    };
    let net = FaultNetwork::new(&sb.testbed, plan);
    let gapped = memo.probe_grok(&net, &sb.testbed, &cfg);
    assert!(!gapped.fully_observed(), "dead server must leave a gap");
    let misses_after_gap = memo.stats().misses;
    // Same state, same clock — but the gapped leaf must be re-probed, and
    // against the healthy network the gap heals.
    let healed = memo.probe_grok(&sb.testbed, &sb.testbed, &cfg);
    let s = memo.stats();
    assert!(healed.fully_observed(), "gap did not heal on re-probe");
    assert!(
        s.misses > misses_after_gap,
        "gapped zone was spliced from cache instead of re-probed"
    );
    assert_eq!(healed.to_json(), grok(&probe(&sb.testbed, &cfg)).to_json());
}
