//! Shared three-level sandbox corpus for the dnsviz integration tests:
//! the same 8 zone-shape variants drive the chaos sweep
//! (`probe_resilience`) and the incremental-equivalence harness
//! (`incremental_equivalence`).

#![allow(dead_code)]

use std::sync::OnceLock;

use ddx_dns::{name, RData, RrType};
use ddx_dnssec::Nsec3Config;
use ddx_dnsviz::{ProbeConfig, RetryPolicy};
use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

pub const NOW: u32 = 1_000_000;
pub const SANDBOX_SEED: u64 = 0xC7A0;
pub const QUERY_DOMAIN: &str = "www.chd.par.a.com";
pub const LEAF_APEX: &str = "chd.par.a.com";
pub const PAR_APEX: &str = "par.a.com";
pub const ANCHOR_APEX: &str = "a.com";

/// Builds one three-level sandbox (anchor → par → leaf) with the given leaf
/// spec tweaks and post-build zone mutation.
pub fn sandbox(tweak: impl FnOnce(&mut ZoneSpec), mutate: impl FnOnce(&mut Sandbox)) -> Sandbox {
    let mut leaf = ZoneSpec::conventional(name(LEAF_APEX));
    tweak(&mut leaf);
    let mut sb = build_sandbox(
        &[
            ZoneSpec::conventional(name(ANCHOR_APEX)),
            ZoneSpec::conventional(name(PAR_APEX)),
            leaf,
        ],
        NOW,
        SANDBOX_SEED,
    );
    mutate(&mut sb);
    sb
}

/// The variant labels, in corpus order.
pub const VARIANT_NAMES: [&str; 8] = [
    "nsec",
    "nsec-wildcard",
    "nsec3",
    "nsec3-optout-wildcard",
    "nsec-broken-chain",
    "nsec-corrupt-next",
    "nsec3-stripped-sigs",
    "no-ds",
];

/// Builds one corpus variant from scratch — for tests that mutate the
/// sandbox and therefore cannot share the [`variants`] statics.
pub fn build_variant(label: &str) -> Sandbox {
    match label {
        "nsec" => sandbox(|_| {}, |_| {}),
        "nsec-wildcard" => sandbox(|s| s.wildcard = true, |_| {}),
        "nsec3" => sandbox(|s| s.nsec3 = Some(Nsec3Config::default()), |_| {}),
        "nsec3-optout-wildcard" => sandbox(
            |s| {
                s.nsec3 = Some(Nsec3Config {
                    opt_out: true,
                    ..Nsec3Config::default()
                });
                s.wildcard = true;
            },
            |_| {},
        ),
        "nsec-broken-chain" => sandbox(
            |_| {},
            |sb| {
                sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
                    z.remove(&name(QUERY_DOMAIN), RrType::Nsec);
                });
            },
        ),
        "nsec-corrupt-next" => sandbox(
            |_| {},
            |sb| {
                sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
                    if let Some(set) = z.get_mut(&name(LEAF_APEX), RrType::Nsec) {
                        for rdata in &mut set.rdatas {
                            if let RData::Nsec(n) = rdata {
                                n.next_name = name("zzz.outside.test");
                            }
                        }
                    }
                });
            },
        ),
        "nsec3-stripped-sigs" => sandbox(
            |s| s.nsec3 = Some(Nsec3Config::default()),
            |sb| {
                sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
                    z.strip_type(RrType::Rrsig);
                });
            },
        ),
        "no-ds" => sandbox(|s| s.publish_ds = false, |_| {}),
        other => panic!("unknown corpus variant {other}"),
    }
}

/// The read-only zone-variant corpus, built once per test binary.
pub fn variants() -> &'static Vec<(&'static str, Sandbox)> {
    static VARIANTS: OnceLock<Vec<(&'static str, Sandbox)>> = OnceLock::new();
    VARIANTS.get_or_init(|| {
        VARIANT_NAMES
            .iter()
            .map(|label| (*label, build_variant(label)))
            .collect()
    })
}

/// The standard probe configuration for a corpus sandbox: every sandbox
/// zone is hinted, so incomplete delegations stay observable.
pub fn probe_cfg(sb: &Sandbox) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name(QUERY_DOMAIN),
        target_types: vec![RrType::A],
        time: NOW,
        retry: RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}
