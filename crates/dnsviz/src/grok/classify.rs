//! Snapshot classification (`sv/svm/sb/is/lm/ic`, paper §3.2.1) and
//! advisory warnings.

use ddx_dns::RData;

use super::{ZoneAnalysis, ZoneReport};
use crate::codes::WarningCode;
use crate::status::SnapshotStatus;

/// Status resolution, walking the chain top-down the way a validator does:
/// a broken (bogus) zone above makes the answer SERVFAIL before any
/// insecurity below could be proven, while a DS-less delegation switches the
/// rest of the chain to plain DNS (insecure) and masks errors below it.
pub(crate) fn classify(zones: &[ZoneReport], any_lame: bool, any_orphaned: bool) -> SnapshotStatus {
    if any_orphaned {
        return SnapshotStatus::Ic;
    }
    if any_lame {
        return SnapshotStatus::Lm;
    }
    let mut any_error = false;
    let mut any_critical = false;
    for z in zones {
        if !z.is_anchor && !z.has_ds {
            // Insecure delegation: validation stops here. Errors found
            // above this break decide between sb/svm; errors below cannot
            // cause SERVFAIL.
            return if any_critical {
                SnapshotStatus::Sb
            } else {
                SnapshotStatus::Is
            };
        }
        for e in &z.errors {
            any_error = true;
            any_critical |= e.critical;
        }
    }
    let query_signed = zones.last().map(|z| z.signed).unwrap_or(false);
    if !query_signed {
        return SnapshotStatus::Is;
    }
    if any_critical {
        SnapshotStatus::Sb
    } else if any_error {
        SnapshotStatus::Svm
    } else {
        SnapshotStatus::Sv
    }
}

/// Advisory findings (never status-affecting).
pub(crate) fn collect_warnings(za: &ZoneAnalysis) -> Vec<WarningCode> {
    let mut out = Vec::new();
    // NSEC3 salt (RFC 9276 SHOULD).
    let salted = za.zp.servers.iter().any(|sp| {
        [&sp.nxdomain, &sp.nodata]
            .into_iter()
            .flatten()
            .flat_map(|m| m.authorities.iter())
            .any(|r| matches!(&r.rdata, RData::Nsec3(n) if !n.salt.is_empty()))
    });
    if salted {
        out.push(WarningCode::Nsec3SaltPresent);
    }
    // Single-key zones.
    if za.dnskeys.len() == 1 {
        out.push(WarningCode::SingleKeyZone);
    }
    // SHA-1 DS digests.
    if za.ds_set.iter().any(|d| d.digest_type == 1) {
        out.push(WarningCode::Sha1DsDigest);
    }
    // Very short signature windows: look at the apex SOA signature.
    let short = za.zp.servers.iter().any(|sp| {
        sp.soa
            .as_ref()
            .map(|m| {
                m.answers.iter().any(|r| {
                    matches!(&r.rdata, RData::Rrsig(s)
                        if s.expiration.saturating_sub(s.inception) < 2 * 86_400)
                })
            })
            .unwrap_or(false)
    });
    if short {
        out.push(WarningCode::ShortSignatureLifetime);
    }
    out
}
