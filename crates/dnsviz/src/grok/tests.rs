//! Behavioral tests for the grok analysis passes: healthy hierarchies,
//! injected violations, and status classification.

use super::*;
use crate::probe::{probe, ProbeConfig};
use ddx_dns::name;
use ddx_dnssec::{
    make_ds, resign_rrset, sigs_covering, DigestType, KeyRole, Nsec3Config, SignOptions,
};
use ddx_server::{build_sandbox, Sandbox, ServerBehavior, ZoneSpec};

const NOW: u32 = 1_000_000;

fn standard_sandbox(nsec3: Option<Nsec3Config>) -> Sandbox {
    let mut leaf = ZoneSpec::conventional(name("chd.par.a.com"));
    leaf.nsec3 = nsec3;
    build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
            leaf,
        ],
        NOW,
        11,
    )
}

fn cfg_for(sb: &Sandbox) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: sb.leaf().apex.child("www").unwrap(),
        target_types: vec![RrType::A],
        time: NOW,
        retry: crate::probe::RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

fn run(sb: &Sandbox) -> GrokReport {
    grok(&probe(&sb.testbed, &cfg_for(sb)))
}

#[test]
fn healthy_nsec_hierarchy_is_sv() {
    let sb = standard_sandbox(None);
    let report = run(&sb);
    assert!(report.clean(), "unexpected errors: {:#?}", report.codes());
    assert_eq!(report.status, SnapshotStatus::Sv);
    assert_eq!(report.zones.len(), 3);
    assert!(report.zones.iter().all(|z| z.signed));
}

#[test]
fn healthy_nsec3_hierarchy_is_sv() {
    let sb = standard_sandbox(Some(Nsec3Config::default()));
    let report = run(&sb);
    assert!(report.clean(), "unexpected errors: {:#?}", report.codes());
    assert_eq!(report.status, SnapshotStatus::Sv);
}

#[test]
fn nzic_yields_svm() {
    let sb = standard_sandbox(Some(Nsec3Config {
        iterations: 10,
        ..Default::default()
    }));
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Svm);
    assert!(report.codes().contains(&ErrorCode::Nsec3IterationsNonzero));
    assert!(report
        .target_zone_codes()
        .contains(&ErrorCode::Nsec3IterationsNonzero));
    // The typed payload carries the iteration count directly.
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::Nsec3IterationsNonzero)
        .unwrap();
    assert_eq!(e.detail, ErrorDetail::Nsec3Iterations { iterations: 10 });
}

#[test]
fn expired_signature_is_sb() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
    let www = apex.child("www").unwrap();
    sb.testbed.mutate_zone_everywhere(&apex, |zone| {
        resign_rrset(
            zone,
            &www,
            RrType::A,
            &zsk,
            SignOptions {
                inception: 0,
                expiration: NOW - 100,
            },
        );
    });
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Sb);
    assert!(report.codes().contains(&ErrorCode::RrsigExpired));
    // Typed detail names the affected RRset and the validity window.
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::RrsigExpired)
        .unwrap();
    match &e.detail {
        ErrorDetail::SignatureFailure { name, rtype, error } => {
            assert_eq!(name, &www);
            assert_eq!(*rtype, RrType::A);
            assert!(matches!(
                error,
                ddx_dnssec::VerifyError::Expired { expiration, .. } if *expiration == NOW - 100
            ));
        }
        other => panic!("expected SignatureFailure, got {other:?}"),
    }
}

#[test]
fn removed_ds_is_insecure() {
    let mut sb = standard_sandbox(None);
    sb.set_ds(&name("chd.par.a.com"), vec![], NOW);
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Is);
}

#[test]
fn corrupted_ds_digest_is_sb() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let ksk = sb.zone(&apex).unwrap().ring.active(KeyRole::Ksk, NOW)[0].clone();
    let mut ds = make_ds(&apex, &ksk.dnskey, DigestType::Sha256);
    ds.digest[0] ^= 0xFF;
    sb.set_ds(&apex, vec![ds], NOW);
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Sb);
    let codes = report.codes();
    assert!(codes.contains(&ErrorCode::DsDigestInvalid));
    assert!(codes.contains(&ErrorCode::NoSecureEntryPoint));
    // The DS-link detail identifies the failing key tag and problem class.
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::DsDigestInvalid)
        .unwrap();
    match &e.detail {
        ErrorDetail::DsLink {
            key_tag, problem, ..
        } => {
            assert_eq!(*key_tag, ksk.key_tag());
            assert_eq!(*problem, DsProblem::DigestMismatch);
        }
        other => panic!("expected DsLink, got {other:?}"),
    }
}

#[test]
fn ds_for_absent_algorithm() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let ksk = sb.zone(&apex).unwrap().ring.active(KeyRole::Ksk, NOW)[0].clone();
    let good = make_ds(&apex, &ksk.dnskey, DigestType::Sha256);
    // Extraneous DS referencing RSASHA512 (no such key in the zone).
    let bogus = ddx_dns::Ds {
        key_tag: 4242,
        algorithm: 10,
        digest_type: 2,
        digest: vec![0xAB; 32],
    };
    sb.set_ds(&apex, vec![good, bogus], NOW);
    let report = run(&sb);
    let codes = report.codes();
    assert!(codes.contains(&ErrorCode::DsMissingKeyForAlgorithm));
    // A good link still exists, so no NoSecureEntryPoint...
    assert!(!codes.contains(&ErrorCode::NoSecureEntryPoint));
    assert_eq!(report.status, SnapshotStatus::Sb);
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::DsMissingKeyForAlgorithm)
        .unwrap();
    assert_eq!(e.detail.key_tag(), Some(4242));
}

#[test]
fn dnskey_missing_for_ds() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    sb.testbed.mutate_zone_everywhere(&apex, |zone| {
        zone.strip_type(RrType::Dnskey);
    });
    let report = run(&sb);
    assert!(report.codes().contains(&ErrorCode::DnskeyMissingForDs));
    assert_eq!(report.status, SnapshotStatus::Sb);
}

#[test]
fn inconsistent_dnskey_between_servers() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
    // Remove the ZSK DNSKEY record from server #0 only.
    let id = sb.zone(&apex).unwrap().servers[0].clone();
    sb.testbed
        .server_mut(&id)
        .unwrap()
        .zone_mut(&apex)
        .unwrap()
        .remove_rdata(&apex, &RData::Dnskey(zsk.dnskey.clone()));
    let report = run(&sb);
    assert!(report
        .codes()
        .contains(&ErrorCode::DnskeyMissingFromServers));
    // The detail carries the offending server's identity.
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::DnskeyMissingFromServers)
        .unwrap();
    assert!(matches!(
        &e.detail,
        ErrorDetail::ServerKeySetDiffers {
            disjoint: false,
            ..
        }
    ));
}

#[test]
fn missing_rrsig_is_sb() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let www = apex.child("www").unwrap();
    sb.testbed.mutate_zone_everywhere(&apex, |zone| {
        ddx_dnssec::remove_sigs_covering(zone, &www, RrType::A);
    });
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Sb);
    assert!(report.codes().contains(&ErrorCode::RrsigMissing));
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::RrsigMissing)
        .unwrap();
    assert_eq!(
        e.detail.rrset().map(|(n, t)| (n.clone(), t)),
        Some((www, RrType::A))
    );
}

#[test]
fn rrsig_missing_from_one_server_only() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let www = apex.child("www").unwrap();
    let id = sb.zone(&apex).unwrap().servers[0].clone();
    let zone = sb.testbed.server_mut(&id).unwrap().zone_mut(&apex).unwrap();
    ddx_dnssec::remove_sigs_covering(zone, &www, RrType::A);
    let report = run(&sb);
    assert!(report.codes().contains(&ErrorCode::RrsigMissingFromServers));
    // The other server still serves a valid path.
    assert_ne!(report.status, SnapshotStatus::Sv);
}

#[test]
fn stripped_nsec_chain_breaks_denial() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    sb.testbed.mutate_zone_everywhere(&apex, |zone| {
        zone.strip_type(RrType::Nsec);
    });
    let report = run(&sb);
    assert!(report.codes().contains(&ErrorCode::NsecProofMissing));
    assert_eq!(report.status, SnapshotStatus::Sb);
}

#[test]
fn revoked_sole_ksk() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    {
        let z = sb.zone_mut(&apex).unwrap();
        let tag = z.ring.active(KeyRole::Ksk, NOW)[0].key_tag();
        z.ring.by_tag_mut(tag).unwrap().revoke();
    }
    sb.resign_zone(&apex, NOW).unwrap();
    let report = run(&sb);
    let codes = report.codes();
    assert!(
        codes.contains(&ErrorCode::DnskeyRevokedNoOtherSep),
        "got {codes:?}"
    );
    // The old DS now points at a key whose tag changed → broken entry.
    assert_eq!(report.status, SnapshotStatus::Sb);
    // The typed detail exposes the revoked key's tag to DFixer's naive
    // baseline without string parsing.
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::DnskeyRevokedNoOtherSep)
        .unwrap();
    assert!(matches!(e.detail, ErrorDetail::RevokedSoleSep { .. }));
    assert!(e.detail.key_tag().is_some());
}

#[test]
fn lame_leaf_is_lm() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    for id in sb.zone(&apex).unwrap().servers.clone() {
        sb.testbed.server_mut(&id).unwrap().behavior = ServerBehavior::Unresponsive;
    }
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Lm);
}

#[test]
fn missing_delegation_is_ic() {
    let mut sb = standard_sandbox(None);
    let leaf = name("chd.par.a.com");
    let parent = name("par.a.com");
    sb.testbed.mutate_zone_everywhere(&parent, |zone| {
        zone.remove(&leaf, RrType::Ns);
        zone.remove(&leaf, RrType::Ds);
    });
    let report = run(&sb);
    assert_eq!(report.status, SnapshotStatus::Ic);
}

#[test]
fn report_json_round_trip() {
    let sb = standard_sandbox(None);
    let report = run(&sb);
    let json = report.to_json();
    let back = GrokReport::from_json(&json).unwrap();
    assert_eq!(back.status, report.status);
    assert_eq!(back.zones.len(), report.zones.len());
}

#[test]
fn incomplete_algorithm_setup_detected() {
    let mut sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    // Publish an extra RSASHA256 DNSKEY that signs nothing.
    let extra = ddx_dnssec::KeyPair::generate(
        &mut rand::rngs::StdRng::seed_from_u64(99),
        apex.clone(),
        ddx_dnssec::Algorithm::RsaSha256,
        2048,
        KeyRole::Zsk,
        NOW,
    );
    use rand::SeedableRng;
    let dnskey = extra.dnskey.clone();
    let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
    sb.testbed.mutate_zone_everywhere(&apex, |zone| {
        zone.add(ddx_dns::Record::new(
            apex.clone(),
            ddx_dnssec::DNSKEY_TTL,
            RData::Dnskey(dnskey.clone()),
        ));
        // Re-sign the DNSKEY RRset so it stays valid.
        resign_rrset(
            zone,
            &apex,
            RrType::Dnskey,
            &zsk,
            SignOptions {
                inception: NOW - 3600,
                expiration: NOW + 86_400,
            },
        );
    });
    let report = run(&sb);
    assert!(report
        .codes()
        .contains(&ErrorCode::DnskeyAlgorithmWithoutRrsig));
    // Should be tolerated (svm), not bogus.
    assert_eq!(report.status, SnapshotStatus::Svm);
    let e = report
        .errors()
        .find(|e| e.code == ErrorCode::DnskeyAlgorithmWithoutRrsig)
        .unwrap();
    assert_eq!(
        e.detail,
        ErrorDetail::AlgorithmUnused {
            algorithm: ddx_dnssec::Algorithm::RsaSha256.code(),
            scope: AlgorithmScope::Dnskey,
        }
    );
}

#[test]
fn sigs_survive_probe_encoding() {
    // Sanity: the signatures the sandbox produces verify through the
    // whole probe path (no canonicalization drift).
    let sb = standard_sandbox(None);
    let apex = name("chd.par.a.com");
    let server_zone = sb
        .testbed
        .server(&sb.zone(&apex).unwrap().servers[0])
        .unwrap()
        .zone(&apex)
        .unwrap();
    assert!(!sigs_covering(server_zone, &apex, RrType::Soa).is_empty());
}

#[cfg(feature = "trace")]
#[test]
fn grok_emits_trace_events_per_pass() {
    ddx_dns::trace::take_events(); // drain anything earlier tests left
    let sb = standard_sandbox(None);
    let _ = run(&sb);
    let events = ddx_dns::trace::take_events();
    let pass_events: Vec<_> = events
        .iter()
        .filter(|e| e.target == "dnsviz::grok" && e.message == "pass complete")
        .collect();
    // 3 zones × 6 passes.
    assert_eq!(pass_events.len(), 18, "{events:#?}");
    assert!(pass_events
        .iter()
        .any(|e| e.fields.iter().any(|(k, v)| *k == "pass" && v == "denial")));
}

mod warnings {
    use super::*;
    use crate::codes::WarningCode;
    use ddx_dnssec::Nsec3Config;
    use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

    fn run(sb: &Sandbox) -> GrokReport {
        let cfg = ProbeConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            query_domain: sb.leaf().apex.child("www").unwrap(),
            target_types: vec![RrType::A],
            time: NOW,
            retry: crate::probe::RetryPolicy::default(),
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
        };
        grok(&probe(&sb.testbed, &cfg))
    }

    #[test]
    fn salted_nsec3_yields_warning_not_error() {
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.nsec3 = Some(Nsec3Config {
            iterations: 0,
            salt: vec![0x8d, 0x45],
            ..Default::default()
        });
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 81);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        let leaf_report = report.zones.last().unwrap();
        assert!(leaf_report
            .warnings
            .contains(&WarningCode::Nsec3SaltPresent));
    }

    #[test]
    fn sha1_ds_yields_warning() {
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.ds_digests = vec![ddx_dnssec::DigestType::Sha1];
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 82);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        assert!(report
            .zones
            .last()
            .unwrap()
            .warnings
            .contains(&WarningCode::Sha1DsDigest));
    }

    #[test]
    fn single_key_zone_warned() {
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.keys = vec![(
            ddx_dnssec::KeyRole::Ksk,
            ddx_dnssec::Algorithm::EcdsaP256Sha256,
            256,
        )];
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 83);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        assert!(report
            .zones
            .last()
            .unwrap()
            .warnings
            .contains(&WarningCode::SingleKeyZone));
    }

    #[test]
    fn clean_conventional_zone_has_no_warnings() {
        let sb = build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
            ],
            NOW,
            84,
        );
        let report = run(&sb);
        for z in &report.zones {
            assert!(z.warnings.is_empty(), "{:?}", z.warnings);
        }
    }
}
