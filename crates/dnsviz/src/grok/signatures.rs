//! Signature pass: RRSIG validation over every RRset each server returned,
//! plus cross-server missing-signature detection.

use std::collections::{BTreeMap, BTreeSet};

use ddx_dns::{Dnskey, Message, Name, RRset, RrType};
use ddx_dnssec::{verify_rrset, VerifyError};

use super::{sets_with_sigs, AnalysisPass, ErrorDetail, ZoneAnalysis};
use crate::codes::ErrorCode;
use crate::probe::ServerProbe;

pub(crate) fn map_verify_error(err: &VerifyError) -> ErrorCode {
    match err {
        VerifyError::Expired { .. } => ErrorCode::RrsigExpired,
        VerifyError::NotYetValid { .. } => ErrorCode::RrsigNotYetValid,
        VerifyError::BadSignature => ErrorCode::RrsigInvalid,
        VerifyError::SignerMismatch { .. } => ErrorCode::RrsigSignerMismatch,
        VerifyError::BadLabelCount { .. } => ErrorCode::RrsigLabelsExceedOwner,
        VerifyError::BadSignatureLength { .. } => ErrorCode::RrsigBadLength,
        VerifyError::Revoked => ErrorCode::RevokedKeyInUse,
        VerifyError::NotZoneKey => ErrorCode::RrsigInvalidRdata,
        VerifyError::KeyTagMismatch { .. } | VerifyError::AlgorithmMismatch { .. } => {
            ErrorCode::RrsigInvalidRdata
        }
    }
}

pub(crate) struct SignaturesPass;

impl AnalysisPass for SignaturesPass {
    fn name(&self) -> &'static str {
        "signatures"
    }

    fn run(&self, za: &mut ZoneAnalysis) {
        let zone = za.zp.zone.clone();
        // (name key, type code) → (owner, servers that served it signed /
        // unsigned). Keyed on the canonical name string so emission order
        // matches the pre-split implementation.
        let mut signed_on: BTreeMap<(String, u16), (Name, Vec<bool>)> = BTreeMap::new();
        // Deduplicate identical findings across servers.
        let mut seen: BTreeSet<(ErrorCode, String)> = BTreeSet::new();

        let server_probes: Vec<ServerProbe> = za
            .zp
            .servers
            .iter()
            .filter(|s| s.responsive)
            .cloned()
            .collect();
        // Cloned once so the fallback key list does not hold a borrow of
        // `za` across the `analyze_rrset(&mut za, ..)` calls below.
        let zone_keys: Vec<Dnskey> = za.dnskeys.clone();
        for sp in &server_probes {
            if za.budget_tripped() {
                break;
            }
            let own_keys: Vec<&Dnskey> = sp.dnskeys().collect();
            let keys: Vec<&Dnskey> = if own_keys.is_empty() {
                zone_keys.iter().collect()
            } else {
                own_keys
            };
            let mut messages: Vec<&Message> = Vec::new();
            for m in [
                &sp.soa,
                &sp.ns,
                &sp.dnskey,
                &sp.nxdomain,
                &sp.nxdomain_hi,
                &sp.nodata,
                &sp.nsec3param,
            ]
            .into_iter()
            .flatten()
            {
                messages.push(m);
            }
            for (_, m) in &sp.answers {
                if let Some(m) = m {
                    messages.push(m);
                }
            }
            let mut checked: BTreeSet<(String, u16)> = BTreeSet::new();
            for msg in messages {
                if za.budget_tripped() {
                    break;
                }
                for section in [&msg.answers, &msg.authorities] {
                    for (set, sigs) in sets_with_sigs(section) {
                        // Only this zone's data, and only signable sets.
                        if !set.name.is_subdomain_of(&zone) || set.rtype == RrType::Rrsig {
                            continue;
                        }
                        // A delegation NS set (authority section referral) is
                        // legitimately unsigned; skip NS sets not at the apex.
                        if set.rtype == RrType::Ns && set.name != zone {
                            continue;
                        }
                        let key = (set.name.key(), set.rtype.code());
                        if !checked.insert(key.clone()) {
                            continue;
                        }
                        signed_on
                            .entry(key)
                            .or_insert_with(|| (set.name.clone(), Vec::new()))
                            .1
                            .push(!sigs.is_empty());
                        analyze_rrset(za, &set, &sigs, &keys, &mut seen);
                    }
                }
            }
        }

        // Cross-server missing-signature detection. Skipped after a budget
        // trip: the signed/unsigned tallies are partial, and a "missing"
        // verdict from evidence we stopped collecting would be untrustworthy.
        if za.budget_tripped() {
            return;
        }
        for ((_, type_code), (name, flags)) in &signed_on {
            let missing = flags.iter().filter(|f| !**f).count();
            if missing == 0 {
                continue;
            }
            let rtype = RrType::from_code(*type_code);
            let everywhere = missing == flags.len();
            let code = if !everywhere {
                ErrorCode::RrsigMissingFromServers
            } else if rtype == RrType::Dnskey {
                ErrorCode::RrsigMissingForDnskey
            } else {
                ErrorCode::RrsigMissing
            };
            let detail = ErrorDetail::RrsetUnsigned {
                name: name.clone(),
                rtype,
            };
            if seen.insert((code, detail.to_string())) {
                za.push(code, Some(code.is_critical() && everywhere), detail);
            }
        }
    }
}

/// Validates one RRset's signatures against the zone's keys.
fn analyze_rrset(
    za: &mut ZoneAnalysis,
    set: &RRset,
    sigs: &[ddx_dns::Rrsig],
    keys: &[&Dnskey],
    seen: &mut BTreeSet<(ErrorCode, String)>,
) {
    let zone = za.zp.zone.clone();
    let now = za.now;
    if sigs.is_empty() {
        return; // handled by the cross-server pass
    }
    if za.budget_tripped() {
        return;
    }
    let mut any_valid = false;
    let mut failures: Vec<(ErrorCode, ErrorDetail)> = Vec::new();
    for sig in sigs {
        // One logical unit per RRSIG considered, charged up front: SigJam
        // and LockCram zones do their damage with signatures that *fail*,
        // so the meter cannot wait for verify_rrset to run.
        if !za.charge_sig_verifications(1) {
            break;
        }
        za.algorithms_in_sigs.insert(sig.algorithm);
        let key = keys.iter().find(|k| k.key_tag() == sig.key_tag);
        let Some(key) = key else {
            let key_algos: BTreeSet<u8> = keys.iter().map(|k| k.algorithm).collect();
            let code = if key_algos.contains(&sig.algorithm) {
                ErrorCode::RrsigUnknownKeyTag
            } else {
                ErrorCode::RrsigAlgorithmWithoutDnskey
            };
            failures.push((
                code,
                ErrorDetail::SigNoMatchingKey {
                    name: set.name.clone(),
                    rtype: set.rtype,
                    key_tag: sig.key_tag,
                    algorithm: sig.algorithm,
                },
            ));
            continue;
        };
        // The Original TTL comparison is independent of the cryptographic
        // outcome (a served TTL above the signed original is wrong either
        // way); a lower served TTL is fine (decremented caches).
        if set.ttl > sig.original_ttl {
            failures.push((
                ErrorCode::OriginalTtlExceeded,
                ErrorDetail::TtlExceedsOriginal {
                    name: set.name.clone(),
                    rtype: set.rtype,
                    ttl: set.ttl,
                    original_ttl: sig.original_ttl,
                },
            ));
        }
        match verify_rrset(set, sig, key, &zone, now) {
            Ok(()) => {
                any_valid = true;
                za.algorithms_seen_valid.insert(sig.algorithm);
                if now.saturating_add(set.ttl) > sig.expiration {
                    failures.push((
                        ErrorCode::TtlBeyondSignatureExpiry,
                        ErrorDetail::TtlOutlivesSignature {
                            name: set.name.clone(),
                            rtype: set.rtype,
                            ttl: set.ttl,
                        },
                    ));
                }
            }
            Err(err) => {
                let code = map_verify_error(&err);
                failures.push((
                    code,
                    ErrorDetail::SignatureFailure {
                        name: set.name.clone(),
                        rtype: set.rtype,
                        error: err,
                    },
                ));
            }
        }
    }
    for (code, detail) in failures {
        if seen.insert((code, detail.to_string())) {
            // If some other signature fully validated this RRset, the
            // failure does not break the authentication path.
            let critical = code.is_critical() && !any_valid;
            za.push(code, Some(critical), detail);
        }
    }
}
