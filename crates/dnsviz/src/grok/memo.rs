//! Incremental probe→grok: generation-keyed memoization across fixer
//! iterations (Janus-style).
//!
//! A [`GrokMemo`] caches, per zone cut of the last walk, the probe
//! observations ([`ZoneProbe`]) and the finished analysis ([`ZoneReport`]),
//! keyed on the *content fingerprints of the zone and its parent* — the
//! delegation and DS passes read parent-side material, so a zone's analysis
//! is a pure function of `(zone, parent, probe config)`. On the next
//! validation of the same configuration the memo:
//!
//! 1. recomputes the `(zone_fp, parent_fp)` key of every cached cut from
//!    the live [`GenerationSource`] stamps,
//! 2. reuses the *clean prefix* of the walk verbatim (zero queries),
//! 3. resumes the live delegation walk at the first dirty cut using the
//!    cached loop-carried state ([`WalkStart`]), and
//! 4. splices cached [`ZoneReport`]s into the fresh [`GrokReport`] so only
//!    re-probed zones re-run the analysis passes.
//!
//! Invalidation matrix:
//!
//! | change | effect |
//! |--------|--------|
//! | leaf zone content | leaf dirty (own fp) — parents reused |
//! | parent zone content (e.g. DS update) | parent dirty **and** every child dirty (parent edge of the key) |
//! | anchor / trust-anchor zone | everything flushed (the anchor is every chain's ancestor) |
//! | testbed topology (servers, NS hosts) | everything flushed (epoch) |
//! | probe config (anchor, query, targets, hints, retry) | everything flushed (epoch) |
//! | clock (`cfg.time`) | probes reused, every cached *report* re-analyzed (RRSIG windows read the clock) |
//! | observation gap recorded on a cut | that cut force-dirty next round (chaos semantics preserved) |
//! | validation budget tripped on a cut | that cut force-dirty next round (a truncated analysis is never reused; the fix must re-prove itself) |
//!
//! The dirty-prefix rule is what makes mid-chain resumption sound: the
//! loop-carried state entering lap *d* (referral NS names, parent-side DS
//! responses and their failures) was produced entirely by laps `< d`, so if
//! every cut before `d` is clean, the cached [`WalkStart`] for `d` is
//! exactly what a from-scratch walk would have computed.
//!
//! Chaos interaction: a cut whose cached observation contains any
//! retry-exhausted query is *never* reused — faults must re-manifest (or
//! heal) through live queries, so fault semantics are identical to a
//! from-scratch probe under the same deterministic fault plan. Note the
//! memo only guarantees byte-for-byte equality against stateless or
//! freshly-instantiated deterministic networks; a flapping fault plan
//! advances a per-instance virtual clock per query, making observations
//! order-dependent — use from-scratch probes there.

use ddx_server::{GenerationSource, Network};

use crate::probe::{
    hint_pass, walk_chain, LapMeta, ProbeConfig, ProbeResult, Prober, WalkStart, ZoneProbe,
    MAX_WALK_DEPTH,
};

use super::{
    analyze_zone, chain_flags, classify, pass_histograms, GrokReport, ValidationBudget, ZoneReport,
};
use crate::codes::ErrorCode;

/// Parent-fingerprint slot for the anchor (it has no parent in the walk).
const NO_PARENT_FP: u64 = 0x414E_4348_4F52_0000;

/// Cumulative accounting for one memo instance. The registry-level
/// invariant `grok.memo.lookups == grok.memo.hits + grok.memo.misses`
/// holds per instance too: every zone of every produced [`ProbeResult`] is
/// counted exactly once, as a hit (spliced from cache) or a miss (probed
/// live).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Zones accounted across all incremental probes (hits + misses).
    pub lookups: u64,
    /// Zones spliced from cache without issuing a single query.
    pub hits: u64,
    /// Zones probed live (cold, dirty, or collateral re-walk).
    pub misses: u64,
    /// Cached entries discarded because their key changed, they carried an
    /// observation gap, or the epoch/anchor changed under them.
    pub invalidations: u64,
}

impl MemoStats {
    /// Hits, as seen by the probe layer (`probe.zones_skipped`).
    pub fn zones_skipped(&self) -> u64 {
        self.hits
    }
}

/// Global-registry handles, resolved once per memo.
struct MemoObs {
    lookups: ddx_obs::Counter,
    hits: ddx_obs::Counter,
    misses: ddx_obs::Counter,
    invalidations: ddx_obs::Counter,
    zones_skipped: ddx_obs::Counter,
}

impl MemoObs {
    fn new() -> Self {
        MemoObs {
            lookups: ddx_obs::counter("grok.memo.lookups", &[]),
            hits: ddx_obs::counter("grok.memo.hits", &[]),
            misses: ddx_obs::counter("grok.memo.misses", &[]),
            invalidations: ddx_obs::counter("grok.memo.invalidations", &[]),
            zones_skipped: ddx_obs::counter("probe.zones_skipped", &[]),
        }
    }
}

/// One cached zone cut.
struct MemoEntry {
    /// `(zone_fp, parent_fp)` at the time the observation was taken;
    /// `None` when the zone (or its parent) had no trackable fingerprint —
    /// such entries are always dirty.
    key: Option<(u64, u64)>,
    /// Walk byproducts needed to resume at this lap (chain entries only).
    meta: Option<LapMeta>,
    probe: ZoneProbe,
    /// Filled by [`GrokMemo::grok_incremental`]; entries survive with
    /// their report only while their key stays clean.
    report: Option<ZoneReport>,
    /// The clock the cached report was analyzed at. Probe observations are
    /// time-independent (servers answer from static zone content), but
    /// RRSIG validity is not — a clock move keeps the cached *probe* and
    /// re-runs only the *analysis*.
    report_time: u32,
    /// Any retry-exhausted query observed at this cut → force-dirty.
    gapped: bool,
    /// The cached report carries [`ErrorCode::ValidationBudgetExceeded`]
    /// → force-dirty: the analysis was cut short, so the next round must
    /// re-probe and re-analyze (and observe any remediation) instead of
    /// replaying the truncated verdict from cache.
    budget_tripped: bool,
}

fn is_gapped(zp: &ZoneProbe) -> bool {
    !zp.lookup_failures.is_empty() || zp.servers.iter().any(|s| !s.failures.is_empty())
}

fn entry_key(gens: &dyn GenerationSource, zp: &ZoneProbe) -> Option<(u64, u64)> {
    let own = gens.zone_fingerprint(&zp.zone)?;
    let parent = match &zp.parent {
        None => NO_PARENT_FP,
        Some(p) => gens.zone_fingerprint(p)?,
    };
    Some((own, parent))
}

/// FNV-1a over a byte slice, continuing from `acc`.
fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        acc ^= u64::from(*b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Everything outside per-zone content that shapes the walk: the probe
/// configuration and the testbed topology. Any difference flushes the
/// whole memo. The clock (`cfg.time`) is deliberately *not* part of the
/// epoch — servers answer from static zone content, so probe observations
/// are time-independent; only cached reports are re-keyed on time (see
/// [`MemoEntry::report_time`]).
fn epoch_fingerprint(gens: &dyn GenerationSource, cfg: &ProbeConfig) -> u64 {
    let mut acc = fnv1a(FNV_OFFSET, &gens.topology_generation().to_le_bytes());
    acc = fnv1a(acc, cfg.anchor_zone.key().as_bytes());
    for s in &cfg.anchor_servers {
        acc = fnv1a(acc, s.0.as_bytes());
    }
    acc = fnv1a(acc, cfg.query_domain.key().as_bytes());
    for t in &cfg.target_types {
        acc = fnv1a(acc, &t.code().to_le_bytes());
    }
    acc = fnv1a(acc, &cfg.retry.attempts.to_le_bytes());
    acc = fnv1a(acc, &cfg.retry.backoff_base_ms.to_le_bytes());
    for (zone, servers) in &cfg.hints {
        acc = fnv1a(acc, zone.key().as_bytes());
        for s in servers {
            acc = fnv1a(acc, s.0.as_bytes());
        }
    }
    acc
}

/// The incremental probe→grok cache. One instance follows one query
/// domain across revalidations (a fixer run, a watch loop); see the module
/// docs for the keying and invalidation rules.
#[derive(Default)]
pub struct GrokMemo {
    epoch: Option<u64>,
    /// Walk-order chain entries (anchor first), then hint-pass orphans.
    chain: Vec<MemoEntry>,
    orphans: Vec<MemoEntry>,
    stats: MemoStats,
    obs: Option<MemoObs>,
    /// Per-zone work caps applied to every analysis this memo runs
    /// ([`ValidationBudget::default`] unless overridden via
    /// [`GrokMemo::set_budget`]). The budget is not part of the epoch
    /// fingerprint: a tripped analysis already force-dirties its entry, so
    /// changing the budget mid-stream can only re-run analyses that were
    /// never cached as truncated.
    budget: ValidationBudget,
}

impl GrokMemo {
    pub fn new() -> Self {
        GrokMemo::default()
    }

    /// Cumulative accounting since construction.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Overrides the per-zone [`ValidationBudget`] applied to every
    /// analysis this memo runs (campaign pools thread explicit caps
    /// through here). Takes effect on the next [`GrokMemo::grok_incremental`];
    /// already-cached clean reports stay valid — only truncated analyses
    /// are ever re-run, and those force-dirty themselves.
    pub fn set_budget(&mut self, budget: ValidationBudget) {
        self.budget = budget;
    }

    /// The budget applied to analyses run through this memo.
    pub fn budget(&self) -> &ValidationBudget {
        &self.budget
    }

    /// Drops every cached entry (counted as invalidations).
    pub fn invalidate_all(&mut self) {
        let dropped = (self.chain.len() + self.orphans.len()) as u64;
        if dropped > 0 {
            self.stats.invalidations += dropped;
            self.obs().invalidations.add(dropped);
        }
        self.chain.clear();
        self.orphans.clear();
        self.epoch = None;
    }

    fn obs(&mut self) -> &MemoObs {
        self.obs.get_or_insert_with(MemoObs::new)
    }

    fn hit(&mut self, n: u64) {
        self.stats.lookups += n;
        self.stats.hits += n;
        let obs = self.obs();
        obs.lookups.add(n);
        obs.hits.add(n);
        obs.zones_skipped.add(n);
    }

    fn miss(&mut self, n: u64) {
        self.stats.lookups += n;
        self.stats.misses += n;
        let obs = self.obs();
        obs.lookups.add(n);
        obs.misses.add(n);
    }

    fn invalidated(&mut self, n: u64) {
        if n > 0 {
            self.stats.invalidations += n;
            self.obs().invalidations.add(n);
        }
    }

    /// Incremental [`crate::probe::probe`]: reuses every clean cached zone
    /// cut, resumes the live walk at the first dirty one, and returns a
    /// [`ProbeResult`] indistinguishable (zone-wise) from a from-scratch
    /// walk of the current state. `health`/`virtual_ms` cover only the
    /// queries actually issued.
    pub fn probe_incremental(
        &mut self,
        net: &dyn Network,
        gens: &dyn GenerationSource,
        cfg: &ProbeConfig,
    ) -> ProbeResult {
        ddx_obs::counter("probe.walks", &[]).inc();
        let _walk_timer = ddx_obs::histogram("probe.walk_us", &[]).start_timer();

        // Epoch gate: config/topology changes flush everything (the clock
        // is not part of the epoch — see `epoch_fingerprint`).
        let epoch = epoch_fingerprint(gens, cfg);
        if self.epoch != Some(epoch) {
            self.invalidate_all();
            self.epoch = Some(epoch);
        }

        // Evaluate cached keys against the live stamps.
        let chain_dirty: Vec<bool> = self
            .chain
            .iter()
            .map(|e| {
                e.gapped
                    || e.budget_tripped
                    || e.key.is_none()
                    || entry_key(gens, &e.probe) != e.key
            })
            .collect();
        let orphan_dirty: Vec<bool> = self
            .orphans
            .iter()
            .map(|e| {
                e.gapped
                    || e.budget_tripped
                    || e.key.is_none()
                    || entry_key(gens, &e.probe) != e.key
            })
            .collect();
        let first_dirty = chain_dirty.iter().position(|d| *d);

        match (self.chain.is_empty(), first_dirty) {
            // Whole chain clean.
            (false, None) => {
                if orphan_dirty.iter().any(|d| *d) {
                    // Orphan set may have shifted: reuse the chain, re-run
                    // the hint pass live for every orphan.
                    self.invalidated(orphan_dirty.iter().filter(|d| **d).count() as u64);
                    self.hit(self.chain.len() as u64);
                    let mut prober = Prober::new(net, cfg.retry.clone());
                    let mut zones: Vec<ZoneProbe> =
                        self.chain.iter().map(|e| e.probe.clone()).collect();
                    let n_chain = zones.len();
                    hint_pass(&mut prober, cfg, &mut zones);
                    self.miss((zones.len() - n_chain) as u64);
                    self.orphans = zones[n_chain..]
                        .iter()
                        .map(|zp| MemoEntry {
                            key: entry_key(gens, zp),
                            meta: None,
                            probe: zp.clone(),
                            report: None,
                            report_time: 0,
                            gapped: is_gapped(zp),
                            budget_tripped: false,
                        })
                        .collect();
                    prober.into_result(cfg, zones)
                } else {
                    // Everything clean: zero queries.
                    let total = (self.chain.len() + self.orphans.len()) as u64;
                    self.hit(total);
                    let zones: Vec<ZoneProbe> = self
                        .chain
                        .iter()
                        .chain(&self.orphans)
                        .map(|e| e.probe.clone())
                        .collect();
                    Prober::new(net, cfg.retry.clone()).into_result(cfg, zones)
                }
            }
            // Cold cache, or the anchor itself is dirty (trust-anchor
            // change): from-scratch walk.
            (true, _) | (_, Some(0)) => {
                self.invalidated(
                    (chain_dirty.iter().filter(|d| **d).count()
                        + orphan_dirty.iter().filter(|d| **d).count()) as u64,
                );
                self.chain.clear();
                self.orphans.clear();
                let mut prober = Prober::new(net, cfg.retry.clone());
                let (mut zones, metas) = walk_chain(&mut prober, cfg, WalkStart::anchor(cfg));
                let n_chain = zones.len();
                hint_pass(&mut prober, cfg, &mut zones);
                self.miss(zones.len() as u64);
                self.rebuild(gens, &zones, &metas, n_chain, 0);
                prober.into_result(cfg, zones)
            }
            // Clean prefix, dirty suffix: resume the walk at the first
            // dirty cut from its cached entry state.
            (false, Some(d)) => {
                self.invalidated(
                    (chain_dirty.iter().filter(|x| **x).count()
                        + orphan_dirty.iter().filter(|x| **x).count()) as u64,
                );
                self.hit(d as u64);
                let start = {
                    let e = &self.chain[d];
                    let meta = e
                        .meta
                        .as_ref()
                        .expect("chain entries always carry their lap meta");
                    WalkStart {
                        zone: e.probe.zone.clone(),
                        servers: meta.servers.clone(),
                        parent: e.probe.parent.clone(),
                        delegation_ns: e.probe.delegation_ns.clone(),
                        unresolved_ns: e.probe.unresolved_ns.clone(),
                        ds_responses: e.probe.ds_responses.clone(),
                        ds_failures: meta.ds_failures.clone(),
                        depth: MAX_WALK_DEPTH - d,
                    }
                };
                let mut prober = Prober::new(net, cfg.retry.clone());
                let (fresh, fresh_metas) = walk_chain(&mut prober, cfg, start);
                let mut zones: Vec<ZoneProbe> =
                    self.chain[..d].iter().map(|e| e.probe.clone()).collect();
                zones.extend(fresh);
                let n_chain = zones.len();
                hint_pass(&mut prober, cfg, &mut zones);
                self.miss((zones.len() - d) as u64);
                self.rebuild(gens, &zones, &fresh_metas, n_chain, d);
                prober.into_result(cfg, zones)
            }
        }
    }

    /// Recomputes the cached entry lists after a (partial) live walk:
    /// chain entries `< keep` survive with their reports, entries from
    /// `keep` onward are rebuilt from the fresh zones (`fresh_metas[i]`
    /// belongs to `zones[keep + i]`), and orphans are rebuilt from the
    /// hint-pass tail.
    fn rebuild(
        &mut self,
        gens: &dyn GenerationSource,
        zones: &[ZoneProbe],
        fresh_metas: &[LapMeta],
        n_chain: usize,
        keep: usize,
    ) {
        self.chain.truncate(keep);
        for (zp, meta) in zones[keep..n_chain].iter().zip(fresh_metas) {
            self.chain.push(MemoEntry {
                key: entry_key(gens, zp),
                meta: Some(meta.clone()),
                probe: zp.clone(),
                report: None,
                report_time: 0,
                gapped: is_gapped(zp),
                budget_tripped: false,
            });
        }
        self.orphans = zones[n_chain..]
            .iter()
            .map(|zp| MemoEntry {
                key: entry_key(gens, zp),
                meta: None,
                probe: zp.clone(),
                report: None,
                report_time: 0,
                gapped: is_gapped(zp),
                budget_tripped: false,
            })
            .collect();
    }

    /// Incremental [`super::grok`]: splices cached [`ZoneReport`]s for the
    /// zones [`GrokMemo::probe_incremental`] reused and runs the analysis
    /// passes only for the re-probed ones. Must be called with the
    /// [`ProbeResult`] of the immediately preceding `probe_incremental` on
    /// this memo; any other input falls back to a full (uncached)
    /// analysis.
    pub fn grok_incremental(&mut self, probe: &ProbeResult) -> GrokReport {
        ddx_obs::counter("grok.runs", &[]).inc();
        let pass_timings = pass_histograms();
        let now = probe.time;
        let budget = self.budget.clone();

        let aligned = probe.zones.len() == self.chain.len() + self.orphans.len()
            && self
                .entries()
                .zip(&probe.zones)
                .all(|(e, zp)| e.probe.zone == zp.zone);

        let zone_reports: Vec<ZoneReport> = if aligned {
            let reports: Vec<ZoneReport> = self
                .entries()
                .zip(&probe.zones)
                .map(|(e, zp)| match &e.report {
                    // A cached report is only valid at the clock it was
                    // analyzed at — RRSIG windows read `now`.
                    Some(r) if e.report_time == now => r.clone(),
                    _ => analyze_zone(zp, now, &pass_timings, &budget),
                })
                .collect();
            for (e, r) in self.entries_mut().zip(&reports) {
                if e.report.is_none() || e.report_time != now {
                    e.report = Some(r.clone());
                    e.report_time = now;
                }
                // A truncated analysis must never be replayed from cache:
                // mark the entry so the next probe round force-dirties it.
                e.budget_tripped = r
                    .errors
                    .iter()
                    .any(|err| err.code == ErrorCode::ValidationBudgetExceeded);
            }
            reports
        } else {
            // Foreign probe result: analyze everything, cache nothing.
            probe
                .zones
                .iter()
                .map(|zp| analyze_zone(zp, now, &pass_timings, &budget))
                .collect()
        };

        let (any_lame, any_orphaned) = chain_flags(&probe.zones);
        let status = classify::classify(&zone_reports, any_lame, any_orphaned);
        GrokReport {
            query_domain: probe.query_domain.clone(),
            time: now,
            status,
            zones: zone_reports,
        }
    }

    /// One-call incremental revalidation: probe then grok.
    pub fn probe_grok(
        &mut self,
        net: &dyn Network,
        gens: &dyn GenerationSource,
        cfg: &ProbeConfig,
    ) -> GrokReport {
        let probe = self.probe_incremental(net, gens, cfg);
        self.grok_incremental(&probe)
    }

    fn entries(&self) -> impl Iterator<Item = &MemoEntry> {
        self.chain.iter().chain(&self.orphans)
    }

    fn entries_mut(&mut self) -> impl Iterator<Item = &mut MemoEntry> {
        self.chain.iter_mut().chain(self.orphans.iter_mut())
    }
}

impl std::fmt::Debug for GrokMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrokMemo")
            .field("epoch", &self.epoch)
            .field("chain", &self.chain.len())
            .field("orphans", &self.orphans.len())
            .field("stats", &self.stats)
            .finish()
    }
}
