//! Tests for [`ErrorDetail`]: every variant constructs, serializes,
//! deserializes, and renders the exact legacy grok detail string.

use super::*;
use ddx_dns::name;

fn roundtrip(d: &ErrorDetail) -> ErrorDetail {
    let json = serde_json::to_string(d).expect("detail serializes");
    serde_json::from_str(&json).expect("detail deserializes")
}

/// Every variant: construct → serialize → deserialize → Display, with
/// the Display output pinned to the exact legacy grok strings.
#[test]
fn every_variant_round_trips_and_renders_legacy_text() {
    let server = ServerId("ns1.par.a.com.".to_string());
    let cases: Vec<(ErrorDetail, &str)> = vec![
        (ErrorDetail::None, ""),
        (ErrorDetail::Note("free text".into()), "free text"),
        (
            ErrorDetail::ServerKeySetDiffers {
                server: server.clone(),
                disjoint: false,
            },
            "DNSKEY set differs by presence on server ns1.par.a.com.",
        ),
        (
            ErrorDetail::ServerKeySetDiffers {
                server,
                disjoint: true,
            },
            "disjoint DNSKEY material on server ns1.par.a.com.",
        ),
        (
            ErrorDetail::RevokedSoleSep { key_tag: 4711 },
            "revoked SEP key_tag=4711 is the only secure entry point",
        ),
        (
            ErrorDetail::KeyLength {
                key_tag: 9,
                bits: 384,
                algorithm: Algorithm::RsaSha256.code(),
            },
            "key_tag=9 has 384-bit RSA key",
        ),
        (
            ErrorDetail::KeyLength {
                key_tag: 9,
                bits: 384,
                algorithm: Algorithm::EcdsaP256Sha256.code(),
            },
            "key_tag=9 has 384-bit key for ECDSAP256SHA256(13)",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                problem: DsProblem::NoMatchingKey,
            },
            "DS key_tag=7 matches no DNSKEY",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 10,
                digest_type: 2,
                problem: DsProblem::AlgorithmUnmatched,
            },
            "DS references algorithm 10 with no DNSKEY (key_tag=7)",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                problem: DsProblem::ReferencesRevoked,
            },
            "DS key_tag=7 references a revoked DNSKEY",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                problem: DsProblem::NonZoneKey,
            },
            "DS key_tag=7 references a non-zone key",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                problem: DsProblem::MissingSepFlag,
            },
            "DS key_tag=7 links a key without the SEP flag",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                problem: DsProblem::DigestMismatch,
            },
            "DS digest mismatch for key_tag=7",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 13,
                digest_type: 2,
                problem: DsProblem::AlgorithmDisagrees,
            },
            "DS algorithm 13 disagrees with DNSKEY algorithm for key_tag=7",
        ),
        (
            ErrorDetail::DsLink {
                key_tag: 7,
                algorithm: 8,
                digest_type: 9,
                problem: DsProblem::UnsupportedDigest,
            },
            "DS digest type 9 unsupported",
        ),
        (
            ErrorDetail::NoDnskeyForDs,
            "parent serves DS but the zone returned no DNSKEY RRset",
        ),
        (
            ErrorDetail::NoUsableSecureEntry,
            "no DS record authenticates any usable DNSKEY",
        ),
        (
            ErrorDetail::RrsetUnsigned {
                name: name("WWW.a.com"),
                rtype: RrType::A,
            },
            "www.a.com. A lacks covering RRSIG",
        ),
        (
            ErrorDetail::SigNoMatchingKey {
                name: name("www.a.com"),
                rtype: RrType::A,
                key_tag: 31,
                algorithm: 13,
            },
            "www.a.com. A RRSIG key_tag=31 alg=13 matches no DNSKEY",
        ),
        (
            ErrorDetail::TtlExceedsOriginal {
                name: name("www.a.com"),
                rtype: RrType::A,
                ttl: 7200,
                original_ttl: 3600,
            },
            "www.a.com. A TTL 7200 exceeds RRSIG original TTL 3600",
        ),
        (
            ErrorDetail::TtlOutlivesSignature {
                name: name("www.a.com"),
                rtype: RrType::A,
                ttl: 86400,
            },
            "www.a.com. A TTL 86400 outlives signature expiration",
        ),
        (
            ErrorDetail::SignatureFailure {
                name: name("www.a.com"),
                rtype: RrType::A,
                error: VerifyError::BadSignature,
            },
            "www.a.com. A: signature verification failed",
        ),
        (
            ErrorDetail::DenialMissing {
                qname: name("nx.a.com"),
                qtype: RrType::A,
                kind: DenialKind::NxDomain,
            },
            "no denial records for nx.a.com. A (NxDomain)",
        ),
        (ErrorDetail::NoProof { nsec3: true }, "no NSEC3 proof"),
        (ErrorDetail::NoProof { nsec3: false }, "no NSEC proof"),
        (
            ErrorDetail::NotCovered {
                qname: name("nx.a.com"),
                nsec3: true,
            },
            "no NSEC3 RR covers nx.a.com.",
        ),
        (
            ErrorDetail::NotCovered {
                qname: name("nx.a.com"),
                nsec3: false,
            },
            "no NSEC RR covers nx.a.com.",
        ),
        (
            ErrorDetail::BitmapAssertsType {
                qname: name("a.com"),
                rtype: RrType::Txt,
                nsec3: true,
            },
            "NSEC3 bitmap asserts TXT at a.com.",
        ),
        (
            ErrorDetail::BitmapAssertsType {
                qname: name("a.com"),
                rtype: RrType::Txt,
                nsec3: false,
            },
            "NSEC bitmap asserts TXT at a.com.",
        ),
        (
            ErrorDetail::NoClosestEncloser {
                qname: name("nx.a.com"),
            },
            "no closest-encloser match for nx.a.com.",
        ),
        (
            ErrorDetail::WildcardUnproven {
                qname: name("nx.a.com"),
            },
            "wildcard absence unproven for nx.a.com.",
        ),
        (
            ErrorDetail::InvalidNsec3Owner {
                owner: name("bad!!.a.com"),
            },
            "invalid NSEC3 owner bad!!.a.com.",
        ),
        (
            ErrorDetail::Nsec3HashLength { length: 12 },
            "NSEC3 hash length 12",
        ),
        (
            ErrorDetail::Nsec3HashAlgorithm { algorithm: 6 },
            "NSEC3 hash algorithm 6",
        ),
        (
            ErrorDetail::NsecChainEnd {
                owner: name("z.a.com"),
                next: name("m.a.com"),
            },
            "last NSEC at z.a.com. points to m.a.com.",
        ),
        (
            ErrorDetail::Nsec3Iterations { iterations: 150 },
            "NSEC3 iterations=150",
        ),
        (
            ErrorDetail::OptOutInconsistent,
            "opt-out flag inconsistent across chain",
        ),
        (
            ErrorDetail::Nsec3ParamDisagrees {
                iterations: 5,
                salt_len: 4,
            },
            "NSEC3PARAM iterations=5 salt_len=4 disagrees with chain",
        ),
        (
            ErrorDetail::InconsistentAncestors {
                ancestors: ["a.com.".to_string(), "par.a.com.".to_string()]
                    .into_iter()
                    .collect(),
            },
            "servers prove different closest enclosers: {\"a.com.\", \"par.a.com.\"}",
        ),
        (
            ErrorDetail::AlgorithmUnused {
                algorithm: 8,
                scope: AlgorithmScope::Dnskey,
            },
            "DNSKEY algorithm 8 signs no RRset",
        ),
        (
            ErrorDetail::AlgorithmUnused {
                algorithm: 8,
                scope: AlgorithmScope::Ds,
            },
            "DS algorithm 8 has no covering RRSIG",
        ),
        (
            ErrorDetail::AlgorithmUnused {
                algorithm: 8,
                scope: AlgorithmScope::Rrsig,
            },
            "RRSIG algorithm 8 has no DNSKEY",
        ),
        (
            ErrorDetail::ServerUnreachable {
                server: ServerId("par.a.com#1".to_string()),
                attempts: 3,
            },
            "server par.a.com#1 gave no usable answer after 3 attempts",
        ),
        (
            ErrorDetail::ResponseTruncated {
                server: ServerId("par.a.com#1".to_string()),
                qname: name("www.a.com"),
                qtype: RrType::Dnskey,
            },
            "server par.a.com#1 answer for www.a.com. DNSKEY truncated on every retry",
        ),
        (
            ErrorDetail::MalformedResponse {
                server: ServerId("par.a.com#1".to_string()),
                qname: name("www.a.com"),
                qtype: RrType::A,
            },
            "server par.a.com#1 answer for www.a.com. A did not parse",
        ),
    ];
    for (detail, expected) in &cases {
        assert_eq!(&roundtrip(detail), detail, "round-trip of {detail:?}");
        assert_eq!(&detail.to_string(), expected, "display of {detail:?}");
    }
}

#[test]
fn signature_failure_windows_round_trip() {
    for error in [
        VerifyError::Expired {
            expiration: 900,
            now: 1000,
        },
        VerifyError::NotYetValid {
            inception: 1100,
            now: 1000,
        },
        VerifyError::KeyTagMismatch {
            rrsig: 1,
            dnskey: 2,
        },
    ] {
        let d = ErrorDetail::SignatureFailure {
            name: name("www.a.com"),
            rtype: RrType::A,
            error,
        };
        assert_eq!(roundtrip(&d), d);
    }
}

#[test]
fn key_tag_accessor_covers_typed_and_note_fallback() {
    assert_eq!(
        ErrorDetail::RevokedSoleSep { key_tag: 42 }.key_tag(),
        Some(42)
    );
    assert_eq!(
        ErrorDetail::DsLink {
            key_tag: 7,
            algorithm: 8,
            digest_type: 2,
            problem: DsProblem::DigestMismatch,
        }
        .key_tag(),
        Some(7)
    );
    // Legacy reports land in Note; the accessor still finds the tag.
    assert_eq!(
        ErrorDetail::Note("revoked SEP key_tag=42 is the only secure entry point".into()).key_tag(),
        Some(42)
    );
    assert_eq!(ErrorDetail::Note("no tag here".into()).key_tag(), None);
    assert_eq!(ErrorDetail::NoDnskeyForDs.key_tag(), None);
}

#[test]
fn rrset_accessor() {
    let d = ErrorDetail::TtlExceedsOriginal {
        name: name("www.a.com"),
        rtype: RrType::A,
        ttl: 7200,
        original_ttl: 3600,
    };
    let (n, t) = d.rrset().unwrap();
    assert_eq!(n, &name("www.a.com"));
    assert_eq!(t, RrType::A);
    assert!(ErrorDetail::OptOutInconsistent.rrset().is_none());
}
