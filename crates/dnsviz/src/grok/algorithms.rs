//! Algorithm-completeness pass: RFC 6840 §5.11 checks relating the
//! algorithm sets of DNSKEY, DS and RRSIG records.

use std::collections::BTreeSet;

use super::{AlgorithmScope, AnalysisPass, ErrorDetail, ZoneAnalysis};
use crate::codes::ErrorCode;

pub(crate) struct AlgorithmCompletenessPass;

impl AnalysisPass for AlgorithmCompletenessPass {
    fn name(&self) -> &'static str {
        "algorithms"
    }

    fn run(&self, za: &mut ZoneAnalysis) {
        if za.budget_tripped() {
            // `algorithms_in_sigs` is only partially populated once the
            // signature pass bailed; completeness verdicts from it would be
            // spurious.
            return;
        }
        if za.algorithms_in_sigs.is_empty() && za.dnskeys.is_empty() {
            return;
        }
        let key_algorithms: BTreeSet<u8> = za.dnskeys.iter().map(|k| k.algorithm).collect();
        let sig_algorithms = za.algorithms_in_sigs.clone();
        let ds_algorithms: BTreeSet<u8> = za.ds_set.iter().map(|d| d.algorithm).collect();

        for alg in &key_algorithms {
            if !sig_algorithms.contains(alg) {
                za.push(
                    ErrorCode::DnskeyAlgorithmWithoutRrsig,
                    None,
                    ErrorDetail::AlgorithmUnused {
                        algorithm: *alg,
                        scope: AlgorithmScope::Dnskey,
                    },
                );
            }
        }
        for alg in &ds_algorithms {
            if key_algorithms.contains(alg) && !sig_algorithms.contains(alg) {
                za.push(
                    ErrorCode::DsAlgorithmWithoutRrsig,
                    None,
                    ErrorDetail::AlgorithmUnused {
                        algorithm: *alg,
                        scope: AlgorithmScope::Ds,
                    },
                );
            }
        }
        // RRSIG algorithms with no DNSKEY at all (when not already reported
        // at the signature level — e.g. all sigs of that algorithm were
        // skipped).
        for alg in &sig_algorithms {
            if !key_algorithms.contains(alg) && !za.has(ErrorCode::RrsigAlgorithmWithoutDnskey) {
                za.push(
                    ErrorCode::RrsigAlgorithmWithoutDnskey,
                    None,
                    ErrorDetail::AlgorithmUnused {
                        algorithm: *alg,
                        scope: AlgorithmScope::Rrsig,
                    },
                );
            }
        }
    }
}
