//! Delegation pass: DS ↔ DNSKEY linkage (paper's "Delegation" category).

use std::collections::BTreeSet;

use ddx_dns::Dnskey;
use ddx_dnssec::{check_ds, DsMatch};

use super::{AnalysisPass, DsProblem, ErrorDetail, ZoneAnalysis};
use crate::codes::ErrorCode;

pub(crate) struct DelegationPass;

impl AnalysisPass for DelegationPass {
    fn name(&self) -> &'static str {
        "delegation"
    }

    fn run(&self, za: &mut ZoneAnalysis) {
        if za.zp.parent.is_none() {
            return; // local trust anchor
        }
        let ds_set = za.ds_set.clone();
        if ds_set.is_empty() {
            return; // unsigned delegation → insecure, handled by classify()
        }
        if za.dnskeys.is_empty() {
            za.push(
                ErrorCode::DnskeyMissingForDs,
                None,
                ErrorDetail::NoDnskeyForDs,
            );
            return;
        }
        let key_algorithms: BTreeSet<u8> = za.dnskeys.iter().map(|k| k.algorithm).collect();
        let mut any_good_link = false;
        for ds in &ds_set {
            let link = |problem: DsProblem| ErrorDetail::DsLink {
                key_tag: ds.key_tag,
                algorithm: ds.algorithm,
                digest_type: ds.digest_type,
                problem,
            };
            let tag_matches: Vec<Dnskey> = za
                .dnskeys
                .iter()
                .filter(|k| k.key_tag() == ds.key_tag)
                .cloned()
                .collect();
            if tag_matches.is_empty() {
                if key_algorithms.contains(&ds.algorithm) {
                    // Stale DS pointing at a removed key of a live algorithm.
                    za.push(
                        ErrorCode::DsDigestInvalid,
                        None,
                        link(DsProblem::NoMatchingKey),
                    );
                } else {
                    za.push(
                        ErrorCode::DsMissingKeyForAlgorithm,
                        None,
                        link(DsProblem::AlgorithmUnmatched),
                    );
                }
                continue;
            }
            for key in &tag_matches {
                match check_ds(&za.zp.zone.clone(), ds, key) {
                    DsMatch::Match => {
                        if key.is_revoked() {
                            za.push(
                                ErrorCode::DsReferencesRevokedKey,
                                None,
                                link(DsProblem::ReferencesRevoked),
                            );
                        } else if !key.is_zone_key() {
                            za.push(
                                ErrorCode::DsDigestInvalid,
                                None,
                                link(DsProblem::NonZoneKey),
                            );
                        } else {
                            if !key.is_sep() {
                                za.push(
                                    ErrorCode::NoSepForDsAlgorithm,
                                    None,
                                    link(DsProblem::MissingSepFlag),
                                );
                            }
                            any_good_link = true;
                        }
                    }
                    DsMatch::DigestMismatch => za.push(
                        ErrorCode::DsDigestInvalid,
                        None,
                        link(DsProblem::DigestMismatch),
                    ),
                    DsMatch::AlgorithmMismatch => za.push(
                        ErrorCode::DsAlgorithmMismatch,
                        None,
                        link(DsProblem::AlgorithmDisagrees),
                    ),
                    DsMatch::UnsupportedDigest => za.push(
                        ErrorCode::DsUnknownDigestType,
                        None,
                        link(DsProblem::UnsupportedDigest),
                    ),
                    DsMatch::TagMismatch => {
                        unreachable!("candidate keys are pre-filtered by key tag")
                    }
                }
            }
        }
        if !any_good_link {
            za.push(
                ErrorCode::NoSecureEntryPoint,
                None,
                ErrorDetail::NoUsableSecureEntry,
            );
        }
    }
}
