//! Tests for the report surface: per-zone error attribution, text
//! rendering, and the stable JSON schema (including the legacy `detail`
//! string + typed `detail_data` compatibility shim).

use super::*;
use crate::probe::{probe, ProbeConfig};
use ddx_dns::name;
use ddx_dnssec::{resign_rrset, KeyRole, SignOptions};
use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

const NOW: u32 = 1_000_000;

fn three_level() -> Sandbox {
    build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
            ZoneSpec::conventional(name("chd.par.a.com")),
        ],
        NOW,
        91,
    )
}

fn run_with_query(sb: &Sandbox, query: &str) -> GrokReport {
    let cfg = ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name(query),
        target_types: vec![RrType::A],
        time: NOW,
        retry: crate::probe::RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    };
    grok(&probe(&sb.testbed, &cfg))
}

#[test]
fn parent_zone_errors_attributed_to_parent() {
    let mut sb = three_level();
    // Break the PARENT's apex SOA signature.
    let parent = name("par.a.com");
    let zsk = sb.zone(&parent).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
    sb.testbed.mutate_zone_everywhere(&parent, |zone| {
        resign_rrset(
            zone,
            &parent,
            RrType::Soa,
            &zsk,
            SignOptions {
                inception: 0,
                expiration: NOW - 5,
            },
        );
    });
    let report = run_with_query(&sb, "www.chd.par.a.com");
    assert_eq!(report.status, SnapshotStatus::Sb);
    // The expired-signature error belongs to par.a.com, not to the leaf.
    let offender = report
        .errors()
        .find(|e| e.code == ErrorCode::RrsigExpired)
        .expect("error found");
    assert_eq!(offender.zone, parent);
    // And the leaf-zone extraction (what ZReplicator would be fed) is
    // clean — the paper's replication is leaf-scoped (§5.5.1).
    assert!(
        !report
            .target_zone_codes()
            .contains(&ErrorCode::RrsigExpired),
        "{:?}",
        report.target_zone_codes()
    );
}

#[test]
fn anchor_zone_is_marked() {
    let sb = three_level();
    let report = run_with_query(&sb, "www.chd.par.a.com");
    assert!(report.zones[0].is_anchor);
    assert!(!report.zones[1].is_anchor);
    assert!(!report.zones[2].is_anchor);
    assert!(report.zones[1].has_ds);
    assert!(report.zones[2].has_ds);
}

#[test]
fn render_text_mentions_every_zone_and_error() {
    let sb = build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
        ],
        NOW,
        95,
    );
    let report = run_with_query(&sb, "www.par.a.com");
    let text = report.render_text();
    assert!(text.contains("a.com. [trust anchor]"));
    assert!(text.contains("par.a.com. [signed, delegated]"));
    assert!(text.contains("status sv"));
    assert!(text.contains("ok"));
}

/// The JSON shape downstream consumers depend on (CLI --json, the
/// snapshot pipeline): spot-check stable field names.
#[test]
fn report_json_field_names_are_stable() {
    let sb = build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
        ],
        NOW,
        97,
    );
    let report = run_with_query(&sb, "www.par.a.com");
    let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
    assert!(v.get("query_domain").is_some());
    assert!(v.get("time").is_some());
    assert_eq!(v["status"], "Sv");
    let zones = v["zones"].as_array().unwrap();
    assert_eq!(zones.len(), 2);
    for z in zones {
        for field in [
            "zone",
            "signed",
            "has_ds",
            "is_anchor",
            "errors",
            "warnings",
        ] {
            assert!(z.get(field).is_some(), "missing field {field}");
        }
    }
}

/// Errors serialize with both the legacy string `detail` and the typed
/// `detail_data`, and legacy JSON (string only) still deserializes.
#[test]
fn error_instance_serde_shim() {
    let instance = ErrorInstance {
        code: ErrorCode::Nsec3IterationsNonzero,
        zone: name("par.a.com"),
        critical: false,
        detail: ErrorDetail::Nsec3Iterations { iterations: 10 },
    };
    let v = serde_json::to_value(&instance).unwrap();
    assert_eq!(v["detail"], "NSEC3 iterations=10");
    assert!(v.get("detail_data").is_some());
    let back: ErrorInstance = serde_json::from_value(v.clone()).unwrap();
    assert_eq!(back, instance);

    // Pre-refactor JSON: no detail_data field at all.
    let mut legacy = v;
    legacy.as_object_mut().unwrap().remove("detail_data");
    let back: ErrorInstance = serde_json::from_value(legacy).unwrap();
    assert_eq!(
        back.detail,
        ErrorDetail::Note("NSEC3 iterations=10".to_string())
    );
    assert_eq!(back.detail.to_string(), "NSEC3 iterations=10");
}
