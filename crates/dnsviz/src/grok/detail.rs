//! The typed diagnostic payload attached to every [`ErrorInstance`]:
//! instead of free-form strings that downstream consumers (DResolver, the
//! naive baseline, the resolver's NSEC3 policy) re-parse, each family of
//! error codes carries a structured [`ErrorDetail`] variant with the key
//! tags, algorithms, owner names, RR types, TTLs and server identities the
//! fix planner needs.
//!
//! Two compatibility layers keep pre-refactor consumers working:
//!
//! * [`Display`](std::fmt::Display) reproduces, byte for byte, the
//!   human-readable detail strings grok used to emit, so `render_text()`
//!   output and operator-facing logs are unchanged;
//! * the serde impls on [`ErrorInstance`] write both the legacy string
//!   `detail` field (via `Display`) and a typed `detail_data` field, and on
//!   read fall back to [`ErrorDetail::Note`] for JSON produced before this
//!   model existed.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use ddx_dns::{Name, RrType};
use ddx_dnssec::{Algorithm, DenialKind, VerifyError};
use ddx_server::ServerId;

use super::ErrorInstance;
use crate::codes::ErrorCode;

/// How a DS record fails (or qualifies) its DNSKEY linkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DsProblem {
    /// The DS tag matches no published key, but the algorithm is live.
    NoMatchingKey,
    /// The DS references an algorithm with no published DNSKEY at all.
    AlgorithmUnmatched,
    /// The linked key carries the REVOKE bit.
    ReferencesRevoked,
    /// The linked key lacks the Zone Key flag.
    NonZoneKey,
    /// The linked key lacks the SEP flag (advisory-level linkage defect).
    MissingSepFlag,
    /// Tag and algorithm match but the digest does not.
    DigestMismatch,
    /// The DS algorithm field disagrees with the linked DNSKEY's.
    AlgorithmDisagrees,
    /// The DS digest type is unknown to the validator.
    UnsupportedDigest,
}

/// Which validation-work counter tripped a per-zone `ValidationBudget`
/// (defined in `grok::mod`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetCounter {
    /// Attempted RRSIG verifications.
    SigVerifications,
    /// NSEC3 hash rounds (`1 + iterations` per hashed name).
    Nsec3Hashes,
}

impl fmt::Display for BudgetCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetCounter::SigVerifications => write!(f, "sig_verifications"),
            BudgetCounter::Nsec3Hashes => write!(f, "nsec3_hashes"),
        }
    }
}

/// Which RFC 6840 §5.11 completeness rule an algorithm violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmScope {
    /// A DNSKEY algorithm that signs no RRset.
    Dnskey,
    /// A DS algorithm with no covering RRSIG.
    Ds,
    /// An RRSIG algorithm with no DNSKEY.
    Rrsig,
}

/// Structured specifics of one detected violation. One variant per family
/// of the 47 error codes that carries payload, plus [`ErrorDetail::Note`]
/// as the free-form escape hatch (also the landing spot for legacy JSON).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorDetail {
    /// No specifics beyond the error code itself.
    None,
    /// Free-form text: the escape hatch for one-off findings and the
    /// deserialization target for pre-refactor reports.
    Note(String),

    // ------------------------------------------------------------- keys
    /// A server's DNSKEY RRset diverges from the reference set.
    ServerKeySetDiffers {
        server: ServerId,
        /// False: one set is a subset of the other (presence difference).
        /// True: neither contains the other (disjoint material).
        disjoint: bool,
    },
    /// A revoked SEP key is the only secure entry point left.
    RevokedSoleSep { key_tag: u16 },
    /// A published key's length is unacceptable for its algorithm.
    KeyLength {
        key_tag: u16,
        bits: u16,
        algorithm: u8,
    },

    // ------------------------------------------------------- delegation
    /// A DS record's linkage to the DNSKEY RRset is defective.
    DsLink {
        key_tag: u16,
        algorithm: u8,
        digest_type: u8,
        problem: DsProblem,
    },
    /// The parent serves DS but the child returned no DNSKEY RRset.
    NoDnskeyForDs,
    /// No DS record authenticates any usable DNSKEY.
    NoUsableSecureEntry,

    // ------------------------------------------------------ signatures
    /// An RRset lacks any covering RRSIG (on some or all servers).
    RrsetUnsigned { name: Name, rtype: RrType },
    /// An RRSIG whose key tag/algorithm matches no published DNSKEY.
    SigNoMatchingKey {
        name: Name,
        rtype: RrType,
        key_tag: u16,
        algorithm: u8,
    },
    /// Served TTL above the RRSIG Original TTL field.
    TtlExceedsOriginal {
        name: Name,
        rtype: RrType,
        ttl: u32,
        original_ttl: u32,
    },
    /// Served TTL outlives the signature validity window.
    TtlOutlivesSignature { name: Name, rtype: RrType, ttl: u32 },
    /// Cryptographic or metadata signature-verification failure.
    SignatureFailure {
        name: Name,
        rtype: RrType,
        error: VerifyError,
    },

    // ---------------------------------------------------------- denial
    /// A negative response carried no denial records at all.
    DenialMissing {
        qname: Name,
        qtype: RrType,
        kind: DenialKind,
    },
    /// The denial verifier found no proof records relevant to the query.
    NoProof { nsec3: bool },
    /// Records were present but none covers the name.
    NotCovered { qname: Name, nsec3: bool },
    /// A NODATA proof whose bitmap still asserts the queried type.
    BitmapAssertsType {
        qname: Name,
        rtype: RrType,
        nsec3: bool,
    },
    /// NSEC3 NXDOMAIN proof lacking a closest-encloser match.
    NoClosestEncloser { qname: Name },
    /// No proof that the source-of-synthesis wildcard does not exist.
    WildcardUnproven { qname: Name },
    /// An NSEC3 owner label that is not valid base32hex.
    InvalidNsec3Owner { owner: Name },
    /// An NSEC3 next-hash field of the wrong length.
    Nsec3HashLength { length: usize },
    /// An NSEC3 hash algorithm the validator does not support.
    Nsec3HashAlgorithm { algorithm: u8 },
    /// The wrap-around NSEC does not point back at the apex.
    NsecChainEnd { owner: Name, next: Name },
    /// Nonzero NSEC3 iteration count (NZIC) observed on the chain.
    Nsec3Iterations { iterations: u16 },
    /// Opt-out flag differs across the NSEC3 chain.
    OptOutInconsistent,
    /// NSEC3PARAM disagrees with the served chain.
    Nsec3ParamDisagrees { iterations: u16, salt_len: usize },
    /// Different servers prove different closest enclosers.
    InconsistentAncestors { ancestors: BTreeSet<String> },

    // ------------------------------------------------------ algorithms
    /// An algorithm present in one RRset family but unused by another
    /// (RFC 6840 §5.11 completeness).
    AlgorithmUnused {
        algorithm: u8,
        scope: AlgorithmScope,
    },

    // ---------------------------------------------------------- budgets
    /// The zone's analysis exhausted its validation budget: `counter`
    /// reached `used` units against a cap of `cap` and the remaining work
    /// was skipped (KeyTrap-class complexity defense).
    BudgetExceeded {
        counter: BudgetCounter,
        used: u64,
        cap: u64,
    },

    // --------------------------------------------------- observability
    // The three variants below describe *missing observations*, not
    // observed breakage: they populate `ZoneReport::observation_gaps`, and
    // DFixer refuses to plan around absence-evidence codes while a zone
    // carries any of them.
    /// A server produced no usable answer after every retry (timeouts or
    /// REFUSED/SERVFAIL throughout).
    ServerUnreachable { server: ServerId, attempts: u32 },
    /// Every retry of one query came back truncated (TC bit set).
    ResponseTruncated {
        server: ServerId,
        qname: Name,
        qtype: RrType,
    },
    /// The response bytes never parsed as a DNS message.
    MalformedResponse {
        server: ServerId,
        qname: Name,
        qtype: RrType,
    },
}

impl Default for ErrorDetail {
    fn default() -> Self {
        ErrorDetail::None
    }
}

impl ErrorDetail {
    /// The key tag this detail implicates, if any. For [`ErrorDetail::Note`]
    /// the legacy `key_tag=N` convention is parsed for compatibility with
    /// pre-refactor reports.
    pub fn key_tag(&self) -> Option<u16> {
        match self {
            ErrorDetail::RevokedSoleSep { key_tag }
            | ErrorDetail::KeyLength { key_tag, .. }
            | ErrorDetail::DsLink { key_tag, .. }
            | ErrorDetail::SigNoMatchingKey { key_tag, .. } => Some(*key_tag),
            ErrorDetail::Note(text) => {
                let idx = text.find("key_tag=")?;
                let rest = &text[idx + "key_tag=".len()..];
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].parse().ok()
            }
            _ => None,
        }
    }

    /// The RRset this detail implicates, if any.
    pub fn rrset(&self) -> Option<(&Name, RrType)> {
        match self {
            ErrorDetail::RrsetUnsigned { name, rtype }
            | ErrorDetail::SigNoMatchingKey { name, rtype, .. }
            | ErrorDetail::TtlExceedsOriginal { name, rtype, .. }
            | ErrorDetail::TtlOutlivesSignature { name, rtype, .. }
            | ErrorDetail::SignatureFailure { name, rtype, .. } => Some((name, *rtype)),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ErrorDetail::*;
        match self {
            None => Ok(()),
            Note(text) => write!(f, "{text}"),
            ServerKeySetDiffers { server, disjoint } => {
                if *disjoint {
                    write!(f, "disjoint DNSKEY material on server {}", server.0)
                } else {
                    write!(f, "DNSKEY set differs by presence on server {}", server.0)
                }
            }
            RevokedSoleSep { key_tag } => write!(
                f,
                "revoked SEP key_tag={key_tag} is the only secure entry point"
            ),
            KeyLength {
                key_tag,
                bits,
                algorithm,
            } => {
                let alg = Algorithm::from_code(*algorithm);
                if alg.map(|a| a.is_rsa()).unwrap_or(false) && *bits < 512 {
                    write!(f, "key_tag={key_tag} has {bits}-bit RSA key")
                } else {
                    write!(f, "key_tag={key_tag} has {bits}-bit key for ")?;
                    match alg {
                        Some(a) => write!(f, "{a}"),
                        None => write!(f, "{algorithm}"),
                    }
                }
            }
            DsLink {
                key_tag,
                algorithm,
                digest_type,
                problem,
            } => match problem {
                DsProblem::NoMatchingKey => {
                    write!(f, "DS key_tag={key_tag} matches no DNSKEY")
                }
                DsProblem::AlgorithmUnmatched => write!(
                    f,
                    "DS references algorithm {algorithm} with no DNSKEY (key_tag={key_tag})"
                ),
                DsProblem::ReferencesRevoked => {
                    write!(f, "DS key_tag={key_tag} references a revoked DNSKEY")
                }
                DsProblem::NonZoneKey => {
                    write!(f, "DS key_tag={key_tag} references a non-zone key")
                }
                DsProblem::MissingSepFlag => {
                    write!(f, "DS key_tag={key_tag} links a key without the SEP flag")
                }
                DsProblem::DigestMismatch => {
                    write!(f, "DS digest mismatch for key_tag={key_tag}")
                }
                DsProblem::AlgorithmDisagrees => write!(
                    f,
                    "DS algorithm {algorithm} disagrees with DNSKEY algorithm for key_tag={key_tag}"
                ),
                DsProblem::UnsupportedDigest => {
                    write!(f, "DS digest type {digest_type} unsupported")
                }
            },
            NoDnskeyForDs => write!(f, "parent serves DS but the zone returned no DNSKEY RRset"),
            NoUsableSecureEntry => write!(f, "no DS record authenticates any usable DNSKEY"),
            RrsetUnsigned { name, rtype } => {
                write!(f, "{} {rtype} lacks covering RRSIG", name.key())
            }
            SigNoMatchingKey {
                name,
                rtype,
                key_tag,
                algorithm,
            } => write!(
                f,
                "{name} {rtype} RRSIG key_tag={key_tag} alg={algorithm} matches no DNSKEY"
            ),
            TtlExceedsOriginal {
                name,
                rtype,
                ttl,
                original_ttl,
            } => write!(
                f,
                "{name} {rtype} TTL {ttl} exceeds RRSIG original TTL {original_ttl}"
            ),
            TtlOutlivesSignature { name, rtype, ttl } => {
                write!(f, "{name} {rtype} TTL {ttl} outlives signature expiration")
            }
            SignatureFailure { name, rtype, error } => {
                write!(f, "{name} {rtype}: {error}")
            }
            DenialMissing { qname, qtype, kind } => {
                write!(f, "no denial records for {qname} {qtype} ({kind:?})")
            }
            NoProof { nsec3 } => {
                write!(f, "no {} proof", if *nsec3 { "NSEC3" } else { "NSEC" })
            }
            NotCovered { qname, nsec3 } => write!(
                f,
                "no {} RR covers {qname}",
                if *nsec3 { "NSEC3" } else { "NSEC" }
            ),
            BitmapAssertsType {
                qname,
                rtype,
                nsec3,
            } => write!(
                f,
                "{} bitmap asserts {rtype} at {qname}",
                if *nsec3 { "NSEC3" } else { "NSEC" }
            ),
            NoClosestEncloser { qname } => {
                write!(f, "no closest-encloser match for {qname}")
            }
            WildcardUnproven { qname } => {
                write!(f, "wildcard absence unproven for {qname}")
            }
            InvalidNsec3Owner { owner } => write!(f, "invalid NSEC3 owner {owner}"),
            Nsec3HashLength { length } => write!(f, "NSEC3 hash length {length}"),
            Nsec3HashAlgorithm { algorithm } => {
                write!(f, "NSEC3 hash algorithm {algorithm}")
            }
            NsecChainEnd { owner, next } => {
                write!(f, "last NSEC at {owner} points to {next}")
            }
            Nsec3Iterations { iterations } => write!(f, "NSEC3 iterations={iterations}"),
            OptOutInconsistent => write!(f, "opt-out flag inconsistent across chain"),
            Nsec3ParamDisagrees {
                iterations,
                salt_len,
            } => write!(
                f,
                "NSEC3PARAM iterations={iterations} salt_len={salt_len} disagrees with chain"
            ),
            InconsistentAncestors { ancestors } => {
                write!(
                    f,
                    "servers prove different closest enclosers: {ancestors:?}"
                )
            }
            ServerUnreachable { server, attempts } => write!(
                f,
                "server {} gave no usable answer after {attempts} attempts",
                server.0
            ),
            ResponseTruncated {
                server,
                qname,
                qtype,
            } => write!(
                f,
                "server {} answer for {qname} {qtype} truncated on every retry",
                server.0
            ),
            MalformedResponse {
                server,
                qname,
                qtype,
            } => write!(
                f,
                "server {} answer for {qname} {qtype} did not parse",
                server.0
            ),
            AlgorithmUnused { algorithm, scope } => match scope {
                AlgorithmScope::Dnskey => {
                    write!(f, "DNSKEY algorithm {algorithm} signs no RRset")
                }
                AlgorithmScope::Ds => {
                    write!(f, "DS algorithm {algorithm} has no covering RRSIG")
                }
                AlgorithmScope::Rrsig => {
                    write!(f, "RRSIG algorithm {algorithm} has no DNSKEY")
                }
            },
            BudgetExceeded { counter, used, cap } => write!(
                f,
                "validation budget exceeded: {counter} used={used} cap={cap}"
            ),
        }
    }
}

// ------------------------------------------------------ serde compat shim

/// The on-disk/JSON shape of an [`ErrorInstance`]: the legacy string field
/// plus the typed payload. Pre-refactor readers keep consuming `detail`;
/// pre-refactor *writers* produce JSON without `detail_data`, which lands in
/// [`ErrorDetail::Note`] on read.
#[derive(Serialize, Deserialize)]
struct ErrorInstanceWire {
    code: ErrorCode,
    zone: Name,
    critical: bool,
    detail: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    detail_data: Option<ErrorDetail>,
}

impl Serialize for ErrorInstance {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ErrorInstanceWire {
            code: self.code,
            zone: self.zone.clone(),
            critical: self.critical,
            detail: self.detail.to_string(),
            detail_data: Some(self.detail.clone()),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for ErrorInstance {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = ErrorInstanceWire::deserialize(deserializer)?;
        let detail = match wire.detail_data {
            Some(d) => d,
            None if wire.detail.is_empty() => ErrorDetail::None,
            None => ErrorDetail::Note(wire.detail),
        };
        Ok(ErrorInstance {
            code: wire.code,
            zone: wire.zone,
            critical: wire.critical,
            detail,
        })
    }
}

#[cfg(test)]
#[path = "detail_tests.rs"]
mod tests;
