//! Denial pass: negative-response (denial-of-existence) validation over
//! the NXDOMAIN and NODATA probes, plus chain-level NSEC/NSEC3 structural
//! findings.

use std::collections::BTreeSet;

use ddx_dns::{Name, Nsec, Nsec3, RData, Record, RrType};
use ddx_dnssec::{nsec3_hash, verify_nsec3_denial, verify_nsec_denial, DenialFailure, DenialKind};

use super::{nsec3_views, nsec_views, AnalysisPass, ErrorDetail, ZoneAnalysis};
use crate::codes::ErrorCode;
use crate::probe::{ServerProbe, NODATA_PROBE_TYPE, NX_PROBE_LABEL, NX_PROBE_LABEL_HI};

pub(crate) struct DenialPass;

impl AnalysisPass for DenialPass {
    fn name(&self) -> &'static str {
        "denial"
    }

    fn run(&self, za: &mut ZoneAnalysis) {
        if za.budget_tripped() {
            // The signature pass already blew the budget; denial proofs are
            // the other KeyTrap lever, so stop before hashing anything.
            return;
        }
        let zone = za.zp.zone.clone();
        let nx_name = zone
            .child(NX_PROBE_LABEL)
            .expect("NX_PROBE_LABEL is a fixed valid label; appending it cannot fail");
        let nx_name_hi = zone
            .child(NX_PROBE_LABEL_HI)
            .expect("NX_PROBE_LABEL_HI is a fixed valid label; appending it cannot fail");
        let mut seen: BTreeSet<(ErrorCode, String)> = BTreeSet::new();
        // Closest enclosers proven by each server, for consistency checking.
        let mut ancestors: BTreeSet<String> = BTreeSet::new();

        let servers: Vec<ServerProbe> = za
            .zp
            .servers
            .iter()
            .filter(|s| s.responsive)
            .cloned()
            .collect();
        let uses_nsec3 = servers.iter().any(|sp| {
            sp.nsec3param
                .as_ref()
                .map(|m| m.answers.iter().any(|r| r.rtype() == RrType::Nsec3Param))
                .unwrap_or(false)
                || sp
                    .nxdomain
                    .as_ref()
                    .map(|m| m.authorities.iter().any(|r| r.rtype() == RrType::Nsec3))
                    .unwrap_or(false)
                || sp
                    .nodata
                    .as_ref()
                    .map(|m| m.authorities.iter().any(|r| r.rtype() == RrType::Nsec3))
                    .unwrap_or(false)
        });

        for sp in &servers {
            if za.budget_tripped() {
                break;
            }
            // --- NXDOMAIN probes (low- and high-sorting labels) ---
            for (nx, msg) in [(&nx_name, &sp.nxdomain), (&nx_name_hi, &sp.nxdomain_hi)] {
                let Some(msg) = msg else { continue };
                if msg.answers.is_empty() {
                    check_one_denial(
                        za,
                        &zone,
                        nx,
                        RrType::A,
                        DenialKind::NxDomain,
                        &msg.authorities,
                        uses_nsec3,
                        &mut seen,
                    );
                    if let Some(ce) = proven_closest_encloser(za, nx, &msg.authorities) {
                        ancestors.insert(ce);
                    }
                }
            }
            // --- NODATA probe ---
            if let Some(msg) = &sp.nodata {
                if msg.answers.is_empty() && msg.rcode == ddx_dns::Rcode::NoError {
                    check_one_denial(
                        za,
                        &zone,
                        &zone.clone(),
                        NODATA_PROBE_TYPE,
                        DenialKind::NoData,
                        &msg.authorities,
                        uses_nsec3,
                        &mut seen,
                    );
                }
            }
            // --- chain-level NSEC/NSEC3 structural findings ---
            let mut all_denial_records: Vec<Record> = Vec::new();
            for m in [&sp.nxdomain, &sp.nxdomain_hi, &sp.nodata]
                .into_iter()
                .flatten()
            {
                all_denial_records.extend(m.authorities.iter().cloned());
            }
            for (owner, nsec) in nsec_views(&all_denial_records) {
                if owner.canonical_cmp(&nsec.next_name) == std::cmp::Ordering::Greater
                    && nsec.next_name != zone
                {
                    let detail = ErrorDetail::NsecChainEnd {
                        owner: owner.clone(),
                        next: nsec.next_name.clone(),
                    };
                    if seen.insert((ErrorCode::LastNsecNotApex, detail.to_string())) {
                        za.push(ErrorCode::LastNsecNotApex, None, detail);
                    }
                }
            }
            let n3s = nsec3_views(&all_denial_records);
            if !n3s.is_empty() {
                if n3s.iter().any(|(_, n)| n.iterations > 0) {
                    let iters = n3s.iter().map(|(_, n)| n.iterations).max().unwrap_or(0);
                    let detail = ErrorDetail::Nsec3Iterations { iterations: iters };
                    if seen.insert((ErrorCode::Nsec3IterationsNonzero, detail.to_string())) {
                        za.push(ErrorCode::Nsec3IterationsNonzero, None, detail);
                    }
                }
                let flags: BTreeSet<u8> = n3s.iter().map(|(_, n)| n.flags & 0x01).collect();
                if flags.len() > 1 {
                    let detail = ErrorDetail::OptOutInconsistent;
                    if seen.insert((ErrorCode::Nsec3OptOutViolation, detail.to_string())) {
                        za.push(ErrorCode::Nsec3OptOutViolation, None, detail);
                    }
                }
                // NSEC3PARAM agreement.
                if let Some(pmsg) = &sp.nsec3param {
                    for rec in &pmsg.answers {
                        if let RData::Nsec3Param(p) = &rec.rdata {
                            let mismatch = n3s
                                .iter()
                                .any(|(_, n)| n.iterations != p.iterations || n.salt != p.salt);
                            if mismatch {
                                let detail = ErrorDetail::Nsec3ParamDisagrees {
                                    iterations: p.iterations,
                                    salt_len: p.salt.len(),
                                };
                                if seen.insert((ErrorCode::Nsec3ParamMismatch, detail.to_string()))
                                {
                                    za.push(ErrorCode::Nsec3ParamMismatch, None, detail);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Cross-server ancestor agreement needs every server's evidence; a
        // tripped budget means the set is partial, so stay silent.
        if !za.budget_tripped() && ancestors.len() > 1 {
            za.push(
                ErrorCode::Nsec3InconsistentAncestor,
                None,
                ErrorDetail::InconsistentAncestors { ancestors },
            );
        }
    }
}

/// The closest encloser a response's NSEC3 records actually match for
/// `qname`, as a map key (None for NSEC zones / no match). Each candidate
/// hash is charged against the zone's NSEC3 budget; the walk stops (None)
/// once the budget trips.
fn proven_closest_encloser(
    za: &mut ZoneAnalysis,
    qname: &Name,
    records: &[Record],
) -> Option<String> {
    let n3s = nsec3_views(records);
    if n3s.is_empty() {
        return None;
    }
    let (salt, iterations) = {
        let n = &n3s[0].1;
        (n.salt.clone(), n.iterations)
    };
    let per_hash = 1 + iterations as u64;
    let mut candidate = Some(qname.clone());
    while let Some(c) = candidate {
        if !za.charge_nsec3_rounds(per_hash) {
            return None;
        }
        let h = nsec3_hash(&c, &salt, iterations);
        let matches = n3s.iter().any(|(owner, _)| {
            owner
                .labels()
                .first()
                .and_then(|l| std::str::from_utf8(l.as_bytes()).ok())
                .and_then(ddx_dns::base32::decode)
                .map(|oh| oh == h)
                .unwrap_or(false)
        });
        if matches {
            return Some(c.key());
        }
        candidate = c.parent();
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn check_one_denial(
    za: &mut ZoneAnalysis,
    zone: &Name,
    qname: &Name,
    qtype: RrType,
    kind: DenialKind,
    authorities: &[Record],
    uses_nsec3: bool,
    seen: &mut BTreeSet<(ErrorCode, String)>,
) {
    if za.budget_tripped() {
        return;
    }
    let nsecs = nsec_views(authorities);
    let n3s = nsec3_views(authorities);
    let mut emit = |za: &mut ZoneAnalysis, code: ErrorCode, detail: ErrorDetail| {
        if seen.insert((code, detail.to_string())) {
            za.push(code, None, detail);
        }
    };
    if nsecs.is_empty() && n3s.is_empty() {
        let code = if uses_nsec3 {
            ErrorCode::Nsec3ProofMissing
        } else {
            ErrorCode::NsecProofMissing
        };
        emit(
            za,
            code,
            ErrorDetail::DenialMissing {
                qname: qname.clone(),
                qtype,
                kind,
            },
        );
        return;
    }
    if !n3s.is_empty() {
        // Pre-flight the hash bill before verifying: the closest-encloser
        // search hashes every ancestor plus the next-closer and wildcard
        // candidates, so bound it by (labels + 3) names at (1 + iterations)
        // rounds each. A 3000-iteration KeyTrap chain trips here and costs
        // nothing.
        let iterations = n3s[0].1.iterations as u64;
        let estimate = (iterations + 1) * (qname.label_count() as u64 + 3);
        if za.nsec3_preflight_trips(estimate) {
            return;
        }
        let before = ddx_dnssec::work_snapshot();
        let refs: Vec<(&Name, &Nsec3)> = n3s.iter().map(|(o, n)| (o, n)).collect();
        let outcome = verify_nsec3_denial(qname, qtype, kind, &refs, zone);
        // Charge the rounds the verifier actually requested (its logical
        // ledger is memo-independent, so this stays deterministic).
        let spent = ddx_dnssec::work_snapshot().since(&before).nsec3_hash_rounds;
        za.charge_nsec3_rounds(spent);
        if let Err(fail) = outcome {
            let (code, detail) = match fail {
                DenialFailure::MissingProof => (
                    ErrorCode::Nsec3ProofMissing,
                    ErrorDetail::NoProof { nsec3: true },
                ),
                DenialFailure::BadCoverage => (
                    ErrorCode::Nsec3CoverageBroken,
                    ErrorDetail::NotCovered {
                        qname: qname.clone(),
                        nsec3: true,
                    },
                ),
                DenialFailure::BitmapAssertsType(t) => (
                    ErrorCode::Nsec3BitmapAssertsType,
                    ErrorDetail::BitmapAssertsType {
                        qname: qname.clone(),
                        rtype: t,
                        nsec3: true,
                    },
                ),
                DenialFailure::MissingClosestEncloser => (
                    ErrorCode::Nsec3NoClosestEncloser,
                    ErrorDetail::NoClosestEncloser {
                        qname: qname.clone(),
                    },
                ),
                DenialFailure::MissingWildcardProof => (
                    ErrorCode::Nsec3MissingWildcardProof,
                    ErrorDetail::WildcardUnproven {
                        qname: qname.clone(),
                    },
                ),
                DenialFailure::InvalidOwnerName(n) => (
                    ErrorCode::Nsec3OwnerNotBase32,
                    ErrorDetail::InvalidNsec3Owner { owner: n },
                ),
                DenialFailure::InvalidHashLength(l) => (
                    ErrorCode::Nsec3HashInvalidLength,
                    ErrorDetail::Nsec3HashLength { length: l },
                ),
                DenialFailure::UnsupportedAlgorithm(a) => (
                    ErrorCode::Nsec3UnsupportedAlgorithm,
                    ErrorDetail::Nsec3HashAlgorithm { algorithm: a },
                ),
            };
            emit(za, code, detail);
        }
    }
    if !nsecs.is_empty() {
        let refs: Vec<(&Name, &Nsec)> = nsecs.iter().map(|(o, n)| (o, n)).collect();
        if let Err(fail) = verify_nsec_denial(qname, qtype, kind, &refs, zone) {
            let (code, detail) = match fail {
                DenialFailure::MissingProof => (
                    ErrorCode::NsecProofMissing,
                    ErrorDetail::NoProof { nsec3: false },
                ),
                DenialFailure::BadCoverage => (
                    ErrorCode::NsecCoverageBroken,
                    ErrorDetail::NotCovered {
                        qname: qname.clone(),
                        nsec3: false,
                    },
                ),
                DenialFailure::BitmapAssertsType(t) => (
                    ErrorCode::NsecBitmapAssertsType,
                    ErrorDetail::BitmapAssertsType {
                        qname: qname.clone(),
                        rtype: t,
                        nsec3: false,
                    },
                ),
                DenialFailure::MissingWildcardProof => (
                    ErrorCode::NsecMissingWildcardProof,
                    ErrorDetail::WildcardUnproven {
                        qname: qname.clone(),
                    },
                ),
                other => (
                    ErrorCode::NsecCoverageBroken,
                    ErrorDetail::Note(format!("unexpected NSEC failure {other:?} for {qname}")),
                ),
            };
            emit(za, code, detail);
        }
    }
}
