//! Key-material passes: DNSKEY RRset consistency across servers and
//! per-key sanity (revocation, key length).

use std::collections::BTreeSet;

use ddx_dns::RData;
use ddx_server::ServerId;

use super::{AnalysisPass, ErrorDetail, ZoneAnalysis};
use crate::codes::ErrorCode;

/// Key-set consistency across authoritative servers (paper's
/// "Inconsistent DNSKEY b/w Servers", marker ③).
pub(crate) struct KeyConsistencyPass;

impl AnalysisPass for KeyConsistencyPass {
    fn name(&self) -> &'static str {
        "key-consistency"
    }

    fn run(&self, za: &mut ZoneAnalysis) {
        let sets: Vec<(ServerId, BTreeSet<Vec<u8>>)> = za
            .zp
            .servers
            .iter()
            .filter(|s| s.responsive && s.dnskey.is_some())
            .map(|s| {
                (
                    s.server.clone(),
                    s.dnskeys()
                        .map(|k| RData::Dnskey(k.clone()).to_wire())
                        .collect(),
                )
            })
            .collect();
        if sets.len() < 2 {
            return;
        }
        let first = &sets[0].1;
        for (server, set) in &sets[1..] {
            if set == first {
                continue;
            }
            if set.is_subset(first) || first.is_subset(set) {
                za.push(
                    ErrorCode::DnskeyMissingFromServers,
                    None,
                    ErrorDetail::ServerKeySetDiffers {
                        server: server.clone(),
                        disjoint: false,
                    },
                );
            } else {
                za.push(
                    ErrorCode::DnskeyInconsistentRrset,
                    None,
                    ErrorDetail::ServerKeySetDiffers {
                        server: server.clone(),
                        disjoint: true,
                    },
                );
            }
        }
    }
}

/// Per-key checks: revocation and key-length sanity.
pub(crate) struct KeysPass;

impl AnalysisPass for KeysPass {
    fn name(&self) -> &'static str {
        "keys"
    }

    fn run(&self, za: &mut ZoneAnalysis) {
        let keys = za.dnskeys.clone();
        let usable_sep_exists = keys
            .iter()
            .any(|k| k.is_sep() && !k.is_revoked() && k.is_zone_key());
        for key in &keys {
            let tag = key.key_tag();
            if key.is_revoked() && key.is_sep() && !usable_sep_exists {
                za.push(
                    ErrorCode::DnskeyRevokedNoOtherSep,
                    None,
                    ErrorDetail::RevokedSoleSep { key_tag: tag },
                );
            }
            if let Some(alg) = ddx_dnssec::Algorithm::from_code(key.algorithm) {
                let bits = key.key_bits() as u16;
                let code = if alg.is_rsa() && bits < 512 {
                    Some(ErrorCode::KeyLengthTooShort)
                } else if !alg.key_bits_valid(bits) {
                    Some(ErrorCode::KeyLengthInvalidForAlgorithm)
                } else {
                    None
                };
                if let Some(code) = code {
                    za.push(
                        code,
                        None,
                        ErrorDetail::KeyLength {
                            key_tag: tag,
                            bits,
                            algorithm: key.algorithm,
                        },
                    );
                }
            }
        }
    }
}
