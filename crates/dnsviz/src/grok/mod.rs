//! The `dnsviz grok` analogue: interprets a [`ProbeResult`], attempts to
//! build the chain of trust from the local anchor down to the query domain,
//! and annotates every violation with one of the 47 [`ErrorCode`]s. Finally
//! classifies the snapshot into `sv/svm/sb/is/lm/ic` (paper §3.2.1).
//!
//! The analysis is organized as a sequence of `AnalysisPass`es (an internal
//! trait), one per paper-§3 check family, each operating on a shared
//! `ZoneAnalysis` context:
//!
//! | pass | module | concern |
//! |------|--------|---------|
//! | `key-consistency` | `keys` | DNSKEY RRset agreement across servers |
//! | `keys` | `keys` | per-key revocation and length sanity |
//! | `delegation` | `delegation` | DS ↔ DNSKEY linkage |
//! | `signatures` | `signatures` | RRSIG validation over every RRset |
//! | `denial` | `denial` | NSEC/NSEC3 denial-of-existence proofs |
//! | `algorithms` | `algorithms` | RFC 6840 §5.11 completeness |
//!
//! Every finding carries a typed [`ErrorDetail`] payload (see [`detail`]);
//! downstream consumers (DResolver, the resolver's NSEC3 policy) match on
//! the variants instead of parsing strings.

pub mod detail;
pub mod memo;

mod algorithms;
mod classify;
mod delegation;
mod denial;
mod keys;
mod signatures;

#[cfg(test)]
mod report_tests;
#[cfg(test)]
mod tests;

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use ddx_dns::{Dnskey, Ds, Message, Name, Nsec, Nsec3, RData, RRset, Record, RrType};

use crate::codes::{ErrorCode, WarningCode};
use crate::probe::{ProbeResult, ServerProbe, ZoneProbe};
use crate::status::SnapshotStatus;

pub use detail::{AlgorithmScope, BudgetCounter, DsProblem, ErrorDetail};

/// Per-zone caps on the *logical* validation work grok will spend before
/// degrading to [`ErrorCode::ValidationBudgetExceeded`] — the defense
/// against KeyTrap-class algorithmic-complexity attacks (SigJam, LockCram,
/// high-iteration NSEC3), where a hostile zone makes every signature fail
/// *expensively* instead of cheaply.
///
/// Work is metered in memo-independent units (one per attempted RRSIG
/// verification; `1 + iterations` per NSEC3 hash request), so analysis
/// stays a pure function of `(probe, now, budget)` and the incremental
/// layer's byte-parity pin survives cache temperature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationBudget {
    /// Cap on attempted signature verifications per zone.
    pub max_sig_verifications: u64,
    /// Cap on NSEC3 hash rounds per zone.
    pub max_nsec3_hashes: u64,
}

impl Default for ValidationBudget {
    /// Defaults sized ~10× the worst benign corpus zone: the 8-variant
    /// corpus needs tens of verifications and (with the golden zones'
    /// iterations=10..15 chains) low thousands of hash rounds per zone.
    fn default() -> Self {
        ValidationBudget {
            max_sig_verifications: 512,
            max_nsec3_hashes: 16_384,
        }
    }
}

impl ValidationBudget {
    /// No caps: pre-budget behavior, for harnesses that meter work
    /// themselves.
    pub fn unlimited() -> Self {
        ValidationBudget {
            max_sig_verifications: u64::MAX,
            max_nsec3_hashes: u64::MAX,
        }
    }
}

/// One detected violation.
///
/// Serialization note: the JSON shape keeps the legacy string field
/// (`detail`, rendered via [`ErrorDetail`]'s `Display`) alongside the typed
/// payload (`detail_data`); see the serde impls in [`detail`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInstance {
    pub code: ErrorCode,
    /// The zone the error is attributed to.
    pub zone: Name,
    /// Whether, in this context, the error breaks all authentication paths
    /// (drives `sb` vs `svm`). Starts from [`ErrorCode::is_critical`] but is
    /// downgraded when a fully valid path for the affected RRset exists.
    pub critical: bool,
    /// Typed specifics (key tags, names, algorithms, TTLs).
    pub detail: ErrorDetail,
}

/// Per-zone findings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoneReport {
    pub zone: Name,
    /// Whether the zone presents as signed (DNSKEY/DS/RRSIG material seen).
    pub signed: bool,
    /// Whether the parent served a DS RRset for this zone.
    pub has_ds: bool,
    /// True for the local trust anchor (no parent in the walk).
    pub is_anchor: bool,
    pub errors: Vec<ErrorInstance>,
    /// Advisory findings; never counted toward the snapshot status
    /// (paper §3.1 excludes SHOULD-level warnings).
    #[serde(default)]
    pub warnings: Vec<WarningCode>,
    /// What the probe could *not* observe about this zone (unreachable
    /// servers, truncated or malformed answers). Gaps are not errors — a
    /// zone with gaps may be perfectly healthy — but any error whose
    /// evidence is the *absence* of data is untrustworthy while the zone
    /// has gaps, and DFixer defers such causes rather than prescribing
    /// changes from missing data.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub observation_gaps: Vec<ErrorDetail>,
}

/// The full grok output for one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrokReport {
    pub query_domain: Name,
    pub time: u32,
    pub status: SnapshotStatus,
    pub zones: Vec<ZoneReport>,
}

impl GrokReport {
    /// All error instances, chain order.
    pub fn errors(&self) -> impl Iterator<Item = &ErrorInstance> {
        self.zones.iter().flat_map(|z| z.errors.iter())
    }

    /// Distinct codes across the whole chain.
    pub fn codes(&self) -> BTreeSet<ErrorCode> {
        self.errors().map(|e| e.code).collect()
    }

    /// Distinct codes attributed to the query (leaf) zone and its
    /// delegation — what the paper's pipeline extracts for replication.
    pub fn target_zone_codes(&self) -> BTreeSet<ErrorCode> {
        self.zones
            .last()
            .map(|z| z.errors.iter().map(|e| e.code).collect())
            .unwrap_or_default()
    }

    /// True when no DNSSEC error was found anywhere.
    pub fn clean(&self) -> bool {
        self.zones.iter().all(|z| z.errors.is_empty())
    }

    /// All observation gaps, chain order, with the zone they belong to.
    pub fn observation_gaps(&self) -> impl Iterator<Item = (&Name, &ErrorDetail)> {
        self.zones
            .iter()
            .flat_map(|z| z.observation_gaps.iter().map(move |g| (&z.zone, g)))
    }

    /// True when every query of the walk produced a usable observation —
    /// the precondition for trusting absence-evidence error codes.
    pub fn fully_observed(&self) -> bool {
        self.zones.iter().all(|z| z.observation_gaps.is_empty())
    }

    /// Serialized report, like the JSON files the paper's pipeline parses.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible: no non-string map keys, no fallible Serialize impls")
    }

    /// Parses a serialized report.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Renders the report as the indented, per-zone text DNSViz-style
    /// output operators read (`dnsviz print` analogue).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} @{}: status {}",
            self.query_domain, self.time, self.status
        );
        for z in &self.zones {
            let role = if z.is_anchor {
                "trust anchor"
            } else if z.signed && z.has_ds {
                "signed, delegated"
            } else if z.signed {
                "signed, NO DS"
            } else {
                "unsigned"
            };
            let _ = writeln!(out, "  zone {} [{role}]", z.zone);
            for e in &z.errors {
                let _ = writeln!(
                    out,
                    "    E{} {}: {}",
                    if e.critical { "!" } else { " " },
                    e.code,
                    e.detail
                );
            }
            for w in &z.warnings {
                let _ = writeln!(out, "    W  {}: {}", w, w.message());
            }
            for g in &z.observation_gaps {
                let _ = writeln!(out, "    ?  unobserved: {g}");
            }
            if z.errors.is_empty() && z.warnings.is_empty() {
                let _ = writeln!(out, "    ok");
            }
        }
        out
    }
}

// ------------------------------------------------------------------ helpers

/// Extracts `(rrset, covering sigs)` pairs from a message section.
pub(crate) fn sets_with_sigs(records: &[Record]) -> Vec<(RRset, Vec<ddx_dns::Rrsig>)> {
    let sets = Message::rrsets_in(records);
    sets.iter()
        .filter(|s| s.rtype != RrType::Rrsig)
        .map(|s| {
            let sigs = records
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(sig) if r.name == s.name && sig.type_covered == s.rtype => {
                        Some(sig.clone())
                    }
                    _ => None,
                })
                .collect();
            (s.clone(), sigs)
        })
        .collect()
}

pub(crate) fn nsec_views(records: &[Record]) -> Vec<(Name, Nsec)> {
    records
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Nsec(n) => Some((r.name.clone(), n.clone())),
            _ => None,
        })
        .collect()
}

pub(crate) fn nsec3_views(records: &[Record]) -> Vec<(Name, Nsec3)> {
    records
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Nsec3(n) => Some((r.name.clone(), n.clone())),
            _ => None,
        })
        .collect()
}

/// The working state shared by all analysis passes for one zone.
pub(crate) struct ZoneAnalysis<'a> {
    pub(crate) zp: &'a ZoneProbe,
    pub(crate) now: u32,
    pub(crate) errors: Vec<ErrorInstance>,
    /// Union of DNSKEYs over servers.
    pub(crate) dnskeys: Vec<Dnskey>,
    /// DS records the parent served (empty at the anchor).
    pub(crate) ds_set: Vec<Ds>,
    pub(crate) signed: bool,
    /// Algorithms covered by at least one *valid* RRSIG somewhere.
    pub(crate) algorithms_seen_valid: BTreeSet<u8>,
    /// Algorithms appearing in any RRSIG.
    pub(crate) algorithms_in_sigs: BTreeSet<u8>,
    /// The caps this zone's analysis works under.
    pub(crate) budget: &'a ValidationBudget,
    /// Attempted signature verifications charged so far.
    pub(crate) sig_work: u64,
    /// NSEC3 hash rounds charged so far.
    pub(crate) nsec3_work: u64,
    /// The first counter that blew its cap: `(counter, used, cap)`.
    pub(crate) tripped: Option<(BudgetCounter, u64, u64)>,
}

impl<'a> ZoneAnalysis<'a> {
    pub(crate) fn push(
        &mut self,
        code: ErrorCode,
        critical_override: Option<bool>,
        detail: ErrorDetail,
    ) {
        let critical = critical_override.unwrap_or_else(|| code.is_critical());
        self.errors.push(ErrorInstance {
            code,
            zone: self.zp.zone.clone(),
            critical,
            detail,
        });
    }

    pub(crate) fn has(&self, code: ErrorCode) -> bool {
        self.errors.iter().any(|e| e.code == code)
    }

    /// True once any budget counter has blown its cap; passes that meter
    /// work bail out instead of finishing on partial evidence.
    pub(crate) fn budget_tripped(&self) -> bool {
        self.tripped.is_some()
    }

    /// Charges `n` attempted signature verifications. Returns `false` once
    /// the budget is exhausted — the caller must stop verifying.
    pub(crate) fn charge_sig_verifications(&mut self, n: u64) -> bool {
        self.sig_work += n;
        if self.tripped.is_none() && self.sig_work > self.budget.max_sig_verifications {
            self.tripped = Some((
                BudgetCounter::SigVerifications,
                self.sig_work,
                self.budget.max_sig_verifications,
            ));
        }
        self.tripped.is_none()
    }

    /// Charges `n` NSEC3 hash rounds. Returns `false` once the budget is
    /// exhausted.
    pub(crate) fn charge_nsec3_rounds(&mut self, n: u64) -> bool {
        self.nsec3_work += n;
        if self.tripped.is_none() && self.nsec3_work > self.budget.max_nsec3_hashes {
            self.tripped = Some((
                BudgetCounter::Nsec3Hashes,
                self.nsec3_work,
                self.budget.max_nsec3_hashes,
            ));
        }
        self.tripped.is_none()
    }

    /// Pre-flight check before an NSEC3 proof verification: if spending
    /// `estimate` more hash rounds would bust the cap, trips the budget
    /// *without* doing the work (that is the point — a 3000-iteration chain
    /// must cost nothing) and returns `true` so the caller skips the call.
    pub(crate) fn nsec3_preflight_trips(&mut self, estimate: u64) -> bool {
        if self.tripped.is_some() {
            return true;
        }
        if self.nsec3_work.saturating_add(estimate) > self.budget.max_nsec3_hashes {
            self.tripped = Some((
                BudgetCounter::Nsec3Hashes,
                self.nsec3_work.saturating_add(estimate),
                self.budget.max_nsec3_hashes,
            ));
            return true;
        }
        false
    }
}

/// One check family from paper §3. Passes run in a fixed order over the
/// shared [`ZoneAnalysis`]; later passes may consult earlier findings (e.g.
/// the algorithm pass suppresses codes the signature pass already raised).
pub(crate) trait AnalysisPass: Sync {
    /// Stable identifier, used in trace events.
    fn name(&self) -> &'static str;
    fn run(&self, za: &mut ZoneAnalysis);
}

/// The fixed pass order. Signature analysis must precede the algorithm
/// completeness pass (it feeds `algorithms_in_sigs`).
static PASSES: [&dyn AnalysisPass; 6] = [
    &keys::KeyConsistencyPass,
    &keys::KeysPass,
    &delegation::DelegationPass,
    &signatures::SignaturesPass,
    &denial::DenialPass,
    &algorithms::AlgorithmCompletenessPass,
];

/// One wall-time histogram handle per pass, resolved once per grok call
/// (not per zone × pass) — `grok.pass_us{pass=…}` aggregates across runs.
pub(crate) fn pass_histograms() -> Vec<ddx_obs::Histogram> {
    PASSES
        .iter()
        .map(|p| ddx_obs::histogram("grok.pass_us", &[("pass", p.name())]))
        .collect()
}

/// Runs every analysis pass over one zone's observations and produces its
/// report. Pure in `(zp, now)` — the property the incremental layer
/// ([`memo`]) relies on to splice cached [`ZoneReport`]s into a fresh
/// [`GrokReport`] byte-for-byte.
pub(crate) fn analyze_zone(
    zp: &ZoneProbe,
    now: u32,
    pass_timings: &[ddx_obs::Histogram],
    budget: &ValidationBudget,
) -> ZoneReport {
    ddx_dns::trace_span!(_zone_span, target: "dnsviz::grok", "zone", zone = zp.zone);
    let mut za = ZoneAnalysis {
        zp,
        now,
        errors: Vec::new(),
        dnskeys: collect_dnskeys(zp),
        ds_set: collect_ds(zp),
        signed: false,
        algorithms_seen_valid: BTreeSet::new(),
        algorithms_in_sigs: BTreeSet::new(),
        budget,
        sig_work: 0,
        nsec3_work: 0,
        tripped: None,
    };
    za.signed =
        !za.dnskeys.is_empty() || !za.ds_set.is_empty() || zp.servers.iter().any(server_has_sigs);

    if za.signed && !zp.is_lame() {
        for (pass, timing) in PASSES.iter().zip(pass_timings) {
            let before = za.errors.len();
            let timer = timing.start_timer();
            pass.run(&mut za);
            drop(timer);
            ddx_dns::trace_event!(
                target: "dnsviz::grok",
                "pass complete",
                zone = zp.zone,
                pass = pass.name(),
                new_errors = za.errors.len() - before,
            );
        }
        // The budget error is pushed last: every finding the truncated
        // passes did emit keeps its position, and downstream consumers see
        // the trip alongside (not instead of) the partial evidence.
        if let Some((counter, used, cap)) = za.tripped {
            za.push(
                ErrorCode::ValidationBudgetExceeded,
                None,
                ErrorDetail::BudgetExceeded { counter, used, cap },
            );
        }
    }

    // Work accounting is global and monotone; memo-spliced zones (which
    // skip analyze_zone entirely) bump nothing.
    ddx_obs::counter("grok.budget.sig_verifications", &[]).add(za.sig_work);
    ddx_obs::counter("grok.budget.nsec3_hashes", &[]).add(za.nsec3_work);
    if za.tripped.is_some() {
        ddx_obs::counter("grok.budget.exceeded", &[]).inc();
    }

    let warnings = if za.signed && !zp.is_lame() {
        classify::collect_warnings(&za)
    } else {
        Vec::new()
    };
    ZoneReport {
        zone: zp.zone.clone(),
        signed: za.signed,
        has_ds: !za.ds_set.is_empty(),
        is_anchor: zp.parent.is_none(),
        errors: za.errors,
        warnings,
        observation_gaps: collect_observation_gaps(zp),
    }
}

/// Computes the chain-level `(any_lame, any_orphaned)` flags feeding the
/// snapshot classifier.
pub(crate) fn chain_flags(zones: &[ZoneProbe]) -> (bool, bool) {
    let any_lame = zones.iter().any(|zp| zp.is_lame());
    let any_orphaned = zones.iter().any(|zp| zp.orphaned && !zp.is_lame());
    (any_lame, any_orphaned)
}

/// Runs the full analysis under the default [`ValidationBudget`].
pub fn grok(probe: &ProbeResult) -> GrokReport {
    grok_with_budget(probe, &ValidationBudget::default())
}

/// Runs the full analysis with explicit per-zone validation caps.
pub fn grok_with_budget(probe: &ProbeResult, budget: &ValidationBudget) -> GrokReport {
    ddx_obs::counter("grok.runs", &[]).inc();
    let pass_timings = pass_histograms();
    let now = probe.time;
    let zone_reports: Vec<ZoneReport> = probe
        .zones
        .iter()
        .map(|zp| analyze_zone(zp, now, &pass_timings, budget))
        .collect();
    let (any_lame, any_orphaned) = chain_flags(&probe.zones);
    let status = classify::classify(&zone_reports, any_lame, any_orphaned);
    GrokReport {
        query_domain: probe.query_domain.clone(),
        time: now,
        status,
        zones: zone_reports,
    }
}

/// Translates the probe's retry-exhausted queries into typed gaps: one
/// [`ErrorDetail::ServerUnreachable`] per server that never answered
/// usably (timeouts / REFUSED), plus one entry per truncated or malformed
/// query. Deduplicated, probe order.
fn collect_observation_gaps(zp: &ZoneProbe) -> Vec<ErrorDetail> {
    use crate::probe::{FailureKind, QueryFailure};
    let mut gaps: Vec<ErrorDetail> = Vec::new();
    let mut push =
        |gaps: &mut Vec<ErrorDetail>, server: &ddx_server::ServerId, f: &QueryFailure| {
            let gap = match f.kind {
                FailureKind::Timeout | FailureKind::Refused => ErrorDetail::ServerUnreachable {
                    server: server.clone(),
                    attempts: f.attempts,
                },
                FailureKind::Truncated => ErrorDetail::ResponseTruncated {
                    server: server.clone(),
                    qname: f.qname.clone(),
                    qtype: f.qtype,
                },
                FailureKind::Malformed => ErrorDetail::MalformedResponse {
                    server: server.clone(),
                    qname: f.qname.clone(),
                    qtype: f.qtype,
                },
            };
            if !gaps.contains(&gap) {
                let kind = match gap {
                    ErrorDetail::ServerUnreachable { .. } => "server_unreachable",
                    ErrorDetail::ResponseTruncated { .. } => "response_truncated",
                    _ => "malformed_response",
                };
                ddx_obs::counter("grok.observation_gaps", &[("kind", kind)]).inc();
                gaps.push(gap);
            }
        };
    for sp in &zp.servers {
        for f in &sp.failures {
            push(&mut gaps, &sp.server, f);
        }
    }
    for (server, f) in &zp.lookup_failures {
        push(&mut gaps, server, f);
    }
    gaps
}

fn collect_dnskeys(zp: &ZoneProbe) -> Vec<Dnskey> {
    let mut keys: Vec<Dnskey> = Vec::new();
    for sp in &zp.servers {
        for k in sp.dnskeys() {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
    }
    keys
}

fn collect_ds(zp: &ZoneProbe) -> Vec<Ds> {
    let mut out: Vec<Ds> = Vec::new();
    for (_, resp) in &zp.ds_responses {
        if let Some(msg) = resp {
            for rec in &msg.answers {
                if let RData::Ds(ds) = &rec.rdata {
                    if rec.name == zp.zone && !out.contains(ds) {
                        out.push(ds.clone());
                    }
                }
            }
        }
    }
    out
}

fn server_has_sigs(sp: &ServerProbe) -> bool {
    let msgs = [&sp.soa, &sp.ns, &sp.dnskey, &sp.nxdomain, &sp.nodata];
    msgs.iter().any(|m| {
        m.as_ref()
            .map(|m| {
                m.answers
                    .iter()
                    .chain(&m.authorities)
                    .any(|r| r.rtype() == RrType::Rrsig)
            })
            .unwrap_or(false)
    })
}
