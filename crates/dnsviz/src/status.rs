//! Snapshot status categories (paper §3.2.1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The six snapshot categories a DNSViz run assigns to a query domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SnapshotStatus {
    /// Signed and valid: no DNSSEC errors at all.
    Sv,
    /// Signed and valid with misconfiguration: a violation exists but a
    /// valid authentication path can still be built.
    Svm,
    /// Signed and bogus: at least one query fails validation → SERVFAIL.
    Sb,
    /// Insecure: explicitly unsigned with a valid proof of no DS.
    Is,
    /// Lame: the zone's nameservers don't respond or can't be resolved.
    Lm,
    /// Incomplete: the delegation is missing on the parent side.
    Ic,
}

impl SnapshotStatus {
    /// The paper's lowercase labels.
    pub fn label(self) -> &'static str {
        match self {
            SnapshotStatus::Sv => "sv",
            SnapshotStatus::Svm => "svm",
            SnapshotStatus::Sb => "sb",
            SnapshotStatus::Is => "is",
            SnapshotStatus::Lm => "lm",
            SnapshotStatus::Ic => "ic",
        }
    }

    /// The four DNSSEC-related categories the analysis focuses on.
    pub fn is_dnssec_related(self) -> bool {
        matches!(
            self,
            SnapshotStatus::Sv | SnapshotStatus::Svm | SnapshotStatus::Sb | SnapshotStatus::Is
        )
    }

    /// True when the domain is signed (sv/svm/sb).
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            SnapshotStatus::Sv | SnapshotStatus::Svm | SnapshotStatus::Sb
        )
    }

    pub const ALL: [SnapshotStatus; 6] = [
        SnapshotStatus::Sv,
        SnapshotStatus::Svm,
        SnapshotStatus::Sb,
        SnapshotStatus::Is,
        SnapshotStatus::Lm,
        SnapshotStatus::Ic,
    ];
}

impl fmt::Display for SnapshotStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SnapshotStatus::Sv.label(), "sv");
        assert_eq!(SnapshotStatus::Svm.label(), "svm");
        assert_eq!(SnapshotStatus::Sb.label(), "sb");
        assert_eq!(SnapshotStatus::Is.label(), "is");
        assert_eq!(SnapshotStatus::Lm.label(), "lm");
        assert_eq!(SnapshotStatus::Ic.label(), "ic");
    }

    #[test]
    fn classification_predicates() {
        assert!(SnapshotStatus::Sb.is_dnssec_related());
        assert!(!SnapshotStatus::Lm.is_dnssec_related());
        assert!(SnapshotStatus::Svm.is_signed());
        assert!(!SnapshotStatus::Is.is_signed());
    }
}
