//! The `dnsviz grok` analogue: interprets a [`ProbeResult`], attempts to
//! build the chain of trust from the local anchor down to the query domain,
//! and annotates every violation with one of the 47 [`ErrorCode`]s. Finally
//! classifies the snapshot into `sv/svm/sb/is/lm/ic` (paper §3.2.1).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use ddx_dns::{
    Dnskey, Ds, Message, Name, Nsec, Nsec3, RData, RRset, Record, RrType,
};
use ddx_dnssec::{
    check_ds, nsec3_hash, verify_nsec3_denial, verify_nsec_denial, verify_rrset, DenialFailure,
    DenialKind, DsMatch, VerifyError,
};

use crate::codes::{ErrorCode, WarningCode};
use crate::probe::{ProbeResult, ServerProbe, ZoneProbe, NODATA_PROBE_TYPE, NX_PROBE_LABEL, NX_PROBE_LABEL_HI};
use crate::status::SnapshotStatus;

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorInstance {
    pub code: ErrorCode,
    /// The zone the error is attributed to.
    pub zone: Name,
    /// Whether, in this context, the error breaks all authentication paths
    /// (drives `sb` vs `svm`). Starts from [`ErrorCode::is_critical`] but is
    /// downgraded when a fully valid path for the affected RRset exists.
    pub critical: bool,
    /// Free-form specifics (key tags, names, algorithms).
    pub detail: String,
}

/// Per-zone findings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoneReport {
    pub zone: Name,
    /// Whether the zone presents as signed (DNSKEY/DS/RRSIG material seen).
    pub signed: bool,
    /// Whether the parent served a DS RRset for this zone.
    pub has_ds: bool,
    /// True for the local trust anchor (no parent in the walk).
    pub is_anchor: bool,
    pub errors: Vec<ErrorInstance>,
    /// Advisory findings; never counted toward the snapshot status
    /// (paper §3.1 excludes SHOULD-level warnings).
    #[serde(default)]
    pub warnings: Vec<WarningCode>,
}

/// The full grok output for one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrokReport {
    pub query_domain: Name,
    pub time: u32,
    pub status: SnapshotStatus,
    pub zones: Vec<ZoneReport>,
}

impl GrokReport {
    /// All error instances, chain order.
    pub fn errors(&self) -> impl Iterator<Item = &ErrorInstance> {
        self.zones.iter().flat_map(|z| z.errors.iter())
    }

    /// Distinct codes across the whole chain.
    pub fn codes(&self) -> BTreeSet<ErrorCode> {
        self.errors().map(|e| e.code).collect()
    }

    /// Distinct codes attributed to the query (leaf) zone and its
    /// delegation — what the paper's pipeline extracts for replication.
    pub fn target_zone_codes(&self) -> BTreeSet<ErrorCode> {
        self.zones
            .last()
            .map(|z| z.errors.iter().map(|e| e.code).collect())
            .unwrap_or_default()
    }

    /// True when no DNSSEC error was found anywhere.
    pub fn clean(&self) -> bool {
        self.zones.iter().all(|z| z.errors.is_empty())
    }

    /// Serialized report, like the JSON files the paper's pipeline parses.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a serialized report.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

// ------------------------------------------------------------------ helpers

/// Extracts `(rrset, covering sigs)` pairs from a message section.
fn sets_with_sigs(records: &[Record]) -> Vec<(RRset, Vec<ddx_dns::Rrsig>)> {
    let sets = Message::rrsets_in(records);
    sets.iter()
        .filter(|s| s.rtype != RrType::Rrsig)
        .map(|s| {
            let sigs = records
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(sig)
                        if r.name == s.name && sig.type_covered == s.rtype =>
                    {
                        Some(sig.clone())
                    }
                    _ => None,
                })
                .collect();
            (s.clone(), sigs)
        })
        .collect()
}

fn nsec_views(records: &[Record]) -> Vec<(Name, Nsec)> {
    records
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Nsec(n) => Some((r.name.clone(), n.clone())),
            _ => None,
        })
        .collect()
}

fn nsec3_views(records: &[Record]) -> Vec<(Name, Nsec3)> {
    records
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Nsec3(n) => Some((r.name.clone(), n.clone())),
            _ => None,
        })
        .collect()
}

/// The working state while analyzing one zone.
struct ZoneAnalysis<'a> {
    zp: &'a ZoneProbe,
    now: u32,
    errors: Vec<ErrorInstance>,
    /// Union of DNSKEYs over servers.
    dnskeys: Vec<Dnskey>,
    /// DS records the parent served (empty at the anchor).
    ds_set: Vec<Ds>,
    signed: bool,
    /// Algorithms covered by at least one *valid* RRSIG somewhere.
    algorithms_seen_valid: BTreeSet<u8>,
    /// Algorithms appearing in any RRSIG.
    algorithms_in_sigs: BTreeSet<u8>,
}

impl<'a> ZoneAnalysis<'a> {
    fn push(&mut self, code: ErrorCode, critical_override: Option<bool>, detail: String) {
        let critical = critical_override.unwrap_or_else(|| code.is_critical());
        self.errors.push(ErrorInstance {
            code,
            zone: self.zp.zone.clone(),
            critical,
            detail,
        });
    }

    fn has(&self, code: ErrorCode) -> bool {
        self.errors.iter().any(|e| e.code == code)
    }
}

/// Runs the full analysis.
pub fn grok(probe: &ProbeResult) -> GrokReport {
    let now = probe.time;
    let mut zone_reports = Vec::new();
    let mut any_lame = false;
    let mut any_orphaned = false;

    for zp in &probe.zones {
        if zp.is_lame() {
            any_lame = true;
        }
        if zp.orphaned && !zp.is_lame() {
            any_orphaned = true;
        }
        let mut za = ZoneAnalysis {
            zp,
            now,
            errors: Vec::new(),
            dnskeys: collect_dnskeys(zp),
            ds_set: collect_ds(zp),
            signed: false,
            algorithms_seen_valid: BTreeSet::new(),
            algorithms_in_sigs: BTreeSet::new(),
        };
        za.signed = !za.dnskeys.is_empty()
            || !za.ds_set.is_empty()
            || zp.servers.iter().any(server_has_sigs);

        if za.signed && !zp.is_lame() {
            check_key_consistency(&mut za);
            check_keys(&mut za);
            check_delegation(&mut za);
            check_signatures(&mut za);
            check_denial(&mut za);
            check_algorithm_completeness(&mut za);
        }

        let warnings = if za.signed && !zp.is_lame() {
            collect_warnings(&za)
        } else {
            Vec::new()
        };
        zone_reports.push(ZoneReport {
            zone: zp.zone.clone(),
            signed: za.signed,
            has_ds: !za.ds_set.is_empty(),
            is_anchor: zp.parent.is_none(),
            errors: za.errors,
            warnings,
        });
    }

    let status = classify(&zone_reports, any_lame, any_orphaned);
    GrokReport {
        query_domain: probe.query_domain.clone(),
        time: now,
        status,
        zones: zone_reports,
    }
}

/// Status resolution, walking the chain top-down the way a validator does:
/// a broken (bogus) zone above makes the answer SERVFAIL before any
/// insecurity below could be proven, while a DS-less delegation switches the
/// rest of the chain to plain DNS (insecure) and masks errors below it.
fn classify(zones: &[ZoneReport], any_lame: bool, any_orphaned: bool) -> SnapshotStatus {
    if any_orphaned {
        return SnapshotStatus::Ic;
    }
    if any_lame {
        return SnapshotStatus::Lm;
    }
    let mut any_error = false;
    let mut any_critical = false;
    for z in zones {
        if !z.is_anchor && !z.has_ds {
            // Insecure delegation: validation stops here. Errors found
            // above this break decide between sb/svm; errors below cannot
            // cause SERVFAIL.
            return if any_critical {
                SnapshotStatus::Sb
            } else {
                SnapshotStatus::Is
            };
        }
        for e in &z.errors {
            any_error = true;
            any_critical |= e.critical;
        }
    }
    let query_signed = zones.last().map(|z| z.signed).unwrap_or(false);
    if !query_signed {
        return SnapshotStatus::Is;
    }
    if any_critical {
        SnapshotStatus::Sb
    } else if any_error {
        SnapshotStatus::Svm
    } else {
        SnapshotStatus::Sv
    }
}

/// Advisory findings (never status-affecting).
fn collect_warnings(za: &ZoneAnalysis) -> Vec<WarningCode> {
    let mut out = Vec::new();
    // NSEC3 salt (RFC 9276 SHOULD).
    let salted = za.zp.servers.iter().any(|sp| {
        [&sp.nxdomain, &sp.nodata]
            .into_iter()
            .flatten()
            .flat_map(|m| m.authorities.iter())
            .any(|r| matches!(&r.rdata, RData::Nsec3(n) if !n.salt.is_empty()))
    });
    if salted {
        out.push(WarningCode::Nsec3SaltPresent);
    }
    // Single-key zones.
    if za.dnskeys.len() == 1 {
        out.push(WarningCode::SingleKeyZone);
    }
    // SHA-1 DS digests.
    if za.ds_set.iter().any(|d| d.digest_type == 1) {
        out.push(WarningCode::Sha1DsDigest);
    }
    // Very short signature windows: look at the apex SOA signature.
    let short = za.zp.servers.iter().any(|sp| {
        sp.soa
            .as_ref()
            .map(|m| {
                m.answers.iter().any(|r| {
                    matches!(&r.rdata, RData::Rrsig(s)
                        if s.expiration.saturating_sub(s.inception) < 2 * 86_400)
                })
            })
            .unwrap_or(false)
    });
    if short {
        out.push(WarningCode::ShortSignatureLifetime);
    }
    out
}

fn collect_dnskeys(zp: &ZoneProbe) -> Vec<Dnskey> {
    let mut keys: Vec<Dnskey> = Vec::new();
    for sp in &zp.servers {
        for k in sp.dnskeys() {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys
}

fn collect_ds(zp: &ZoneProbe) -> Vec<Ds> {
    let mut out: Vec<Ds> = Vec::new();
    for (_, resp) in &zp.ds_responses {
        if let Some(msg) = resp {
            for rec in &msg.answers {
                if let RData::Ds(ds) = &rec.rdata {
                    if rec.name == zp.zone && !out.contains(ds) {
                        out.push(ds.clone());
                    }
                }
            }
        }
    }
    out
}

fn server_has_sigs(sp: &ServerProbe) -> bool {
    let msgs = [&sp.soa, &sp.ns, &sp.dnskey, &sp.nxdomain, &sp.nodata];
    msgs.iter().any(|m| {
        m.as_ref()
            .map(|m| {
                m.answers
                    .iter()
                    .chain(&m.authorities)
                    .any(|r| r.rtype() == RrType::Rrsig)
            })
            .unwrap_or(false)
    })
}

// ------------------------------------------------------ individual checks

/// Key-set consistency across authoritative servers (paper's
/// "Inconsistent DNSKEY b/w Servers", marker ③).
fn check_key_consistency(za: &mut ZoneAnalysis) {
    let sets: Vec<(String, BTreeSet<Vec<u8>>)> = za
        .zp
        .servers
        .iter()
        .filter(|s| s.responsive && s.dnskey.is_some())
        .map(|s| {
            (
                s.server.0.clone(),
                s.dnskeys()
                    .iter()
                    .map(|k| RData::Dnskey(k.clone()).to_wire())
                    .collect(),
            )
        })
        .collect();
    if sets.len() < 2 {
        return;
    }
    let first = &sets[0].1;
    for (server, set) in &sets[1..] {
        if set == first {
            continue;
        }
        if set.is_subset(first) || first.is_subset(set) {
            za.push(
                ErrorCode::DnskeyMissingFromServers,
                None,
                format!("DNSKEY set differs by presence on server {server}"),
            );
        } else {
            za.push(
                ErrorCode::DnskeyInconsistentRrset,
                None,
                format!("disjoint DNSKEY material on server {server}"),
            );
        }
    }
}

/// Per-key checks: revocation and key-length sanity.
fn check_keys(za: &mut ZoneAnalysis) {
    let keys = za.dnskeys.clone();
    let usable_sep_exists = keys
        .iter()
        .any(|k| k.is_sep() && !k.is_revoked() && k.is_zone_key());
    for key in &keys {
        let tag = key.key_tag();
        if key.is_revoked() && key.is_sep() && !usable_sep_exists {
            za.push(
                ErrorCode::DnskeyRevokedNoOtherSep,
                None,
                format!("revoked SEP key_tag={tag} is the only secure entry point"),
            );
        }
        if let Some(alg) = ddx_dnssec::Algorithm::from_code(key.algorithm) {
            let bits = key.key_bits() as u16;
            if alg.is_rsa() && bits < 512 {
                za.push(
                    ErrorCode::KeyLengthTooShort,
                    None,
                    format!("key_tag={tag} has {bits}-bit RSA key"),
                );
            } else if !alg.key_bits_valid(bits) {
                za.push(
                    ErrorCode::KeyLengthInvalidForAlgorithm,
                    None,
                    format!("key_tag={tag} has {bits}-bit key for {alg}"),
                );
            }
        }
    }
}

/// DS ↔ DNSKEY linkage (paper's "Delegation" category).
fn check_delegation(za: &mut ZoneAnalysis) {
    if za.zp.parent.is_none() {
        return; // local trust anchor
    }
    let ds_set = za.ds_set.clone();
    if ds_set.is_empty() {
        return; // unsigned delegation → insecure, handled by classify()
    }
    if za.dnskeys.is_empty() {
        za.push(
            ErrorCode::DnskeyMissingForDs,
            None,
            "parent serves DS but the zone returned no DNSKEY RRset".into(),
        );
        return;
    }
    let key_algorithms: BTreeSet<u8> = za.dnskeys.iter().map(|k| k.algorithm).collect();
    let mut any_good_link = false;
    for ds in &ds_set {
        let tag_matches: Vec<Dnskey> = za
            .dnskeys
            .iter()
            .filter(|k| k.key_tag() == ds.key_tag)
            .cloned()
            .collect();
        if tag_matches.is_empty() {
            if key_algorithms.contains(&ds.algorithm) {
                // Stale DS pointing at a removed key of a live algorithm.
                za.push(
                    ErrorCode::DsDigestInvalid,
                    None,
                    format!("DS key_tag={} matches no DNSKEY", ds.key_tag),
                );
            } else {
                za.push(
                    ErrorCode::DsMissingKeyForAlgorithm,
                    None,
                    format!(
                        "DS references algorithm {} with no DNSKEY (key_tag={})",
                        ds.algorithm, ds.key_tag
                    ),
                );
            }
            continue;
        }
        for key in &tag_matches {
            match check_ds(&za.zp.zone.clone(), ds, key) {
                DsMatch::Match => {
                    if key.is_revoked() {
                        za.push(
                            ErrorCode::DsReferencesRevokedKey,
                            None,
                            format!("DS key_tag={} references a revoked DNSKEY", ds.key_tag),
                        );
                    } else if !key.is_zone_key() {
                        za.push(
                            ErrorCode::DsDigestInvalid,
                            None,
                            format!("DS key_tag={} references a non-zone key", ds.key_tag),
                        );
                    } else {
                        if !key.is_sep() {
                            za.push(
                                ErrorCode::NoSepForDsAlgorithm,
                                None,
                                format!(
                                    "DS key_tag={} links a key without the SEP flag",
                                    ds.key_tag
                                ),
                            );
                        }
                        any_good_link = true;
                    }
                }
                DsMatch::DigestMismatch => za.push(
                    ErrorCode::DsDigestInvalid,
                    None,
                    format!("DS digest mismatch for key_tag={}", ds.key_tag),
                ),
                DsMatch::AlgorithmMismatch => za.push(
                    ErrorCode::DsAlgorithmMismatch,
                    None,
                    format!(
                        "DS algorithm {} disagrees with DNSKEY algorithm for key_tag={}",
                        ds.algorithm, ds.key_tag
                    ),
                ),
                DsMatch::UnsupportedDigest => za.push(
                    ErrorCode::DsUnknownDigestType,
                    None,
                    format!("DS digest type {} unsupported", ds.digest_type),
                ),
                DsMatch::TagMismatch => unreachable!("filtered by tag"),
            }
        }
    }
    if !any_good_link {
        za.push(
            ErrorCode::NoSecureEntryPoint,
            None,
            "no DS record authenticates any usable DNSKEY".into(),
        );
    }
}

fn map_verify_error(err: &VerifyError) -> ErrorCode {
    match err {
        VerifyError::Expired { .. } => ErrorCode::RrsigExpired,
        VerifyError::NotYetValid { .. } => ErrorCode::RrsigNotYetValid,
        VerifyError::BadSignature => ErrorCode::RrsigInvalid,
        VerifyError::SignerMismatch { .. } => ErrorCode::RrsigSignerMismatch,
        VerifyError::BadLabelCount { .. } => ErrorCode::RrsigLabelsExceedOwner,
        VerifyError::BadSignatureLength { .. } => ErrorCode::RrsigBadLength,
        VerifyError::Revoked => ErrorCode::RevokedKeyInUse,
        VerifyError::NotZoneKey => ErrorCode::RrsigInvalidRdata,
        VerifyError::KeyTagMismatch { .. } | VerifyError::AlgorithmMismatch { .. } => {
            ErrorCode::RrsigInvalidRdata
        }
    }
}

/// Signature validation over every RRset each server returned.
fn check_signatures(za: &mut ZoneAnalysis) {
    let zone = za.zp.zone.clone();
    // (name, type) → servers that served it signed / unsigned.
    let mut signed_on: BTreeMap<(String, u16), Vec<bool>> = BTreeMap::new();
    // Deduplicate identical findings across servers.
    let mut seen: BTreeSet<(ErrorCode, String)> = BTreeSet::new();

    let server_probes: Vec<ServerProbe> = za
        .zp
        .servers
        .iter()
        .filter(|s| s.responsive)
        .cloned()
        .collect();
    for sp in &server_probes {
        let keys = sp.dnskeys();
        let keys = if keys.is_empty() { za.dnskeys.clone() } else { keys };
        let mut messages: Vec<&Message> = Vec::new();
        for m in [
            &sp.soa,
            &sp.ns,
            &sp.dnskey,
            &sp.nxdomain,
            &sp.nxdomain_hi,
            &sp.nodata,
            &sp.nsec3param,
        ].into_iter().flatten() {
            messages.push(m);
        }
        for (_, m) in &sp.answers {
            if let Some(m) = m {
                messages.push(m);
            }
        }
        let mut checked: BTreeSet<(String, u16)> = BTreeSet::new();
        for msg in messages {
            for section in [&msg.answers, &msg.authorities] {
                for (set, sigs) in sets_with_sigs(section) {
                    // Only this zone's data, and only signable sets.
                    if !set.name.is_subdomain_of(&zone) || set.rtype == RrType::Rrsig {
                        continue;
                    }
                    // A delegation NS set (authority section referral) is
                    // legitimately unsigned; skip NS sets not at the apex.
                    if set.rtype == RrType::Ns && set.name != zone {
                        continue;
                    }
                    let key = (set.name.key(), set.rtype.code());
                    if !checked.insert(key.clone()) {
                        continue;
                    }
                    signed_on.entry(key).or_default().push(!sigs.is_empty());
                    analyze_rrset(za, &set, &sigs, &keys, &mut seen);
                }
            }
        }
    }

    // Cross-server missing-signature detection.
    for ((name_key, type_code), flags) in &signed_on {
        let missing = flags.iter().filter(|f| !**f).count();
        if missing == 0 {
            continue;
        }
        let rtype = RrType::from_code(*type_code);
        let everywhere = missing == flags.len();
        let code = if !everywhere {
            ErrorCode::RrsigMissingFromServers
        } else if rtype == RrType::Dnskey {
            ErrorCode::RrsigMissingForDnskey
        } else {
            ErrorCode::RrsigMissing
        };
        if seen.insert((code, format!("{name_key}/{rtype}"))) {
            za.push(
                code,
                Some(code.is_critical() && everywhere),
                format!("{name_key} {rtype} lacks covering RRSIG"),
            );
        }
    }
}

/// Validates one RRset's signatures against the zone's keys.
fn analyze_rrset(
    za: &mut ZoneAnalysis,
    set: &RRset,
    sigs: &[ddx_dns::Rrsig],
    keys: &[Dnskey],
    seen: &mut BTreeSet<(ErrorCode, String)>,
) {
    let zone = za.zp.zone.clone();
    let now = za.now;
    let _ = now;
    if sigs.is_empty() {
        return; // handled by the cross-server pass
    }
    let mut any_valid = false;
    let mut failures: Vec<(ErrorCode, String)> = Vec::new();
    for sig in sigs {
        za.algorithms_in_sigs.insert(sig.algorithm);
        let key = keys.iter().find(|k| k.key_tag() == sig.key_tag);
        let Some(key) = key else {
            let key_algos: BTreeSet<u8> = keys.iter().map(|k| k.algorithm).collect();
            let code = if key_algos.contains(&sig.algorithm) {
                ErrorCode::RrsigUnknownKeyTag
            } else {
                ErrorCode::RrsigAlgorithmWithoutDnskey
            };
            failures.push((
                code,
                format!(
                    "{} {} RRSIG key_tag={} alg={} matches no DNSKEY",
                    set.name, set.rtype, sig.key_tag, sig.algorithm
                ),
            ));
            continue;
        };
        // The Original TTL comparison is independent of the cryptographic
        // outcome (a served TTL above the signed original is wrong either
        // way); a lower served TTL is fine (decremented caches).
        if set.ttl > sig.original_ttl {
            failures.push((
                ErrorCode::OriginalTtlExceeded,
                format!(
                    "{} {} TTL {} exceeds RRSIG original TTL {}",
                    set.name, set.rtype, set.ttl, sig.original_ttl
                ),
            ));
        }
        match verify_rrset(set, sig, key, &zone, now) {
            Ok(()) => {
                any_valid = true;
                za.algorithms_seen_valid.insert(sig.algorithm);
                if now.saturating_add(set.ttl) > sig.expiration {
                    failures.push((
                        ErrorCode::TtlBeyondSignatureExpiry,
                        format!(
                            "{} {} TTL {} outlives signature expiration",
                            set.name, set.rtype, set.ttl
                        ),
                    ));
                }
            }
            Err(err) => {
                let code = map_verify_error(&err);
                failures.push((code, format!("{} {}: {err}", set.name, set.rtype)));
            }
        }
    }
    for (code, detail) in failures {
        if seen.insert((code, detail.clone())) {
            // If some other signature fully validated this RRset, the
            // failure does not break the authentication path.
            let critical = code.is_critical() && !any_valid;
            za.push(code, Some(critical), detail);
        }
    }
}

/// Negative-response (denial-of-existence) validation.
fn check_denial(za: &mut ZoneAnalysis) {
    let zone = za.zp.zone.clone();
    let nx_name = zone.child(NX_PROBE_LABEL).expect("probe label");
    let nx_name_hi = zone.child(NX_PROBE_LABEL_HI).expect("probe label");
    let mut seen: BTreeSet<(ErrorCode, String)> = BTreeSet::new();
    // Closest enclosers proven by each server, for consistency checking.
    let mut ancestors: BTreeSet<String> = BTreeSet::new();

    let servers: Vec<ServerProbe> = za
        .zp
        .servers
        .iter()
        .filter(|s| s.responsive)
        .cloned()
        .collect();
    let uses_nsec3 = servers.iter().any(|sp| {
        sp.nsec3param
            .as_ref()
            .map(|m| m.answers.iter().any(|r| r.rtype() == RrType::Nsec3Param))
            .unwrap_or(false)
            || sp
                .nxdomain
                .as_ref()
                .map(|m| m.authorities.iter().any(|r| r.rtype() == RrType::Nsec3))
                .unwrap_or(false)
            || sp
                .nodata
                .as_ref()
                .map(|m| m.authorities.iter().any(|r| r.rtype() == RrType::Nsec3))
                .unwrap_or(false)
    });

    for sp in &servers {
        // --- NXDOMAIN probes (low- and high-sorting labels) ---
        for (nx, msg) in [(&nx_name, &sp.nxdomain), (&nx_name_hi, &sp.nxdomain_hi)] {
            let Some(msg) = msg else { continue };
            if msg.answers.is_empty() {
                check_one_denial(
                    za,
                    &zone,
                    nx,
                    RrType::A,
                    DenialKind::NxDomain,
                    &msg.authorities,
                    uses_nsec3,
                    &mut seen,
                );
                if let Some(ce) = proven_closest_encloser(nx, &msg.authorities) {
                    ancestors.insert(ce);
                }
            }
        }
        // --- NODATA probe ---
        if let Some(msg) = &sp.nodata {
            if msg.answers.is_empty() && msg.rcode == ddx_dns::Rcode::NoError {
                check_one_denial(
                    za,
                    &zone,
                    &zone.clone(),
                    NODATA_PROBE_TYPE,
                    DenialKind::NoData,
                    &msg.authorities,
                    uses_nsec3,
                    &mut seen,
                );
            }
        }
        // --- chain-level NSEC/NSEC3 structural findings ---
        let mut all_denial_records: Vec<Record> = Vec::new();
        for m in [&sp.nxdomain, &sp.nxdomain_hi, &sp.nodata].into_iter().flatten() {
            all_denial_records.extend(m.authorities.iter().cloned());
        }
        for (owner, nsec) in nsec_views(&all_denial_records) {
            if owner.canonical_cmp(&nsec.next_name) == std::cmp::Ordering::Greater
                && nsec.next_name != zone
            {
                let detail = format!("last NSEC at {owner} points to {}", nsec.next_name);
                if seen.insert((ErrorCode::LastNsecNotApex, detail.clone())) {
                    za.push(ErrorCode::LastNsecNotApex, None, detail);
                }
            }
        }
        let n3s = nsec3_views(&all_denial_records);
        if !n3s.is_empty() {
            if n3s.iter().any(|(_, n)| n.iterations > 0) {
                let iters = n3s.iter().map(|(_, n)| n.iterations).max().unwrap_or(0);
                let detail = format!("NSEC3 iterations={iters}");
                if seen.insert((ErrorCode::Nsec3IterationsNonzero, detail.clone())) {
                    za.push(ErrorCode::Nsec3IterationsNonzero, None, detail);
                }
            }
            let flags: BTreeSet<u8> = n3s.iter().map(|(_, n)| n.flags & 0x01).collect();
            if flags.len() > 1 {
                let detail = "opt-out flag inconsistent across chain".to_string();
                if seen.insert((ErrorCode::Nsec3OptOutViolation, detail.clone())) {
                    za.push(ErrorCode::Nsec3OptOutViolation, None, detail);
                }
            }
            // NSEC3PARAM agreement.
            if let Some(pmsg) = &sp.nsec3param {
                for rec in &pmsg.answers {
                    if let RData::Nsec3Param(p) = &rec.rdata {
                        let mismatch = n3s.iter().any(|(_, n)| {
                            n.iterations != p.iterations || n.salt != p.salt
                        });
                        if mismatch {
                            let detail = format!(
                                "NSEC3PARAM iterations={} salt_len={} disagrees with chain",
                                p.iterations,
                                p.salt.len()
                            );
                            if seen.insert((ErrorCode::Nsec3ParamMismatch, detail.clone())) {
                                za.push(ErrorCode::Nsec3ParamMismatch, None, detail);
                            }
                        }
                    }
                }
            }
        }
    }

    if ancestors.len() > 1 {
        za.push(
            ErrorCode::Nsec3InconsistentAncestor,
            None,
            format!("servers prove different closest enclosers: {ancestors:?}"),
        );
    }
}

/// The closest encloser a response's NSEC3 records actually match for
/// `qname`, as a map key (None for NSEC zones / no match).
fn proven_closest_encloser(qname: &Name, records: &[Record]) -> Option<String> {
    let n3s = nsec3_views(records);
    if n3s.is_empty() {
        return None;
    }
    let (salt, iterations) = {
        let n = &n3s[0].1;
        (n.salt.clone(), n.iterations)
    };
    let mut candidate = Some(qname.clone());
    while let Some(c) = candidate {
        let h = nsec3_hash(&c, &salt, iterations);
        let matches = n3s.iter().any(|(owner, _)| {
            owner
                .labels()
                .first()
                .and_then(|l| std::str::from_utf8(l.as_bytes()).ok())
                .and_then(ddx_dns::base32::decode)
                .map(|oh| oh == h)
                .unwrap_or(false)
        });
        if matches {
            return Some(c.key());
        }
        candidate = c.parent();
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn check_one_denial(
    za: &mut ZoneAnalysis,
    zone: &Name,
    qname: &Name,
    qtype: RrType,
    kind: DenialKind,
    authorities: &[Record],
    uses_nsec3: bool,
    seen: &mut BTreeSet<(ErrorCode, String)>,
) {
    let nsecs = nsec_views(authorities);
    let n3s = nsec3_views(authorities);
    let mut emit = |za: &mut ZoneAnalysis, code: ErrorCode, detail: String| {
        if seen.insert((code, detail.clone())) {
            za.push(code, None, detail);
        }
    };
    if nsecs.is_empty() && n3s.is_empty() {
        let code = if uses_nsec3 {
            ErrorCode::Nsec3ProofMissing
        } else {
            ErrorCode::NsecProofMissing
        };
        emit(za, code, format!("no denial records for {qname} {qtype} ({kind:?})"));
        return;
    }
    if !n3s.is_empty() {
        let refs: Vec<(&Name, &Nsec3)> = n3s.iter().map(|(o, n)| (o, n)).collect();
        if let Err(fail) = verify_nsec3_denial(qname, qtype, kind, &refs, zone) {
            let (code, detail) = match fail {
                DenialFailure::MissingProof => {
                    (ErrorCode::Nsec3ProofMissing, "no NSEC3 proof".into())
                }
                DenialFailure::BadCoverage => (
                    ErrorCode::Nsec3CoverageBroken,
                    format!("no NSEC3 RR covers {qname}"),
                ),
                DenialFailure::BitmapAssertsType(t) => (
                    ErrorCode::Nsec3BitmapAssertsType,
                    format!("NSEC3 bitmap asserts {t} at {qname}"),
                ),
                DenialFailure::MissingClosestEncloser => (
                    ErrorCode::Nsec3NoClosestEncloser,
                    format!("no closest-encloser match for {qname}"),
                ),
                DenialFailure::MissingWildcardProof => (
                    ErrorCode::Nsec3MissingWildcardProof,
                    format!("wildcard absence unproven for {qname}"),
                ),
                DenialFailure::InvalidOwnerName(n) => (
                    ErrorCode::Nsec3OwnerNotBase32,
                    format!("invalid NSEC3 owner {n}"),
                ),
                DenialFailure::InvalidHashLength(l) => (
                    ErrorCode::Nsec3HashInvalidLength,
                    format!("NSEC3 hash length {l}"),
                ),
                DenialFailure::UnsupportedAlgorithm(a) => (
                    ErrorCode::Nsec3UnsupportedAlgorithm,
                    format!("NSEC3 hash algorithm {a}"),
                ),
            };
            emit(za, code, detail);
        }
    }
    if !nsecs.is_empty() {
        let refs: Vec<(&Name, &Nsec)> = nsecs.iter().map(|(o, n)| (o, n)).collect();
        if let Err(fail) = verify_nsec_denial(qname, qtype, kind, &refs, zone) {
            let (code, detail) = match fail {
                DenialFailure::MissingProof => {
                    (ErrorCode::NsecProofMissing, "no NSEC proof".into())
                }
                DenialFailure::BadCoverage => (
                    ErrorCode::NsecCoverageBroken,
                    format!("no NSEC RR covers {qname}"),
                ),
                DenialFailure::BitmapAssertsType(t) => (
                    ErrorCode::NsecBitmapAssertsType,
                    format!("NSEC bitmap asserts {t} at {qname}"),
                ),
                DenialFailure::MissingWildcardProof => (
                    ErrorCode::NsecMissingWildcardProof,
                    format!("wildcard absence unproven for {qname}"),
                ),
                other => (
                    ErrorCode::NsecCoverageBroken,
                    format!("unexpected NSEC failure {other:?} for {qname}"),
                ),
            };
            emit(za, code, detail);
        }
    }
}

/// RFC 6840 §5.11 algorithm-completeness checks.
fn check_algorithm_completeness(za: &mut ZoneAnalysis) {
    if za.algorithms_in_sigs.is_empty() && za.dnskeys.is_empty() {
        return;
    }
    let key_algorithms: BTreeSet<u8> = za.dnskeys.iter().map(|k| k.algorithm).collect();
    let sig_algorithms = za.algorithms_in_sigs.clone();
    let ds_algorithms: BTreeSet<u8> = za.ds_set.iter().map(|d| d.algorithm).collect();

    for alg in &key_algorithms {
        if !sig_algorithms.contains(alg) {
            za.push(
                ErrorCode::DnskeyAlgorithmWithoutRrsig,
                None,
                format!("DNSKEY algorithm {alg} signs no RRset"),
            );
        }
    }
    for alg in &ds_algorithms {
        if key_algorithms.contains(alg) && !sig_algorithms.contains(alg) {
            za.push(
                ErrorCode::DsAlgorithmWithoutRrsig,
                None,
                format!("DS algorithm {alg} has no covering RRSIG"),
            );
        }
    }
    // RRSIG algorithms with no DNSKEY at all (when not already reported at
    // the signature level — e.g. all sigs of that algorithm were skipped).
    for alg in &sig_algorithms {
        if !key_algorithms.contains(alg) && !za.has(ErrorCode::RrsigAlgorithmWithoutDnskey) {
            za.push(
                ErrorCode::RrsigAlgorithmWithoutDnskey,
                None,
                format!("RRSIG algorithm {alg} has no DNSKEY"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{probe, ProbeConfig};
    use ddx_dns::name;
    use ddx_dnssec::{
        make_ds, resign_rrset, sigs_covering, DigestType, KeyRole, Nsec3Config, SignOptions,
    };
    use ddx_server::{build_sandbox, Sandbox, ServerBehavior, ZoneSpec};

    const NOW: u32 = 1_000_000;

    fn standard_sandbox(nsec3: Option<Nsec3Config>) -> Sandbox {
        let mut leaf = ZoneSpec::conventional(name("chd.par.a.com"));
        leaf.nsec3 = nsec3;
        build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
                leaf,
            ],
            NOW,
            11,
        )
    }

    fn cfg_for(sb: &Sandbox) -> ProbeConfig {
        ProbeConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            query_domain: sb.leaf().apex.child("www").unwrap(),
            target_types: vec![RrType::A],
            time: NOW,
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
        }
    }

    fn run(sb: &Sandbox) -> GrokReport {
        grok(&probe(&sb.testbed, &cfg_for(sb)))
    }

    #[test]
    fn healthy_nsec_hierarchy_is_sv() {
        let sb = standard_sandbox(None);
        let report = run(&sb);
        assert!(report.clean(), "unexpected errors: {:#?}", report.codes());
        assert_eq!(report.status, SnapshotStatus::Sv);
        assert_eq!(report.zones.len(), 3);
        assert!(report.zones.iter().all(|z| z.signed));
    }

    #[test]
    fn healthy_nsec3_hierarchy_is_sv() {
        let sb = standard_sandbox(Some(Nsec3Config::default()));
        let report = run(&sb);
        assert!(report.clean(), "unexpected errors: {:#?}", report.codes());
        assert_eq!(report.status, SnapshotStatus::Sv);
    }

    #[test]
    fn nzic_yields_svm() {
        let sb = standard_sandbox(Some(Nsec3Config {
            iterations: 10,
            ..Default::default()
        }));
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Svm);
        assert!(report.codes().contains(&ErrorCode::Nsec3IterationsNonzero));
        assert!(report
            .target_zone_codes()
            .contains(&ErrorCode::Nsec3IterationsNonzero));
    }

    #[test]
    fn expired_signature_is_sb() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
        let www = apex.child("www").unwrap();
        sb.testbed.mutate_zone_everywhere(&apex, |zone| {
            resign_rrset(
                zone,
                &www,
                RrType::A,
                &zsk,
                SignOptions {
                    inception: 0,
                    expiration: NOW - 100,
                },
            );
        });
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sb);
        assert!(report.codes().contains(&ErrorCode::RrsigExpired));
    }

    #[test]
    fn removed_ds_is_insecure() {
        let mut sb = standard_sandbox(None);
        sb.set_ds(&name("chd.par.a.com"), vec![], NOW);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Is);
    }

    #[test]
    fn corrupted_ds_digest_is_sb() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let ksk = sb.zone(&apex).unwrap().ring.active(KeyRole::Ksk, NOW)[0].clone();
        let mut ds = make_ds(&apex, &ksk.dnskey, DigestType::Sha256);
        ds.digest[0] ^= 0xFF;
        sb.set_ds(&apex, vec![ds], NOW);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sb);
        let codes = report.codes();
        assert!(codes.contains(&ErrorCode::DsDigestInvalid));
        assert!(codes.contains(&ErrorCode::NoSecureEntryPoint));
    }

    #[test]
    fn ds_for_absent_algorithm() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let ksk = sb.zone(&apex).unwrap().ring.active(KeyRole::Ksk, NOW)[0].clone();
        let good = make_ds(&apex, &ksk.dnskey, DigestType::Sha256);
        // Extraneous DS referencing RSASHA512 (no such key in the zone).
        let bogus = ddx_dns::Ds {
            key_tag: 4242,
            algorithm: 10,
            digest_type: 2,
            digest: vec![0xAB; 32],
        };
        sb.set_ds(&apex, vec![good, bogus], NOW);
        let report = run(&sb);
        let codes = report.codes();
        assert!(codes.contains(&ErrorCode::DsMissingKeyForAlgorithm));
        // A good link still exists, so no NoSecureEntryPoint...
        assert!(!codes.contains(&ErrorCode::NoSecureEntryPoint));
        assert_eq!(report.status, SnapshotStatus::Sb);
    }

    #[test]
    fn dnskey_missing_for_ds() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        sb.testbed.mutate_zone_everywhere(&apex, |zone| {
            zone.strip_type(RrType::Dnskey);
        });
        let report = run(&sb);
        assert!(report.codes().contains(&ErrorCode::DnskeyMissingForDs));
        assert_eq!(report.status, SnapshotStatus::Sb);
    }

    #[test]
    fn inconsistent_dnskey_between_servers() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
        // Remove the ZSK DNSKEY record from server #0 only.
        let id = sb.zone(&apex).unwrap().servers[0].clone();
        sb.testbed
            .server_mut(&id)
            .unwrap()
            .zone_mut(&apex)
            .unwrap()
            .remove_rdata(&apex, &RData::Dnskey(zsk.dnskey.clone()));
        let report = run(&sb);
        assert!(report
            .codes()
            .contains(&ErrorCode::DnskeyMissingFromServers));
    }

    #[test]
    fn missing_rrsig_is_sb() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let www = apex.child("www").unwrap();
        sb.testbed.mutate_zone_everywhere(&apex, |zone| {
            ddx_dnssec::remove_sigs_covering(zone, &www, RrType::A);
        });
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sb);
        assert!(report.codes().contains(&ErrorCode::RrsigMissing));
    }

    #[test]
    fn rrsig_missing_from_one_server_only() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let www = apex.child("www").unwrap();
        let id = sb.zone(&apex).unwrap().servers[0].clone();
        let zone = sb
            .testbed
            .server_mut(&id)
            .unwrap()
            .zone_mut(&apex)
            .unwrap();
        ddx_dnssec::remove_sigs_covering(zone, &www, RrType::A);
        let report = run(&sb);
        assert!(report
            .codes()
            .contains(&ErrorCode::RrsigMissingFromServers));
        // The other server still serves a valid path.
        assert_ne!(report.status, SnapshotStatus::Sv);
    }

    #[test]
    fn stripped_nsec_chain_breaks_denial() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        sb.testbed.mutate_zone_everywhere(&apex, |zone| {
            zone.strip_type(RrType::Nsec);
        });
        let report = run(&sb);
        assert!(report.codes().contains(&ErrorCode::NsecProofMissing));
        assert_eq!(report.status, SnapshotStatus::Sb);
    }

    #[test]
    fn revoked_sole_ksk() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        {
            let z = sb.zone_mut(&apex).unwrap();
            let tag = z.ring.active(KeyRole::Ksk, NOW)[0].key_tag();
            z.ring.by_tag_mut(tag).unwrap().revoke();
        }
        sb.resign_zone(&apex, NOW).unwrap();
        let report = run(&sb);
        let codes = report.codes();
        assert!(
            codes.contains(&ErrorCode::DnskeyRevokedNoOtherSep),
            "got {codes:?}"
        );
        // The old DS now points at a key whose tag changed → broken entry.
        assert_eq!(report.status, SnapshotStatus::Sb);
    }

    #[test]
    fn lame_leaf_is_lm() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        for id in sb.zone(&apex).unwrap().servers.clone() {
            sb.testbed.server_mut(&id).unwrap().behavior = ServerBehavior::Unresponsive;
        }
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Lm);
    }

    #[test]
    fn missing_delegation_is_ic() {
        let mut sb = standard_sandbox(None);
        let leaf = name("chd.par.a.com");
        let parent = name("par.a.com");
        sb.testbed.mutate_zone_everywhere(&parent, |zone| {
            zone.remove(&leaf, RrType::Ns);
            zone.remove(&leaf, RrType::Ds);
        });
        sb.resign_zone(&parent, NOW).unwrap();
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Ic);
    }

    #[test]
    fn report_json_round_trip() {
        let sb = standard_sandbox(None);
        let report = run(&sb);
        let json = report.to_json();
        let back = GrokReport::from_json(&json).unwrap();
        assert_eq!(back.status, report.status);
        assert_eq!(back.zones.len(), report.zones.len());
    }

    #[test]
    fn incomplete_algorithm_setup_detected() {
        let mut sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        // Publish an extra RSASHA256 DNSKEY that signs nothing.
        let extra = ddx_dnssec::KeyPair::generate(
            &mut rand::rngs::StdRng::seed_from_u64(99),
            apex.clone(),
            ddx_dnssec::Algorithm::RsaSha256,
            2048,
            KeyRole::Zsk,
            NOW,
        );
        use rand::SeedableRng;
        let dnskey = extra.dnskey.clone();
        let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
        sb.testbed.mutate_zone_everywhere(&apex, |zone| {
            zone.add(ddx_dns::Record::new(
                apex.clone(),
                ddx_dnssec::DNSKEY_TTL,
                RData::Dnskey(dnskey.clone()),
            ));
            // Re-sign the DNSKEY RRset so it stays valid.
            resign_rrset(
                zone,
                &apex,
                RrType::Dnskey,
                &zsk,
                SignOptions {
                    inception: NOW - 3600,
                    expiration: NOW + 86_400,
                },
            );
        });
        let report = run(&sb);
        assert!(report
            .codes()
            .contains(&ErrorCode::DnskeyAlgorithmWithoutRrsig));
        // Should be tolerated (svm), not bogus.
        assert_eq!(report.status, SnapshotStatus::Svm);
    }

    #[test]
    fn sigs_survive_probe_encoding() {
        // Sanity: the signatures the sandbox produces verify through the
        // whole probe path (no canonicalization drift).
        let sb = standard_sandbox(None);
        let apex = name("chd.par.a.com");
        let server_zone = sb
            .testbed
            .server(&sb.zone(&apex).unwrap().servers[0])
            .unwrap()
            .zone(&apex)
            .unwrap();
        assert!(!sigs_covering(server_zone, &apex, RrType::Soa).is_empty());
    }
}

#[cfg(test)]
mod warning_tests {
    use super::*;
    use crate::codes::WarningCode;
    use crate::probe::{probe, ProbeConfig};
    use ddx_dns::name;
    use ddx_dnssec::Nsec3Config;
    use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

    const NOW: u32 = 1_000_000;

    fn run(sb: &Sandbox) -> GrokReport {
        let cfg = ProbeConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            query_domain: sb.leaf().apex.child("www").unwrap(),
            target_types: vec![RrType::A],
            time: NOW,
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
        };
        grok(&probe(&sb.testbed, &cfg))
    }

    #[test]
    fn salted_nsec3_yields_warning_not_error() {
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.nsec3 = Some(Nsec3Config {
            iterations: 0,
            salt: vec![0x8d, 0x45],
            ..Default::default()
        });
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 81);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        let leaf_report = report.zones.last().unwrap();
        assert!(leaf_report.warnings.contains(&WarningCode::Nsec3SaltPresent));
    }

    #[test]
    fn sha1_ds_yields_warning() {
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.ds_digests = vec![ddx_dnssec::DigestType::Sha1];
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 82);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        assert!(report
            .zones
            .last()
            .unwrap()
            .warnings
            .contains(&WarningCode::Sha1DsDigest));
    }

    #[test]
    fn single_key_zone_warned() {
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.keys = vec![(ddx_dnssec::KeyRole::Ksk, ddx_dnssec::Algorithm::EcdsaP256Sha256, 256)];
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 83);
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
        assert!(report
            .zones
            .last()
            .unwrap()
            .warnings
            .contains(&WarningCode::SingleKeyZone));
    }

    #[test]
    fn clean_conventional_zone_has_no_warnings() {
        let sb = build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
            ],
            NOW,
            84,
        );
        let report = run(&sb);
        for z in &report.zones {
            assert!(z.warnings.is_empty(), "{:?}", z.warnings);
        }
    }
}

#[cfg(test)]
mod attribution_tests {
    use super::*;
    use crate::probe::{probe, ProbeConfig};
    use ddx_dns::name;
    use ddx_dnssec::{resign_rrset, KeyRole, SignOptions};
    use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

    const NOW: u32 = 1_000_000;

    fn three_level() -> Sandbox {
        build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
                ZoneSpec::conventional(name("chd.par.a.com")),
            ],
            NOW,
            91,
        )
    }

    fn run(sb: &Sandbox) -> GrokReport {
        let cfg = ProbeConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            query_domain: name("www.chd.par.a.com"),
            target_types: vec![RrType::A],
            time: NOW,
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
        };
        grok(&probe(&sb.testbed, &cfg))
    }

    #[test]
    fn parent_zone_errors_attributed_to_parent() {
        let mut sb = three_level();
        // Break the PARENT's apex SOA signature.
        let parent = name("par.a.com");
        let zsk = sb.zone(&parent).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
        sb.testbed.mutate_zone_everywhere(&parent, |zone| {
            resign_rrset(
                zone,
                &parent,
                RrType::Soa,
                &zsk,
                SignOptions {
                    inception: 0,
                    expiration: NOW - 5,
                },
            );
        });
        let report = run(&sb);
        assert_eq!(report.status, SnapshotStatus::Sb);
        // The expired-signature error belongs to par.a.com, not to the leaf.
        let offender = report
            .errors()
            .find(|e| e.code == ErrorCode::RrsigExpired)
            .expect("error found");
        assert_eq!(offender.zone, parent);
        // And the leaf-zone extraction (what ZReplicator would be fed) is
        // clean — the paper's replication is leaf-scoped (§5.5.1).
        assert!(
            !report
                .target_zone_codes()
                .contains(&ErrorCode::RrsigExpired),
            "{:?}",
            report.target_zone_codes()
        );
    }

    #[test]
    fn anchor_zone_is_marked() {
        let sb = three_level();
        let report = run(&sb);
        assert!(report.zones[0].is_anchor);
        assert!(!report.zones[1].is_anchor);
        assert!(!report.zones[2].is_anchor);
        assert!(report.zones[1].has_ds);
        assert!(report.zones[2].has_ds);
    }
}

impl GrokReport {
    /// Renders the report as the indented, per-zone text DNSViz-style
    /// output operators read (`dnsviz print` analogue).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} @{}: status {}",
            self.query_domain, self.time, self.status
        );
        for z in &self.zones {
            let role = if z.is_anchor {
                "trust anchor"
            } else if z.signed && z.has_ds {
                "signed, delegated"
            } else if z.signed {
                "signed, NO DS"
            } else {
                "unsigned"
            };
            let _ = writeln!(out, "  zone {} [{role}]", z.zone);
            for e in &z.errors {
                let _ = writeln!(
                    out,
                    "    E{} {}: {}",
                    if e.critical { "!" } else { " " },
                    e.code,
                    e.detail
                );
            }
            for w in &z.warnings {
                let _ = writeln!(out, "    W  {}: {}", w, w.message());
            }
            if z.errors.is_empty() && z.warnings.is_empty() {
                let _ = writeln!(out, "    ok");
            }
        }
        out
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::probe::{probe, ProbeConfig};
    use ddx_dns::name;
    use ddx_server::{build_sandbox, ZoneSpec};

    #[test]
    fn render_text_mentions_every_zone_and_error() {
        let sb = build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
            ],
            1_000_000,
            95,
        );
        let cfg = ProbeConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            query_domain: name("www.par.a.com"),
            target_types: vec![RrType::A],
            time: 1_000_000,
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
        };
        let report = grok(&probe(&sb.testbed, &cfg));
        let text = report.render_text();
        assert!(text.contains("a.com. [trust anchor]"));
        assert!(text.contains("par.a.com. [signed, delegated]"));
        assert!(text.contains("status sv"));
        assert!(text.contains("ok"));
    }
}

#[cfg(test)]
mod json_schema_tests {
    use super::*;
    use crate::probe::{probe, ProbeConfig};
    use ddx_dns::name;
    use ddx_server::{build_sandbox, ZoneSpec};

    /// The JSON shape downstream consumers depend on (CLI --json, the
    /// snapshot pipeline): spot-check stable field names.
    #[test]
    fn report_json_field_names_are_stable() {
        let sb = build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
            ],
            1_000_000,
            97,
        );
        let cfg = ProbeConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            query_domain: name("www.par.a.com"),
            target_types: vec![RrType::A],
            time: 1_000_000,
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
        };
        let report = grok(&probe(&sb.testbed, &cfg));
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert!(v.get("query_domain").is_some());
        assert!(v.get("time").is_some());
        assert_eq!(v["status"], "Sv");
        let zones = v["zones"].as_array().unwrap();
        assert_eq!(zones.len(), 2);
        for z in zones {
            for field in ["zone", "signed", "has_ds", "is_anchor", "errors", "warnings"] {
                assert!(z.get(field).is_some(), "missing field {field}");
            }
        }
    }
}
