//! # ddx-dnsviz — the diagnostic engine (DNSViz analogue)
//!
//! `probe` walks the delegation chain from a local trust anchor to the query
//! domain, interrogating every authoritative server; `grok` validates the
//! collected material against the DNSSEC RFCs and annotates violations with
//! one of 47 error codes grouped per the paper's Table 3, finally
//! classifying the snapshot into `sv/svm/sb/is/lm/ic`.

pub mod codes;
pub mod ede;
pub mod grok;
pub mod probe;
pub mod resolver;
pub mod status;

pub use codes::{Category, ErrorCode, Subcategory, WarningCode};
pub use ede::{ede_for, Ede};
pub use grok::memo::{GrokMemo, MemoStats};
pub use grok::{
    grok, grok_with_budget, AlgorithmScope, BudgetCounter, DsProblem, ErrorDetail, ErrorInstance,
    GrokReport, ValidationBudget, ZoneReport,
};
pub use probe::{
    probe, FailureKind, ProbeConfig, ProbeResult, QueryFailure, RetryPolicy, ServerHealth,
    ServerProbe, ZoneProbe, NX_PROBE_LABEL,
};
pub use resolver::{
    resolve_validating, Nsec3IterationPolicy, Resolution, ResolverConfig, ValidationState,
};
pub use status::SnapshotStatus;
