//! RFC 8914 Extended DNS Errors: the resolver-facing error signals the
//! paper's related work measures at scale (Nosyk et al., IMC '23). Every
//! internal [`ErrorCode`] maps to the EDE a validating resolver would
//! attach to its SERVFAIL (or to a warning code for tolerated violations).

use serde::{Deserialize, Serialize};

use crate::codes::ErrorCode;

/// An RFC 8914 info-code (the subset DNSSEC validation produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ede {
    /// 1 — Unsupported DNSKEY Algorithm.
    UnsupportedDnskeyAlgorithm,
    /// 2 — Unsupported DS Digest Type.
    UnsupportedDsDigestType,
    /// 6 — DNSSEC Bogus.
    DnssecBogus,
    /// 7 — Signature Expired.
    SignatureExpired,
    /// 8 — Signature Not Yet Valid.
    SignatureNotYetValid,
    /// 9 — DNSKEY Missing.
    DnskeyMissing,
    /// 10 — RRSIGs Missing.
    RrsigsMissing,
    /// 11 — No Zone Key Bit Set.
    NoZoneKeyBitSet,
    /// 12 — NSEC Missing.
    NsecMissing,
    /// 27 — Unsupported NSEC3 Iterations Value.
    UnsupportedNsec3Iterations,
}

impl Ede {
    /// IANA info-code.
    pub fn code(self) -> u16 {
        match self {
            Ede::UnsupportedDnskeyAlgorithm => 1,
            Ede::UnsupportedDsDigestType => 2,
            Ede::DnssecBogus => 6,
            Ede::SignatureExpired => 7,
            Ede::SignatureNotYetValid => 8,
            Ede::DnskeyMissing => 9,
            Ede::RrsigsMissing => 10,
            Ede::NoZoneKeyBitSet => 11,
            Ede::NsecMissing => 12,
            Ede::UnsupportedNsec3Iterations => 27,
        }
    }

    /// RFC 8914 "Purpose" text.
    pub fn purpose(self) -> &'static str {
        match self {
            Ede::UnsupportedDnskeyAlgorithm => "Unsupported DNSKEY Algorithm",
            Ede::UnsupportedDsDigestType => "Unsupported DS Digest Type",
            Ede::DnssecBogus => "DNSSEC Bogus",
            Ede::SignatureExpired => "Signature Expired",
            Ede::SignatureNotYetValid => "Signature Not Yet Valid",
            Ede::DnskeyMissing => "DNSKEY Missing",
            Ede::RrsigsMissing => "RRSIGs Missing",
            Ede::NoZoneKeyBitSet => "No Zone Key Bit Set",
            Ede::NsecMissing => "NSEC Missing",
            Ede::UnsupportedNsec3Iterations => "Unsupported NSEC3 Iterations Value",
        }
    }
}

/// The EDE a validating resolver would emit for an internal error code.
pub fn ede_for(code: ErrorCode) -> Ede {
    use ErrorCode::*;
    match code {
        RrsigExpired => Ede::SignatureExpired,
        RrsigNotYetValid => Ede::SignatureNotYetValid,
        DnskeyMissingForDs | DnskeyMissingFromServers | DnskeyInconsistentRrset => {
            Ede::DnskeyMissing
        }
        RrsigMissing
        | RrsigMissingFromServers
        | RrsigMissingForDnskey
        | DnskeyAlgorithmWithoutRrsig
        | DsAlgorithmWithoutRrsig => Ede::RrsigsMissing,
        RrsigInvalidRdata => Ede::NoZoneKeyBitSet,
        NsecProofMissing
        | Nsec3ProofMissing
        | NsecCoverageBroken
        | Nsec3CoverageBroken
        | NsecMissingWildcardProof
        | Nsec3MissingWildcardProof
        | Nsec3NoClosestEncloser
        | LastNsecNotApex => Ede::NsecMissing,
        Nsec3IterationsNonzero => Ede::UnsupportedNsec3Iterations,
        Nsec3UnsupportedAlgorithm => Ede::UnsupportedDnskeyAlgorithm,
        DsUnknownDigestType => Ede::UnsupportedDsDigestType,
        // Everything else surfaces as generic DNSSEC Bogus.
        _ => Ede::DnssecBogus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specific_mappings() {
        assert_eq!(ede_for(ErrorCode::RrsigExpired).code(), 7);
        assert_eq!(ede_for(ErrorCode::RrsigNotYetValid).code(), 8);
        assert_eq!(ede_for(ErrorCode::RrsigMissing).code(), 10);
        assert_eq!(ede_for(ErrorCode::DnskeyMissingForDs).code(), 9);
        assert_eq!(ede_for(ErrorCode::Nsec3IterationsNonzero).code(), 27);
        assert_eq!(ede_for(ErrorCode::NsecProofMissing).code(), 12);
        assert_eq!(ede_for(ErrorCode::DsDigestInvalid).code(), 6);
        assert_eq!(ede_for(ErrorCode::DsUnknownDigestType).code(), 2);
    }

    #[test]
    fn every_code_maps() {
        for c in ErrorCode::ALL {
            let e = ede_for(c);
            assert!(!e.purpose().is_empty());
            assert!(e.code() <= 27);
        }
    }
}
