//! The `dnsviz probe` analogue: starting from a local trust anchor, walk
//! the delegation chain toward the query domain, interrogating **every**
//! authoritative server of every zone cut for its DNSSEC material, negative
//! responses, and (at the query zone) the target RRsets.

use std::sync::Arc;

use ddx_dns::{Dnskey, Message, Name, RData, RrType};
use ddx_server::{Network, ServerId};

/// The label probed to elicit an NXDOMAIN (DNSViz queries random
/// non-existent sub-labels; ours is fixed and reserved — nothing in the
/// testbed ever creates it).
pub const NX_PROBE_LABEL: &str = "dnsviz-nx-probe";

/// A second, high-sorting non-existent label, so the *wrap-around* denial
/// record (last NSEC → apex) is also exercised.
pub const NX_PROBE_LABEL_HI: &str = "zzz-dnsviz-nx-probe";

/// Private-use RR type queried to elicit a NODATA at an existing name.
pub const NODATA_PROBE_TYPE: RrType = RrType::Unknown(65280);

/// What to probe.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Apex of the locally-trusted anchor zone (the sandbox "root").
    pub anchor_zone: Name,
    /// Servers authoritative for the anchor.
    pub anchor_servers: Vec<ServerId>,
    /// The domain under diagnosis (paper: Query Domain).
    pub query_domain: Name,
    /// RR types queried at the query domain.
    pub target_types: Vec<RrType>,
    /// Probe timestamp (simulation clock).
    pub time: u32,
    /// Known zone → servers hints (from the operator or a previous run).
    /// When the delegation walk cannot reach a hinted zone that should sit
    /// on the path, the prober contacts its servers directly — this is how
    /// an *incomplete delegation* (`ic`) becomes observable.
    pub hints: Vec<(Name, Vec<ServerId>)>,
}

/// Everything one authoritative server said about one zone.
#[derive(Debug, Clone)]
pub struct ServerProbe {
    pub server: ServerId,
    /// False when every query timed out.
    pub responsive: bool,
    pub soa: Option<Arc<Message>>,
    pub ns: Option<Arc<Message>>,
    pub dnskey: Option<Arc<Message>>,
    /// Response to the non-existent-label query.
    pub nxdomain: Option<Arc<Message>>,
    /// Response to the high-sorting non-existent-label query.
    pub nxdomain_hi: Option<Arc<Message>>,
    /// Response to the NODATA probe at the apex.
    pub nodata: Option<Arc<Message>>,
    /// NSEC3PARAM query at the apex (reveals the zone's declared NSEC3
    /// parameters, if any).
    pub nsec3param: Option<Arc<Message>>,
    /// Target answers; populated only at the query zone.
    pub answers: Vec<(RrType, Option<Arc<Message>>)>,
}

impl ServerProbe {
    /// The DNSKEY records this server returned, if any — borrowed from the
    /// (shared) DNSKEY response rather than deep-copied per call.
    pub fn dnskeys(&self) -> impl Iterator<Item = &Dnskey> + '_ {
        self.dnskey
            .iter()
            .flat_map(|m| m.answers.iter())
            .filter_map(|r| match &r.rdata {
                RData::Dnskey(k) => Some(k),
                _ => None,
            })
    }
}

/// Everything learned about one zone cut.
#[derive(Debug, Clone)]
pub struct ZoneProbe {
    pub zone: Name,
    pub parent: Option<Name>,
    /// NS names from the parent-side referral (empty at the anchor).
    pub delegation_ns: Vec<Name>,
    /// NS hostnames that did not resolve to any server.
    pub unresolved_ns: Vec<Name>,
    /// DS responses gathered from each parent-zone server.
    pub ds_responses: Vec<(ServerId, Option<Arc<Message>>)>,
    pub servers: Vec<ServerProbe>,
    /// True when the walk could not find this zone through the parent (no
    /// delegation NS) and it was only reachable via a hint — the paper's
    /// `ic` (incomplete) condition.
    pub orphaned: bool,
}

impl ZoneProbe {
    /// True if every known server failed to respond or the zone has no
    /// resolvable servers at all — the paper's `lm` (lame) condition.
    pub fn is_lame(&self) -> bool {
        self.servers.is_empty() || self.servers.iter().all(|s| !s.responsive)
    }
}

/// The complete probe output for one query domain.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    pub query_domain: Name,
    pub time: u32,
    /// Zone cuts, anchor first, query zone last.
    pub zones: Vec<ZoneProbe>,
}

impl ProbeResult {
    /// The zone containing the query domain (deepest probed cut).
    pub fn query_zone(&self) -> Option<&ZoneProbe> {
        self.zones.last()
    }
}

fn ask(
    net: &dyn Network,
    server: &ServerId,
    id: u16,
    qname: &Name,
    qtype: RrType,
) -> Option<Arc<Message>> {
    net.query(server, &Message::query(id, qname.clone(), qtype))
}

/// Probes one server for one zone's material.
fn probe_server(
    net: &dyn Network,
    server: &ServerId,
    zone: &Name,
    targets: Option<(&Name, &[RrType])>,
) -> ServerProbe {
    let soa = ask(net, server, 1, zone, RrType::Soa);
    let ns = ask(net, server, 2, zone, RrType::Ns);
    let dnskey = ask(net, server, 3, zone, RrType::Dnskey);
    // Zone names come off the wire (referrals), so one near the 255-octet
    // limit may not take another label; such zones just skip the denial
    // probes instead of panicking.
    let nxdomain = zone
        .child(NX_PROBE_LABEL)
        .ok()
        .and_then(|nx| ask(net, server, 4, &nx, RrType::A));
    let nxdomain_hi = zone
        .child(NX_PROBE_LABEL_HI)
        .ok()
        .and_then(|nx| ask(net, server, 9, &nx, RrType::A));
    let nodata = ask(net, server, 5, zone, NODATA_PROBE_TYPE);
    let nsec3param = ask(net, server, 8, zone, RrType::Nsec3Param);
    let mut answers = Vec::new();
    if let Some((qname, types)) = targets {
        for (i, t) in types.iter().enumerate() {
            answers.push((*t, ask(net, server, 10 + i as u16, qname, *t)));
        }
    }
    let responsive =
        soa.is_some() || ns.is_some() || dnskey.is_some() || nxdomain.is_some() || nodata.is_some();
    ServerProbe {
        server: server.clone(),
        responsive,
        soa,
        ns,
        dnskey,
        nxdomain,
        nxdomain_hi,
        nodata,
        nsec3param,
        answers,
    }
}

/// Finds the next delegation cut between `zone` and `qname` by asking the
/// zone's servers for the query domain and reading the referral.
fn next_cut(
    net: &dyn Network,
    servers: &[ServerId],
    qname: &Name,
    zone: &Name,
) -> Option<(Name, Vec<Name>)> {
    for server in servers {
        let Some(resp) = ask(net, server, 6, qname, RrType::A) else {
            continue;
        };
        // A referral: NS records in authority owned by a strict descendant
        // of the current zone (and ancestor-or-self of qname).
        let mut cut: Option<Name> = None;
        let mut ns_names = Vec::new();
        for rec in &resp.authorities {
            if let RData::Ns(host) = &rec.rdata {
                if rec.name.is_strict_subdomain_of(zone) && qname.is_subdomain_of(&rec.name) {
                    cut = Some(rec.name.clone());
                    ns_names.push(host.clone());
                }
            }
        }
        if let Some(cut) = cut {
            return Some((cut, ns_names));
        }
    }
    None
}

/// Runs the full probe walk.
pub fn probe(net: &dyn Network, cfg: &ProbeConfig) -> ProbeResult {
    ddx_dns::trace_span!(
        _walk_span,
        target: "dnsviz::probe",
        "walk",
        query_domain = cfg.query_domain,
        anchor = cfg.anchor_zone,
    );
    let mut zones = Vec::new();
    let mut zone = cfg.anchor_zone.clone();
    let mut servers = cfg.anchor_servers.clone();
    let mut parent: Option<Name> = None;
    let mut delegation_ns: Vec<Name> = Vec::new();
    let mut unresolved: Vec<Name> = Vec::new();
    let mut ds_responses: Vec<(ServerId, Option<Arc<Message>>)> = Vec::new();

    for _depth in 0..16 {
        // Is this the query zone (no further cut toward the target)?
        let cut = next_cut(net, &servers, &cfg.query_domain, &zone);
        let is_query_zone = cut.is_none();
        let targets = if is_query_zone {
            Some((&cfg.query_domain, &cfg.target_types[..]))
        } else {
            None
        };
        let server_probes: Vec<ServerProbe> = servers
            .iter()
            .map(|s| probe_server(net, s, &zone, targets))
            .collect();
        ddx_dns::trace_event!(
            target: "dnsviz::probe",
            "zone probed",
            zone = zone,
            servers = server_probes.len(),
            is_query_zone = is_query_zone,
        );
        // Move the per-zone accumulators into the record instead of
        // cloning: each is rebuilt below before the next lap needs it.
        zones.push(ZoneProbe {
            zone: zone.clone(),
            parent: parent.take(),
            delegation_ns: std::mem::take(&mut delegation_ns),
            unresolved_ns: std::mem::take(&mut unresolved),
            ds_responses: std::mem::take(&mut ds_responses),
            servers: server_probes,
            orphaned: false,
        });

        let Some((cut, ns_names)) = cut else {
            break;
        };
        // Gather DS for the child from every parent server.
        ds_responses = servers
            .iter()
            .map(|s| (s.clone(), ask(net, s, 7, &cut, RrType::Ds)))
            .collect();
        // Resolve the child's nameservers.
        let mut next_servers = Vec::new();
        let mut next_unresolved = Vec::new();
        for host in &ns_names {
            match net.resolve_ns(host) {
                Some(id) if !next_servers.contains(&id) => next_servers.push(id),
                Some(_) => {}
                None => next_unresolved.push(host.clone()),
            }
        }
        parent = Some(zone);
        zone = cut;
        delegation_ns = ns_names;
        unresolved = next_unresolved;
        servers = next_servers;
        if servers.is_empty() {
            // Fully lame delegation: record the empty zone probe and stop.
            zones.push(ZoneProbe {
                zone,
                parent,
                delegation_ns,
                unresolved_ns: unresolved,
                ds_responses,
                servers: Vec::new(),
                orphaned: false,
            });
            break;
        }
    }

    // Hint pass: a hinted zone on the query path that the walk never reached
    // (its delegation is missing from the parent) gets probed directly and
    // recorded as orphaned.
    let deepest = zones.last().map(|z| z.zone.clone());
    if let Some(deepest) = deepest {
        let mut missing: Vec<&(Name, Vec<ServerId>)> = cfg
            .hints
            .iter()
            .filter(|(z, _)| {
                cfg.query_domain.is_subdomain_of(z)
                    && z.is_strict_subdomain_of(&deepest)
                    && zones.iter().all(|zp| zp.zone != *z)
            })
            .collect();
        missing.sort_by_key(|a| a.0.label_count());
        for (z, hint_servers) in missing {
            let is_query_zone = zones
                .iter()
                .all(|zp| !cfg.query_domain.is_subdomain_of(&zp.zone))
                || z.label_count() >= deepest.label_count();
            let targets = if is_query_zone {
                Some((&cfg.query_domain, &cfg.target_types[..]))
            } else {
                None
            };
            let server_probes: Vec<ServerProbe> = hint_servers
                .iter()
                .map(|s| probe_server(net, s, z, targets))
                .collect();
            ddx_dns::trace_event!(
                target: "dnsviz::probe",
                "orphaned zone probed",
                zone = z,
                servers = server_probes.len(),
            );
            zones.push(ZoneProbe {
                zone: z.clone(),
                parent: Some(deepest.clone()),
                delegation_ns: Vec::new(),
                unresolved_ns: Vec::new(),
                ds_responses: Vec::new(),
                servers: server_probes,
                orphaned: true,
            });
        }
    }

    ProbeResult {
        query_domain: cfg.query_domain.clone(),
        time: cfg.time,
        zones,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::{name, Record, Soa, Zone};
    use ddx_dnssec::{
        make_ds, sign_zone, Algorithm, DigestType, KeyPair, KeyRing, KeyRole, SignerConfig,
    };
    use ddx_server::{Server, Testbed};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_000_000;

    fn soa_rec(apex: &Name) -> Record {
        Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex.child("ns1").unwrap(),
                rname: apex.child("hostmaster").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        )
    }

    /// Builds a two-level signed hierarchy: anchor `a.com` delegating
    /// `par.a.com`, each on one server.
    fn build_testbed() -> (Testbed, ProbeConfig) {
        let mut rng = StdRng::seed_from_u64(42);
        let parent_apex = name("a.com");
        let child_apex = name("par.a.com");

        // Child zone + keys.
        let mut child_ring = KeyRing::new();
        for role in [KeyRole::Ksk, KeyRole::Zsk] {
            child_ring.add(KeyPair::generate(
                &mut rng,
                child_apex.clone(),
                Algorithm::EcdsaP256Sha256,
                256,
                role,
                NOW,
            ));
        }
        let mut child = Zone::new(child_apex.clone());
        child.add(soa_rec(&child_apex));
        child.add(Record::new(
            child_apex.clone(),
            3600,
            RData::Ns(name("ns1.par.a.com")),
        ));
        child.add(Record::new(
            name("ns1.par.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        child.add(Record::new(
            name("www.par.a.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 11)),
        ));
        sign_zone(&mut child, &child_ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let ksk = child_ring.active(KeyRole::Ksk, NOW)[0];
        let ds = make_ds(&child_apex, &ksk.dnskey, DigestType::Sha256);

        // Parent zone + keys.
        let mut parent_ring = KeyRing::new();
        for role in [KeyRole::Ksk, KeyRole::Zsk] {
            parent_ring.add(KeyPair::generate(
                &mut rng,
                parent_apex.clone(),
                Algorithm::EcdsaP256Sha256,
                256,
                role,
                NOW,
            ));
        }
        let mut parent = Zone::new(parent_apex.clone());
        parent.add(soa_rec(&parent_apex));
        parent.add(Record::new(
            parent_apex.clone(),
            3600,
            RData::Ns(name("ns1.a.com")),
        ));
        parent.add(Record::new(
            name("ns1.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        parent.add(Record::new(
            child_apex.clone(),
            3600,
            RData::Ns(name("ns1.par.a.com")),
        ));
        parent.add(Record::new(
            name("ns1.par.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        parent.add(Record::new(child_apex.clone(), 3600, RData::Ds(ds)));
        sign_zone(&mut parent, &parent_ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();

        let mut tb = Testbed::new();
        let mut ps = Server::new(ServerId("a.com#0".into()));
        ps.load_zone(parent);
        tb.add_server(ps);
        tb.register_ns(name("ns1.a.com"), ServerId("a.com#0".into()));
        let mut cs = Server::new(ServerId("par.a.com#0".into()));
        cs.load_zone(child);
        tb.add_server(cs);
        tb.register_ns(name("ns1.par.a.com"), ServerId("par.a.com#0".into()));

        let cfg = ProbeConfig {
            anchor_zone: name("a.com"),
            anchor_servers: vec![ServerId("a.com#0".into())],
            query_domain: name("www.par.a.com"),
            target_types: vec![RrType::A],
            time: NOW,
            hints: vec![(name("par.a.com"), vec![ServerId("par.a.com#0".into())])],
        };
        (tb, cfg)
    }

    #[test]
    fn walks_two_zone_cuts() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        assert_eq!(result.zones.len(), 2);
        assert_eq!(result.zones[0].zone, name("a.com"));
        assert_eq!(result.zones[1].zone, name("par.a.com"));
        assert_eq!(result.zones[1].parent, Some(name("a.com")));
        assert_eq!(result.zones[1].delegation_ns, vec![name("ns1.par.a.com")]);
    }

    #[test]
    fn collects_ds_from_parent() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        let qz = result.query_zone().unwrap();
        assert_eq!(qz.ds_responses.len(), 1);
        let ds_msg = qz.ds_responses[0].1.as_ref().unwrap();
        assert!(ds_msg.find_answer(&name("par.a.com"), RrType::Ds).is_some());
    }

    #[test]
    fn gathers_dnskey_and_negative_probes() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        let qz = result.query_zone().unwrap();
        let sp = &qz.servers[0];
        assert!(sp.responsive);
        assert_eq!(sp.dnskeys().count(), 2);
        let nx = sp.nxdomain.as_ref().unwrap();
        assert_eq!(nx.rcode, ddx_dns::Rcode::NxDomain);
        assert!(nx.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
        // Target answer at the query zone only.
        assert_eq!(sp.answers.len(), 1);
        assert!(sp.answers[0].1.is_some());
        assert!(result.zones[0].servers[0].answers.is_empty());
    }

    #[test]
    fn lame_child_recorded() {
        let (mut tb, cfg) = build_testbed();
        tb.unregister_ns(&name("ns1.par.a.com"));
        let result = probe(&tb, &cfg);
        let qz = result.query_zone().unwrap();
        assert_eq!(qz.zone, name("par.a.com"));
        assert!(qz.is_lame());
        assert_eq!(qz.unresolved_ns, vec![name("ns1.par.a.com")]);
    }

    #[test]
    fn anchor_only_walk() {
        let (tb, mut cfg) = build_testbed();
        cfg.query_domain = name("a.com");
        let result = probe(&tb, &cfg);
        assert_eq!(result.zones.len(), 1);
        assert!(!result.zones[0].servers[0].answers.is_empty());
    }
}
