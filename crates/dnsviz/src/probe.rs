//! The `dnsviz probe` analogue: starting from a local trust anchor, walk
//! the delegation chain toward the query domain, interrogating **every**
//! authoritative server of every zone cut for its DNSSEC material, negative
//! responses, and (at the query zone) the target RRsets.

use std::collections::BTreeMap;
use std::sync::Arc;

use ddx_dns::{Dnskey, Message, Name, RData, Rcode, RrType};
use ddx_server::{Network, QueryOutcome, ServerId};

/// The label probed to elicit an NXDOMAIN (DNSViz queries random
/// non-existent sub-labels; ours is fixed and reserved — nothing in the
/// testbed ever creates it).
pub const NX_PROBE_LABEL: &str = "dnsviz-nx-probe";

/// A second, high-sorting non-existent label, so the *wrap-around* denial
/// record (last NSEC → apex) is also exercised.
pub const NX_PROBE_LABEL_HI: &str = "zzz-dnsviz-nx-probe";

/// Private-use RR type queried to elicit a NODATA at an existing name.
pub const NODATA_PROBE_TYPE: RrType = RrType::Unknown(65280);

/// How hard the prober tries before declaring a query unobservable.
///
/// Backoff is expressed in *virtual* milliseconds — an accumulated counter
/// reported on the [`ProbeResult`], never a real sleep — so probing stays
/// deterministic and instant regardless of the fault mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per (server, query); clamped to at least 1.
    pub attempts: u32,
    /// Virtual backoff before retry `k` (1-based): `backoff_base_ms << (k-1)`.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff_base_ms: 100,
        }
    }
}

/// Why a query ultimately failed after every retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every attempt timed out.
    Timeout,
    /// Every attempt came back with the TC bit set.
    Truncated,
    /// Every attempt produced bytes that did not parse.
    Malformed,
    /// Every attempt was answered REFUSED or SERVFAIL (the response itself
    /// is still recorded as the observation, but it carries no zone data).
    Refused,
}

/// One query that exhausted its retries — the typed record of "could not
/// observe" that replaces the old silent `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFailure {
    pub qname: Name,
    pub qtype: RrType,
    pub kind: FailureKind,
    /// Attempts made before giving up.
    pub attempts: u32,
}

/// Per-server attempt counters accumulated over one probe walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerHealth {
    pub sent: u32,
    pub ok: u32,
    pub timeouts: u32,
    pub truncated: u32,
    pub malformed: u32,
    pub refused: u32,
}

/// What to probe.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Apex of the locally-trusted anchor zone (the sandbox "root").
    pub anchor_zone: Name,
    /// Servers authoritative for the anchor.
    pub anchor_servers: Vec<ServerId>,
    /// The domain under diagnosis (paper: Query Domain).
    pub query_domain: Name,
    /// RR types queried at the query domain.
    pub target_types: Vec<RrType>,
    /// Probe timestamp (simulation clock).
    pub time: u32,
    /// Known zone → servers hints (from the operator or a previous run).
    /// When the delegation walk cannot reach a hinted zone that should sit
    /// on the path, the prober contacts its servers directly — this is how
    /// an *incomplete delegation* (`ic`) becomes observable.
    pub hints: Vec<(Name, Vec<ServerId>)>,
    /// Retry/backoff policy applied to every query of the walk.
    pub retry: RetryPolicy,
}

/// Everything one authoritative server said about one zone.
#[derive(Debug, Clone)]
pub struct ServerProbe {
    pub server: ServerId,
    /// False when every query timed out.
    pub responsive: bool,
    pub soa: Option<Arc<Message>>,
    pub ns: Option<Arc<Message>>,
    pub dnskey: Option<Arc<Message>>,
    /// Response to the non-existent-label query.
    pub nxdomain: Option<Arc<Message>>,
    /// Response to the high-sorting non-existent-label query.
    pub nxdomain_hi: Option<Arc<Message>>,
    /// Response to the NODATA probe at the apex.
    pub nodata: Option<Arc<Message>>,
    /// NSEC3PARAM query at the apex (reveals the zone's declared NSEC3
    /// parameters, if any).
    pub nsec3param: Option<Arc<Message>>,
    /// Target answers; populated only at the query zone.
    pub answers: Vec<(RrType, Option<Arc<Message>>)>,
    /// Queries that exhausted their retries against this server — the
    /// typed record distinguishing "couldn't observe" from "nothing there".
    pub failures: Vec<QueryFailure>,
}

impl ServerProbe {
    /// The DNSKEY records this server returned, if any — borrowed from the
    /// (shared) DNSKEY response rather than deep-copied per call.
    pub fn dnskeys(&self) -> impl Iterator<Item = &Dnskey> + '_ {
        self.dnskey
            .iter()
            .flat_map(|m| m.answers.iter())
            .filter_map(|r| match &r.rdata {
                RData::Dnskey(k) => Some(k),
                _ => None,
            })
    }
}

/// Everything learned about one zone cut.
#[derive(Debug, Clone)]
pub struct ZoneProbe {
    pub zone: Name,
    pub parent: Option<Name>,
    /// NS names from the parent-side referral (empty at the anchor).
    pub delegation_ns: Vec<Name>,
    /// NS hostnames that did not resolve to any server.
    pub unresolved_ns: Vec<Name>,
    /// DS responses gathered from each parent-zone server.
    pub ds_responses: Vec<(ServerId, Option<Arc<Message>>)>,
    pub servers: Vec<ServerProbe>,
    /// True when the walk could not find this zone through the parent (no
    /// delegation NS) and it was only reachable via a hint — the paper's
    /// `ic` (incomplete) condition.
    pub orphaned: bool,
    /// Delegation-walk queries (referral lookups toward this zone's cut,
    /// DS queries at the parent) that exhausted their retries.
    pub lookup_failures: Vec<(ServerId, QueryFailure)>,
}

impl ZoneProbe {
    /// True if every known server failed to respond or the zone has no
    /// resolvable servers at all — the paper's `lm` (lame) condition.
    pub fn is_lame(&self) -> bool {
        self.servers.is_empty() || self.servers.iter().all(|s| !s.responsive)
    }
}

/// The complete probe output for one query domain.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    pub query_domain: Name,
    pub time: u32,
    /// Zone cuts, anchor first, query zone last.
    pub zones: Vec<ZoneProbe>,
    /// Per-server health counters, sorted by server id.
    pub health: Vec<(ServerId, ServerHealth)>,
    /// Virtual milliseconds the walk took (per-query cost plus backoff).
    pub virtual_ms: u64,
}

impl ProbeResult {
    /// The zone containing the query domain (deepest probed cut).
    pub fn query_zone(&self) -> Option<&ZoneProbe> {
        self.zones.last()
    }
}

/// Global-registry handles for the probe walk, looked up once per
/// [`Prober`]. The per-outcome counters mirror [`ServerHealth`], but
/// aggregated over every server and every walk in the process, so a
/// metrics snapshot can check `probe.queries.sent` against the sum of the
/// outcome counters and `probe.queries.sent >= probe.queries.ok`.
struct ProbeObs {
    sent: ddx_obs::Counter,
    ok: ddx_obs::Counter,
    timeouts: ddx_obs::Counter,
    truncated: ddx_obs::Counter,
    malformed: ddx_obs::Counter,
    refused: ddx_obs::Counter,
    /// Attempts beyond the first for any (server, query).
    retries: ddx_obs::Counter,
    /// Virtual milliseconds spent in retry backoff (a subset of the walk's
    /// total `virtual_ms`).
    backoff_virtual_ms: ddx_obs::Counter,
}

impl ProbeObs {
    fn new() -> Self {
        let q = |event| ddx_obs::counter("probe.queries", &[("outcome", event)]);
        ProbeObs {
            sent: ddx_obs::counter("probe.queries.sent", &[]),
            ok: q("ok"),
            timeouts: q("timeout"),
            truncated: q("truncated"),
            malformed: q("malformed"),
            refused: q("refused"),
            retries: ddx_obs::counter("probe.retries", &[]),
            backoff_virtual_ms: ddx_obs::counter("probe.backoff_virtual_ms", &[]),
        }
    }
}

/// The walk's query engine: wraps the network with the retry/backoff
/// policy, tracks per-server health, and accumulates virtual time.
/// `pub(crate)` so the incremental layer (`grok::memo`) can resume a walk
/// mid-chain with the same engine.
pub(crate) struct Prober<'a> {
    net: &'a dyn Network,
    retry: RetryPolicy,
    health: BTreeMap<ServerId, ServerHealth>,
    virtual_ms: u64,
    obs: ProbeObs,
}

/// Virtual cost of one query round-trip (ms).
const QUERY_COST_MS: u64 = 10;

impl<'a> Prober<'a> {
    pub(crate) fn new(net: &'a dyn Network, retry: RetryPolicy) -> Self {
        Prober {
            net,
            retry,
            health: BTreeMap::new(),
            virtual_ms: 0,
            obs: ProbeObs::new(),
        }
    }

    /// One question with retries. A retry fires on timeout, truncation,
    /// malformed bytes, and REFUSED/SERVFAIL (all of which a fault layer
    /// may make transient); a retry-exhausted query is recorded in
    /// `failures` instead of silently vanishing. For [`FailureKind::Refused`]
    /// the last response is still returned — it is a real observation, just
    /// one carrying no zone data.
    fn ask(
        &mut self,
        server: &ServerId,
        id: u16,
        qname: &Name,
        qtype: RrType,
        failures: &mut Vec<QueryFailure>,
    ) -> Option<Arc<Message>> {
        let attempts = self.retry.attempts.max(1);
        let mut last: Option<(FailureKind, Option<Arc<Message>>)> = None;
        // Build the query message once; every retry sends the same bytes.
        let query = Message::query(id, qname.clone(), qtype);
        for attempt in 0..attempts {
            if attempt > 0 {
                // Exponential backoff, in virtual time only.
                let backoff = self.retry.backoff_base_ms << (attempt - 1);
                self.virtual_ms += backoff;
                self.obs.retries.inc();
                self.obs.backoff_virtual_ms.add(backoff);
            }
            self.virtual_ms += QUERY_COST_MS;
            let outcome = self.net.query_outcome(server, &query);
            let health = self.health.entry(server.clone()).or_default();
            health.sent += 1;
            self.obs.sent.inc();
            match outcome {
                QueryOutcome::Answer(m) if m.flags.tc => {
                    health.truncated += 1;
                    self.obs.truncated.inc();
                    last = Some((FailureKind::Truncated, None));
                }
                QueryOutcome::Answer(m) if matches!(m.rcode, Rcode::Refused | Rcode::ServFail) => {
                    health.refused += 1;
                    self.obs.refused.inc();
                    last = Some((FailureKind::Refused, Some(m)));
                }
                QueryOutcome::Answer(m) => {
                    health.ok += 1;
                    self.obs.ok.inc();
                    return Some(m);
                }
                QueryOutcome::Timeout => {
                    health.timeouts += 1;
                    self.obs.timeouts.inc();
                    last = Some((FailureKind::Timeout, None));
                }
                QueryOutcome::Malformed => {
                    health.malformed += 1;
                    self.obs.malformed.inc();
                    last = Some((FailureKind::Malformed, None));
                }
            }
        }
        let (kind, result) = last.expect("attempts >= 1, so at least one outcome was recorded");
        ddx_dns::trace_event!(
            target: "dnsviz::probe",
            "query failed",
            server = server.0,
            qname = qname,
            qtype = qtype,
            kind = format!("{kind:?}"),
            attempts = attempts,
        );
        failures.push(QueryFailure {
            qname: qname.clone(),
            qtype,
            kind,
            attempts,
        });
        result
    }

    /// Consumes the engine into the walk's result envelope.
    pub(crate) fn into_result(self, cfg: &ProbeConfig, zones: Vec<ZoneProbe>) -> ProbeResult {
        ProbeResult {
            query_domain: cfg.query_domain.clone(),
            time: cfg.time,
            zones,
            health: self.health.into_iter().collect(),
            virtual_ms: self.virtual_ms,
        }
    }

    /// Probes one server for one zone's material.
    fn probe_server(
        &mut self,
        server: &ServerId,
        zone: &Name,
        targets: Option<(&Name, &[RrType])>,
    ) -> ServerProbe {
        let mut failures = Vec::new();
        let soa = self.ask(server, 1, zone, RrType::Soa, &mut failures);
        let ns = self.ask(server, 2, zone, RrType::Ns, &mut failures);
        let dnskey = self.ask(server, 3, zone, RrType::Dnskey, &mut failures);
        // Zone names come off the wire (referrals), so one near the 255-octet
        // limit may not take another label; such zones just skip the denial
        // probes instead of panicking.
        let nxdomain = zone
            .child(NX_PROBE_LABEL)
            .ok()
            .and_then(|nx| self.ask(server, 4, &nx, RrType::A, &mut failures));
        let nxdomain_hi = zone
            .child(NX_PROBE_LABEL_HI)
            .ok()
            .and_then(|nx| self.ask(server, 9, &nx, RrType::A, &mut failures));
        let nodata = self.ask(server, 5, zone, NODATA_PROBE_TYPE, &mut failures);
        let nsec3param = self.ask(server, 8, zone, RrType::Nsec3Param, &mut failures);
        let mut answers = Vec::new();
        if let Some((qname, types)) = targets {
            for (i, t) in types.iter().enumerate() {
                answers.push((
                    *t,
                    self.ask(server, 10 + i as u16, qname, *t, &mut failures),
                ));
            }
        }
        let responsive = soa.is_some()
            || ns.is_some()
            || dnskey.is_some()
            || nxdomain.is_some()
            || nodata.is_some();
        ServerProbe {
            server: server.clone(),
            responsive,
            soa,
            ns,
            dnskey,
            nxdomain,
            nxdomain_hi,
            nodata,
            nsec3param,
            answers,
            failures,
        }
    }

    /// Finds the next delegation cut between `zone` and `qname` by asking
    /// the zone's servers for the query domain and reading the referral.
    /// Lookup failures land in `lookup_failures`, attributed per server.
    fn next_cut(
        &mut self,
        servers: &[ServerId],
        qname: &Name,
        zone: &Name,
        lookup_failures: &mut Vec<(ServerId, QueryFailure)>,
    ) -> Option<(Name, Vec<Name>)> {
        for server in servers {
            let mut failures = Vec::new();
            let resp = self.ask(server, 6, qname, RrType::A, &mut failures);
            for f in failures {
                lookup_failures.push((server.clone(), f));
            }
            let Some(resp) = resp else {
                continue;
            };
            // A referral: NS records in authority owned by a strict descendant
            // of the current zone (and ancestor-or-self of qname).
            let mut cut: Option<Name> = None;
            let mut ns_names = Vec::new();
            for rec in &resp.authorities {
                if let RData::Ns(host) = &rec.rdata {
                    if rec.name.is_strict_subdomain_of(zone) && qname.is_subdomain_of(&rec.name) {
                        cut = Some(rec.name.clone());
                        ns_names.push(host.clone());
                    }
                }
            }
            if let Some(cut) = cut {
                return Some((cut, ns_names));
            }
        }
        None
    }
}

/// Maximum delegation-walk depth (laps) from the anchor.
pub(crate) const MAX_WALK_DEPTH: usize = 16;

/// The loop-carried state at the entry of one walk lap. Capturing it per
/// lap is what lets the incremental layer resume a walk at the first dirty
/// zone instead of restarting from the anchor: everything a lap consumes
/// (referral NS names, parent-side DS responses, pending DS failures) was
/// produced by the *previous* lap, so a clean prefix implies a valid entry
/// state.
#[derive(Debug, Clone)]
pub(crate) struct WalkStart {
    pub(crate) zone: Name,
    pub(crate) servers: Vec<ServerId>,
    pub(crate) parent: Option<Name>,
    pub(crate) delegation_ns: Vec<Name>,
    pub(crate) unresolved_ns: Vec<Name>,
    pub(crate) ds_responses: Vec<(ServerId, Option<Arc<Message>>)>,
    /// Failures of the DS queries feeding `ds_responses`: gathered at the
    /// parent, recorded on the child's zone probe one lap later.
    pub(crate) ds_failures: Vec<(ServerId, QueryFailure)>,
    /// Remaining lap budget ([`MAX_WALK_DEPTH`] at the anchor).
    pub(crate) depth: usize,
}

impl WalkStart {
    pub(crate) fn anchor(cfg: &ProbeConfig) -> Self {
        WalkStart {
            zone: cfg.anchor_zone.clone(),
            servers: cfg.anchor_servers.clone(),
            parent: None,
            delegation_ns: Vec::new(),
            unresolved_ns: Vec::new(),
            ds_responses: Vec::new(),
            ds_failures: Vec::new(),
            depth: MAX_WALK_DEPTH,
        }
    }
}

/// Per-lap byproducts a [`ZoneProbe`] does not carry: the server list the
/// lap actually queried, and the incoming DS failures *before* they were
/// merged into `lookup_failures` (which also absorbs this lap's referral
/// failures). Together with the `ZoneProbe` they reconstruct the lap's
/// [`WalkStart`].
#[derive(Debug, Clone)]
pub(crate) struct LapMeta {
    pub(crate) servers: Vec<ServerId>,
    pub(crate) ds_failures: Vec<(ServerId, QueryFailure)>,
}

/// Runs the delegation walk from `start` until the query zone, a fully
/// lame cut, or the depth budget. Returns the probed zones with one
/// [`LapMeta`] each, in walk order.
pub(crate) fn walk_chain(
    prober: &mut Prober<'_>,
    cfg: &ProbeConfig,
    start: WalkStart,
) -> (Vec<ZoneProbe>, Vec<LapMeta>) {
    let net = prober.net;
    let mut zones = Vec::new();
    let mut metas = Vec::new();
    let mut zone = start.zone;
    let mut servers = start.servers;
    let mut parent = start.parent;
    let mut delegation_ns = start.delegation_ns;
    let mut unresolved = start.unresolved_ns;
    let mut ds_responses = start.ds_responses;
    let mut ds_failures = start.ds_failures;

    for _depth in 0..start.depth {
        metas.push(LapMeta {
            servers: servers.clone(),
            ds_failures: ds_failures.clone(),
        });
        // Is this the query zone (no further cut toward the target)?
        let mut lookup_failures = std::mem::take(&mut ds_failures);
        let cut = prober.next_cut(&servers, &cfg.query_domain, &zone, &mut lookup_failures);
        let is_query_zone = cut.is_none();
        let targets = if is_query_zone {
            Some((&cfg.query_domain, &cfg.target_types[..]))
        } else {
            None
        };
        let server_probes: Vec<ServerProbe> = servers
            .iter()
            .map(|s| prober.probe_server(s, &zone, targets))
            .collect();
        ddx_dns::trace_event!(
            target: "dnsviz::probe",
            "zone probed",
            zone = zone,
            servers = server_probes.len(),
            is_query_zone = is_query_zone,
        );
        // Move the per-zone accumulators into the record instead of
        // cloning: each is rebuilt below before the next lap needs it.
        zones.push(ZoneProbe {
            zone: zone.clone(),
            parent: parent.take(),
            delegation_ns: std::mem::take(&mut delegation_ns),
            unresolved_ns: std::mem::take(&mut unresolved),
            ds_responses: std::mem::take(&mut ds_responses),
            servers: server_probes,
            orphaned: false,
            lookup_failures,
        });

        let Some((cut, ns_names)) = cut else {
            break;
        };
        // Gather DS for the child from every parent server.
        ds_responses = servers
            .iter()
            .map(|s| {
                let mut failures = Vec::new();
                let resp = prober.ask(s, 7, &cut, RrType::Ds, &mut failures);
                for f in failures {
                    ds_failures.push((s.clone(), f));
                }
                (s.clone(), resp)
            })
            .collect();
        // Resolve the child's nameservers.
        let mut next_servers = Vec::new();
        let mut next_unresolved = Vec::new();
        for host in &ns_names {
            match net.resolve_ns(host) {
                Some(id) if !next_servers.contains(&id) => next_servers.push(id),
                Some(_) => {}
                None => next_unresolved.push(host.clone()),
            }
        }
        parent = Some(zone);
        zone = cut;
        delegation_ns = ns_names;
        unresolved = next_unresolved;
        servers = next_servers;
        if servers.is_empty() {
            // Fully lame delegation: record the empty zone probe and stop.
            metas.push(LapMeta {
                servers: Vec::new(),
                ds_failures: ds_failures.clone(),
            });
            zones.push(ZoneProbe {
                zone,
                parent,
                delegation_ns,
                unresolved_ns: unresolved,
                ds_responses,
                servers: Vec::new(),
                orphaned: false,
                lookup_failures: std::mem::take(&mut ds_failures),
            });
            break;
        }
    }
    (zones, metas)
}

/// The hint pass: a hinted zone on the query path that the walk never
/// reached (its delegation is missing from the parent) gets probed directly
/// and appended as orphaned.
pub(crate) fn hint_pass(prober: &mut Prober<'_>, cfg: &ProbeConfig, zones: &mut Vec<ZoneProbe>) {
    let deepest = zones.last().map(|z| z.zone.clone());
    if let Some(deepest) = deepest {
        let mut missing: Vec<&(Name, Vec<ServerId>)> = cfg
            .hints
            .iter()
            .filter(|(z, _)| {
                cfg.query_domain.is_subdomain_of(z)
                    && z.is_strict_subdomain_of(&deepest)
                    && zones.iter().all(|zp| zp.zone != *z)
            })
            .collect();
        missing.sort_by_key(|a| a.0.label_count());
        for (z, hint_servers) in missing {
            let is_query_zone = zones
                .iter()
                .all(|zp| !cfg.query_domain.is_subdomain_of(&zp.zone))
                || z.label_count() >= deepest.label_count();
            let targets = if is_query_zone {
                Some((&cfg.query_domain, &cfg.target_types[..]))
            } else {
                None
            };
            let server_probes: Vec<ServerProbe> = hint_servers
                .iter()
                .map(|s| prober.probe_server(s, z, targets))
                .collect();
            ddx_dns::trace_event!(
                target: "dnsviz::probe",
                "orphaned zone probed",
                zone = z,
                servers = server_probes.len(),
            );
            zones.push(ZoneProbe {
                zone: z.clone(),
                parent: Some(deepest.clone()),
                delegation_ns: Vec::new(),
                unresolved_ns: Vec::new(),
                ds_responses: Vec::new(),
                servers: server_probes,
                orphaned: true,
                lookup_failures: Vec::new(),
            });
        }
    }
}

/// Runs the full probe walk.
pub fn probe(net: &dyn Network, cfg: &ProbeConfig) -> ProbeResult {
    ddx_obs::counter("probe.walks", &[]).inc();
    let _walk_timer = ddx_obs::histogram("probe.walk_us", &[]).start_timer();
    ddx_dns::trace_span!(
        _walk_span,
        target: "dnsviz::probe",
        "walk",
        query_domain = cfg.query_domain,
        anchor = cfg.anchor_zone,
    );
    let mut prober = Prober::new(net, cfg.retry.clone());
    let (mut zones, _metas) = walk_chain(&mut prober, cfg, WalkStart::anchor(cfg));
    hint_pass(&mut prober, cfg, &mut zones);
    prober.into_result(cfg, zones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::{name, Record, Soa, Zone};
    use ddx_dnssec::{
        make_ds, sign_zone, Algorithm, DigestType, KeyPair, KeyRing, KeyRole, SignerConfig,
    };
    use ddx_server::{Server, Testbed};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_000_000;

    fn soa_rec(apex: &Name) -> Record {
        Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex.child("ns1").unwrap(),
                rname: apex.child("hostmaster").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        )
    }

    /// Builds a two-level signed hierarchy: anchor `a.com` delegating
    /// `par.a.com`, each on one server.
    fn build_testbed() -> (Testbed, ProbeConfig) {
        let mut rng = StdRng::seed_from_u64(42);
        let parent_apex = name("a.com");
        let child_apex = name("par.a.com");

        // Child zone + keys.
        let mut child_ring = KeyRing::new();
        for role in [KeyRole::Ksk, KeyRole::Zsk] {
            child_ring.add(KeyPair::generate(
                &mut rng,
                child_apex.clone(),
                Algorithm::EcdsaP256Sha256,
                256,
                role,
                NOW,
            ));
        }
        let mut child = Zone::new(child_apex.clone());
        child.add(soa_rec(&child_apex));
        child.add(Record::new(
            child_apex.clone(),
            3600,
            RData::Ns(name("ns1.par.a.com")),
        ));
        child.add(Record::new(
            name("ns1.par.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        child.add(Record::new(
            name("www.par.a.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 11)),
        ));
        sign_zone(&mut child, &child_ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let ksk = child_ring.active(KeyRole::Ksk, NOW)[0];
        let ds = make_ds(&child_apex, &ksk.dnskey, DigestType::Sha256);

        // Parent zone + keys.
        let mut parent_ring = KeyRing::new();
        for role in [KeyRole::Ksk, KeyRole::Zsk] {
            parent_ring.add(KeyPair::generate(
                &mut rng,
                parent_apex.clone(),
                Algorithm::EcdsaP256Sha256,
                256,
                role,
                NOW,
            ));
        }
        let mut parent = Zone::new(parent_apex.clone());
        parent.add(soa_rec(&parent_apex));
        parent.add(Record::new(
            parent_apex.clone(),
            3600,
            RData::Ns(name("ns1.a.com")),
        ));
        parent.add(Record::new(
            name("ns1.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        parent.add(Record::new(
            child_apex.clone(),
            3600,
            RData::Ns(name("ns1.par.a.com")),
        ));
        parent.add(Record::new(
            name("ns1.par.a.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        parent.add(Record::new(child_apex.clone(), 3600, RData::Ds(ds)));
        sign_zone(&mut parent, &parent_ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();

        let mut tb = Testbed::new();
        let mut ps = Server::new(ServerId("a.com#0".into()));
        ps.load_zone(parent);
        tb.add_server(ps);
        tb.register_ns(name("ns1.a.com"), ServerId("a.com#0".into()));
        let mut cs = Server::new(ServerId("par.a.com#0".into()));
        cs.load_zone(child);
        tb.add_server(cs);
        tb.register_ns(name("ns1.par.a.com"), ServerId("par.a.com#0".into()));

        let cfg = ProbeConfig {
            anchor_zone: name("a.com"),
            anchor_servers: vec![ServerId("a.com#0".into())],
            query_domain: name("www.par.a.com"),
            target_types: vec![RrType::A],
            time: NOW,
            hints: vec![(name("par.a.com"), vec![ServerId("par.a.com#0".into())])],
            retry: RetryPolicy::default(),
        };
        (tb, cfg)
    }

    #[test]
    fn walks_two_zone_cuts() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        assert_eq!(result.zones.len(), 2);
        assert_eq!(result.zones[0].zone, name("a.com"));
        assert_eq!(result.zones[1].zone, name("par.a.com"));
        assert_eq!(result.zones[1].parent, Some(name("a.com")));
        assert_eq!(result.zones[1].delegation_ns, vec![name("ns1.par.a.com")]);
    }

    #[test]
    fn collects_ds_from_parent() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        let qz = result.query_zone().unwrap();
        assert_eq!(qz.ds_responses.len(), 1);
        let ds_msg = qz.ds_responses[0].1.as_ref().unwrap();
        assert!(ds_msg.find_answer(&name("par.a.com"), RrType::Ds).is_some());
    }

    #[test]
    fn gathers_dnskey_and_negative_probes() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        let qz = result.query_zone().unwrap();
        let sp = &qz.servers[0];
        assert!(sp.responsive);
        assert_eq!(sp.dnskeys().count(), 2);
        let nx = sp.nxdomain.as_ref().unwrap();
        assert_eq!(nx.rcode, ddx_dns::Rcode::NxDomain);
        assert!(nx.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
        // Target answer at the query zone only.
        assert_eq!(sp.answers.len(), 1);
        assert!(sp.answers[0].1.is_some());
        assert!(result.zones[0].servers[0].answers.is_empty());
    }

    #[test]
    fn lame_child_recorded() {
        let (mut tb, cfg) = build_testbed();
        tb.unregister_ns(&name("ns1.par.a.com"));
        let result = probe(&tb, &cfg);
        let qz = result.query_zone().unwrap();
        assert_eq!(qz.zone, name("par.a.com"));
        assert!(qz.is_lame());
        assert_eq!(qz.unresolved_ns, vec![name("ns1.par.a.com")]);
    }

    #[test]
    fn anchor_only_walk() {
        let (tb, mut cfg) = build_testbed();
        cfg.query_domain = name("a.com");
        let result = probe(&tb, &cfg);
        assert_eq!(result.zones.len(), 1);
        assert!(!result.zones[0].servers[0].answers.is_empty());
    }

    #[test]
    fn clean_walk_has_no_failures_and_healthy_servers() {
        let (tb, cfg) = build_testbed();
        let result = probe(&tb, &cfg);
        for zp in &result.zones {
            assert!(zp.lookup_failures.is_empty());
            for sp in &zp.servers {
                assert!(sp.failures.is_empty(), "{:?}", sp.failures);
            }
        }
        assert!(!result.health.is_empty());
        for (_, h) in &result.health {
            assert_eq!(h.sent, h.ok, "clean network: every attempt succeeds");
            assert_eq!(h.timeouts + h.truncated + h.malformed + h.refused, 0);
        }
    }

    #[test]
    fn retry_heals_transient_timeouts() {
        use ddx_server::{FaultNetwork, FaultPlan};
        let (tb, cfg) = build_testbed();
        // Every first attempt times out; the second is served clean. With
        // attempts=3 the walk must converge to the fault-free observation.
        let plan = FaultPlan {
            timeout_permille: 1000,
            max_faulty_attempts: Some(1),
            ..FaultPlan::none(0x7E57)
        };
        let net = FaultNetwork::new(&tb, plan);
        let faulty = probe(&net, &cfg);
        let clean = probe(&tb, &cfg);
        assert_eq!(faulty.zones.len(), clean.zones.len());
        for (fz, cz) in faulty.zones.iter().zip(&clean.zones) {
            assert_eq!(fz.zone, cz.zone);
            for (fs, cs) in fz.servers.iter().zip(&cz.servers) {
                assert!(fs.responsive);
                assert!(fs.failures.is_empty(), "healed: {:?}", fs.failures);
                assert_eq!(
                    fs.soa.as_deref().map(ddx_dns::wire::encode),
                    cs.soa.as_deref().map(ddx_dns::wire::encode)
                );
            }
        }
        // Health still remembers the transient trouble.
        assert!(faulty.health.iter().any(|(_, h)| h.timeouts > 0));
        assert!(faulty.virtual_ms > clean.virtual_ms, "backoff takes time");
    }

    #[test]
    fn persistent_timeout_recorded_as_typed_failure() {
        use ddx_server::{FaultNetwork, FaultPlan};
        let (tb, cfg) = build_testbed();
        let child = ServerId("par.a.com#0".into());
        let plan = FaultPlan {
            timeout_permille: 1000,
            only_server: Some(child.clone()),
            ..FaultPlan::none(1)
        };
        let net = FaultNetwork::new(&tb, plan);
        let result = probe(&net, &cfg);
        let qz = result.query_zone().unwrap();
        let sp = qz.servers.iter().find(|s| s.server == child).unwrap();
        assert!(!sp.responsive);
        assert!(!sp.failures.is_empty());
        assert!(sp
            .failures
            .iter()
            .all(|f| f.kind == FailureKind::Timeout && f.attempts == cfg.retry.attempts));
        // The walk's referral lookups toward the child also failed and are
        // attributed, not dropped.
        assert!(result
            .zones
            .iter()
            .flat_map(|z| &z.lookup_failures)
            .any(|(sid, f)| *sid == child && f.kind == FailureKind::Timeout));
    }

    #[test]
    fn persistent_truncation_recorded_as_typed_failure() {
        use ddx_server::{FaultNetwork, FaultPlan};
        let (tb, cfg) = build_testbed();
        let plan = FaultPlan {
            truncate_permille: 1000,
            ..FaultPlan::none(2)
        };
        let net = FaultNetwork::new(&tb, plan);
        let result = probe(&net, &cfg);
        let failures: Vec<&QueryFailure> = result
            .zones
            .iter()
            .flat_map(|z| z.servers.iter().flat_map(|s| &s.failures))
            .collect();
        assert!(!failures.is_empty());
        assert!(failures.iter().all(|f| f.kind == FailureKind::Truncated));
    }
}
