//! The DNSSEC error-code registry: 47 fine-grained codes (mirroring the
//! count in the paper's dataset, §3.5) grouped into the 26 subcategories and
//! 8 parent categories of Table 3. Every code carries a criticality flag
//! (does it break validation → SERVFAIL → `sb`, or is it a violation a
//! resolver may tolerate → `svm`) and a replicability flag (paper §5.5.1:
//! a small set of anomalies cannot be recreated in a local sandbox).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Parent categories (Table 3, left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    Delegation,
    Key,
    Algorithm,
    Signature,
    Ttl,
    Nsec3Shared,
    NsecOnly,
    Nsec3Only,
}

impl Category {
    pub fn label(self) -> &'static str {
        match self {
            Category::Delegation => "Delegation",
            Category::Key => "Key",
            Category::Algorithm => "Algorithm",
            Category::Signature => "Signature",
            Category::Ttl => "TTL",
            Category::Nsec3Shared => "NSEC(3)",
            Category::NsecOnly => "NSEC(Only)",
            Category::Nsec3Only => "NSEC3(Only)",
        }
    }

    /// All categories, Table 3 order.
    pub const ALL: [Category; 8] = [
        Category::Delegation,
        Category::Key,
        Category::Algorithm,
        Category::Signature,
        Category::Ttl,
        Category::Nsec3Shared,
        Category::NsecOnly,
        Category::Nsec3Only,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The 26 subcategories of Table 3. The numbered markers ①–⑨ from the paper
/// appear in [`Subcategory::marker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Subcategory {
    // Delegation
    MissingKskForAlgorithm,
    InvalidDigest,
    // Key
    InconsistentDnskey,
    RevokedKey,
    BadKeyLength,
    // Algorithm
    IncompleteAlgorithmSetup,
    // Signature
    MissingSignature,
    ExpiredSignature,
    InvalidSignature,
    IncorrectSigner,
    NotYetValidSignature,
    IncorrectSignatureLabels,
    BadSignatureLength,
    // TTL
    OriginalTtlExceedsRrsetTtl,
    TtlBeyondExpiration,
    // NSEC(3) shared
    MissingNonexistenceProof,
    IncorrectTypeBitmap,
    BadNonexistenceProof,
    // NSEC only
    IncorrectLastNsec,
    // NSEC3 only
    NonzeroIterationCount,
    InconsistentAncestorForNxdomain,
    IncorrectClosestEncloserProof,
    InvalidNsec3Hash,
    InvalidNsec3OwnerName,
    IncorrectOptOutFlag,
    UnsupportedNsec3Algorithm,
    /// Extension (not in Table 3, absent from [`Subcategory::ALL`]):
    /// KeyTrap-class validation-work blowups.
    ExcessiveValidationWork,
}

impl Subcategory {
    /// Table 3 order.
    pub const ALL: [Subcategory; 26] = [
        Subcategory::MissingKskForAlgorithm,
        Subcategory::InvalidDigest,
        Subcategory::InconsistentDnskey,
        Subcategory::RevokedKey,
        Subcategory::BadKeyLength,
        Subcategory::IncompleteAlgorithmSetup,
        Subcategory::MissingSignature,
        Subcategory::ExpiredSignature,
        Subcategory::InvalidSignature,
        Subcategory::IncorrectSigner,
        Subcategory::NotYetValidSignature,
        Subcategory::IncorrectSignatureLabels,
        Subcategory::BadSignatureLength,
        Subcategory::OriginalTtlExceedsRrsetTtl,
        Subcategory::TtlBeyondExpiration,
        Subcategory::MissingNonexistenceProof,
        Subcategory::IncorrectTypeBitmap,
        Subcategory::BadNonexistenceProof,
        Subcategory::IncorrectLastNsec,
        Subcategory::NonzeroIterationCount,
        Subcategory::InconsistentAncestorForNxdomain,
        Subcategory::IncorrectClosestEncloserProof,
        Subcategory::InvalidNsec3Hash,
        Subcategory::InvalidNsec3OwnerName,
        Subcategory::IncorrectOptOutFlag,
        Subcategory::UnsupportedNsec3Algorithm,
    ];

    pub fn category(self) -> Category {
        use Subcategory::*;
        match self {
            MissingKskForAlgorithm | InvalidDigest => Category::Delegation,
            InconsistentDnskey | RevokedKey | BadKeyLength => Category::Key,
            IncompleteAlgorithmSetup => Category::Algorithm,
            MissingSignature
            | ExpiredSignature
            | InvalidSignature
            | IncorrectSigner
            | NotYetValidSignature
            | IncorrectSignatureLabels
            | BadSignatureLength => Category::Signature,
            OriginalTtlExceedsRrsetTtl | TtlBeyondExpiration => Category::Ttl,
            MissingNonexistenceProof | IncorrectTypeBitmap | BadNonexistenceProof => {
                Category::Nsec3Shared
            }
            IncorrectLastNsec => Category::NsecOnly,
            NonzeroIterationCount
            | InconsistentAncestorForNxdomain
            | IncorrectClosestEncloserProof
            | InvalidNsec3Hash
            | InvalidNsec3OwnerName
            | IncorrectOptOutFlag
            | UnsupportedNsec3Algorithm => Category::Nsec3Only,
            // Budget trips are triggered by signature/NSEC3 workloads; the
            // Signature parent keeps DFixer's priority ordering sensible.
            ExcessiveValidationWork => Category::Signature,
        }
    }

    /// Human label matching Table 3.
    pub fn label(self) -> &'static str {
        use Subcategory::*;
        match self {
            MissingKskForAlgorithm => "Missing KSK for Algorithm",
            InvalidDigest => "Invalid Digest",
            InconsistentDnskey => "Inconsistent DNSKEY b/w Servers",
            RevokedKey => "Revoked Key",
            BadKeyLength => "Bad Key Length",
            IncompleteAlgorithmSetup => "Incomplete Algorithm Setup",
            MissingSignature => "Missing Signature",
            ExpiredSignature => "Expired Signature",
            InvalidSignature => "Invalid Signature",
            IncorrectSigner => "Incorrect Signer",
            NotYetValidSignature => "Not Yet Valid Signature",
            IncorrectSignatureLabels => "Incorrect Signature Labels",
            BadSignatureLength => "Bad Signature Length",
            OriginalTtlExceedsRrsetTtl => "Original TTL Exceeds RRSet TTL",
            TtlBeyondExpiration => "TTL Beyond Expiration",
            MissingNonexistenceProof => "Missing Non-existence Proof",
            IncorrectTypeBitmap => "Incorrect Type Bitmap",
            BadNonexistenceProof => "Bad Non-existence Proof",
            IncorrectLastNsec => "Incorrect Last NSEC",
            NonzeroIterationCount => "Nonzero Iteration Count (NZIC)",
            InconsistentAncestorForNxdomain => "Inconsistent Ancestor for NXDOMAIN",
            IncorrectClosestEncloserProof => "Incorrect Closest Encloser Proof",
            InvalidNsec3Hash => "Invalid NSEC3 Hash",
            InvalidNsec3OwnerName => "Invalid NSEC3 Owner Name",
            IncorrectOptOutFlag => "Incorrect Opt-out Flag",
            UnsupportedNsec3Algorithm => "Unsupported NSEC3 Algorithm",
            ExcessiveValidationWork => "Excessive Validation Work",
        }
    }

    /// The ①–⑨ markers from Table 3 / Figure 4 (highlighted subcategories).
    pub fn marker(self) -> Option<u8> {
        use Subcategory::*;
        Some(match self {
            InvalidDigest => 1,
            IncompleteAlgorithmSetup => 2,
            InconsistentDnskey => 3,
            ExpiredSignature => 4,
            MissingKskForAlgorithm => 5,
            InvalidSignature => 6,
            MissingNonexistenceProof => 7,
            OriginalTtlExceedsRrsetTtl => 8,
            NonzeroIterationCount => 9,
            _ => return None,
        })
    }
}

impl fmt::Display for Subcategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The 47 fine-grained error codes the grok engine emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorCode {
    // -- Delegation ------------------------------------------------------
    /// DS references an algorithm with no matching DNSKEY in the child.
    DsMissingKeyForAlgorithm,
    /// DS algorithm present in DNSKEY set, but no SEP-flagged key carries it.
    NoSepForDsAlgorithm,
    /// DS exists but the child publishes no DNSKEY RRset at all.
    DnskeyMissingForDs,
    /// No DS record authenticates any DNSKEY: chain of trust has no entry.
    NoSecureEntryPoint,
    /// DS digest does not match the referenced DNSKEY.
    DsDigestInvalid,
    /// DS algorithm field disagrees with the DNSKEY it tags.
    DsAlgorithmMismatch,
    /// DS uses a digest type the validator cannot process.
    DsUnknownDigestType,
    // -- Key ---------------------------------------------------------------
    /// A DNSKEY present on some authoritative servers is absent from others.
    DnskeyMissingFromServers,
    /// Authoritative servers publish entirely different DNSKEY RRsets.
    DnskeyInconsistentRrset,
    /// A revoked key is still used to authenticate zone data.
    RevokedKeyInUse,
    /// The parent DS references a key carrying the REVOKE flag.
    DsReferencesRevokedKey,
    /// The only SEP key is revoked, leaving no usable secure entry point.
    DnskeyRevokedNoOtherSep,
    /// Key material is shorter than the minimum for its algorithm.
    KeyLengthTooShort,
    /// Key length is not legal for the algorithm at all.
    KeyLengthInvalidForAlgorithm,
    // -- Algorithm ---------------------------------------------------------
    /// DS RRset includes an algorithm with no covering RRSIG in responses.
    DsAlgorithmWithoutRrsig,
    /// DNSKEY RRset includes an algorithm that signs nothing (RFC 6840 §5.11).
    DnskeyAlgorithmWithoutRrsig,
    /// RRSIGs exist for an algorithm with no corresponding DNSKEY.
    RrsigAlgorithmWithoutDnskey,
    // -- Signature ---------------------------------------------------------
    /// An authoritative RRset has no covering RRSIG.
    RrsigMissing,
    /// RRSIGs present on some servers, missing on others.
    RrsigMissingFromServers,
    /// The DNSKEY RRset itself is unsigned.
    RrsigMissingForDnskey,
    /// RRSIG expiration is in the past.
    RrsigExpired,
    /// Cryptographic verification failed.
    RrsigInvalid,
    /// RRSIG RDATA is malformed/self-inconsistent.
    RrsigInvalidRdata,
    /// RRSIG key tag matches no published DNSKEY.
    RrsigUnknownKeyTag,
    /// RRSIG signer name is not the owning zone.
    RrsigSignerMismatch,
    /// RRSIG inception is in the future.
    RrsigNotYetValid,
    /// RRSIG Labels field exceeds the owner-name label count.
    RrsigLabelsExceedOwner,
    /// Signature byte length is wrong for the algorithm.
    RrsigBadLength,
    // -- TTL ---------------------------------------------------------------
    /// RRSIG Original TTL exceeds the RRset TTL served.
    OriginalTtlExceeded,
    /// RRset TTL lets cached copies outlive the signature validity window.
    TtlBeyondSignatureExpiry,
    // -- NSEC(3) shared ------------------------------------------------------
    /// Negative response from a signed zone carried no NSEC proof.
    NsecProofMissing,
    /// Negative response from a signed zone carried no NSEC3 proof.
    Nsec3ProofMissing,
    /// NSEC bitmap asserts a type that the NODATA response denies.
    NsecBitmapAssertsType,
    /// NSEC3 bitmap asserts a type that the NODATA response denies.
    Nsec3BitmapAssertsType,
    /// NSEC records present but fail to cover the denied name.
    NsecCoverageBroken,
    /// NSEC3 records present but fail to cover the denied name.
    Nsec3CoverageBroken,
    /// No NSEC proof that the source-of-synthesis wildcard is absent.
    NsecMissingWildcardProof,
    /// No NSEC3 proof that the source-of-synthesis wildcard is absent.
    Nsec3MissingWildcardProof,
    /// NSEC3PARAM parameters disagree with the served NSEC3 records.
    Nsec3ParamMismatch,
    // -- NSEC only -----------------------------------------------------------
    /// The chain's last NSEC does not wrap back to the apex.
    LastNsecNotApex,
    // -- NSEC3 only ----------------------------------------------------------
    /// NSEC3 iteration count is nonzero (RFC 9276 violation).
    Nsec3IterationsNonzero,
    /// Different servers prove different closest enclosers for one NXDOMAIN.
    Nsec3InconsistentAncestor,
    /// NXDOMAIN proof lacks a closest-encloser match.
    Nsec3NoClosestEncloser,
    /// NSEC3 next-hash field has an impossible length.
    Nsec3HashInvalidLength,
    /// NSEC3 owner label is not valid base32hex of a hash.
    Nsec3OwnerNotBase32,
    /// Opt-out flags are used inconsistently within one chain.
    Nsec3OptOutViolation,
    /// NSEC3 hash algorithm is not SHA-1.
    Nsec3UnsupportedAlgorithm,
    // -- Extensions beyond the paper's Table 3 -------------------------------
    /// The zone demanded more validation work (signature verifications or
    /// NSEC3 hash rounds) than the per-zone budget allows — the signature
    /// of KeyTrap-class algorithmic-complexity attacks. Not one of the
    /// paper's 47 codes, so deliberately absent from [`ErrorCode::ALL`].
    ValidationBudgetExceeded,
}

impl ErrorCode {
    /// All 47 codes.
    pub const ALL: [ErrorCode; 47] = [
        ErrorCode::DsMissingKeyForAlgorithm,
        ErrorCode::NoSepForDsAlgorithm,
        ErrorCode::DnskeyMissingForDs,
        ErrorCode::NoSecureEntryPoint,
        ErrorCode::DsDigestInvalid,
        ErrorCode::DsAlgorithmMismatch,
        ErrorCode::DsUnknownDigestType,
        ErrorCode::DnskeyMissingFromServers,
        ErrorCode::DnskeyInconsistentRrset,
        ErrorCode::RevokedKeyInUse,
        ErrorCode::DsReferencesRevokedKey,
        ErrorCode::DnskeyRevokedNoOtherSep,
        ErrorCode::KeyLengthTooShort,
        ErrorCode::KeyLengthInvalidForAlgorithm,
        ErrorCode::DsAlgorithmWithoutRrsig,
        ErrorCode::DnskeyAlgorithmWithoutRrsig,
        ErrorCode::RrsigAlgorithmWithoutDnskey,
        ErrorCode::RrsigMissing,
        ErrorCode::RrsigMissingFromServers,
        ErrorCode::RrsigMissingForDnskey,
        ErrorCode::RrsigExpired,
        ErrorCode::RrsigInvalid,
        ErrorCode::RrsigInvalidRdata,
        ErrorCode::RrsigUnknownKeyTag,
        ErrorCode::RrsigSignerMismatch,
        ErrorCode::RrsigNotYetValid,
        ErrorCode::RrsigLabelsExceedOwner,
        ErrorCode::RrsigBadLength,
        ErrorCode::OriginalTtlExceeded,
        ErrorCode::TtlBeyondSignatureExpiry,
        ErrorCode::NsecProofMissing,
        ErrorCode::Nsec3ProofMissing,
        ErrorCode::NsecBitmapAssertsType,
        ErrorCode::Nsec3BitmapAssertsType,
        ErrorCode::NsecCoverageBroken,
        ErrorCode::Nsec3CoverageBroken,
        ErrorCode::NsecMissingWildcardProof,
        ErrorCode::Nsec3MissingWildcardProof,
        ErrorCode::Nsec3ParamMismatch,
        ErrorCode::LastNsecNotApex,
        ErrorCode::Nsec3IterationsNonzero,
        ErrorCode::Nsec3InconsistentAncestor,
        ErrorCode::Nsec3NoClosestEncloser,
        ErrorCode::Nsec3HashInvalidLength,
        ErrorCode::Nsec3OwnerNotBase32,
        ErrorCode::Nsec3OptOutViolation,
        ErrorCode::Nsec3UnsupportedAlgorithm,
    ];

    pub fn subcategory(self) -> Subcategory {
        use ErrorCode::*;
        match self {
            DsMissingKeyForAlgorithm
            | NoSepForDsAlgorithm
            | DnskeyMissingForDs
            | NoSecureEntryPoint => Subcategory::MissingKskForAlgorithm,
            DsDigestInvalid | DsAlgorithmMismatch | DsUnknownDigestType => {
                Subcategory::InvalidDigest
            }
            DnskeyMissingFromServers | DnskeyInconsistentRrset => Subcategory::InconsistentDnskey,
            RevokedKeyInUse | DsReferencesRevokedKey | DnskeyRevokedNoOtherSep => {
                Subcategory::RevokedKey
            }
            KeyLengthTooShort | KeyLengthInvalidForAlgorithm => Subcategory::BadKeyLength,
            DsAlgorithmWithoutRrsig | DnskeyAlgorithmWithoutRrsig | RrsigAlgorithmWithoutDnskey => {
                Subcategory::IncompleteAlgorithmSetup
            }
            RrsigMissing | RrsigMissingFromServers | RrsigMissingForDnskey => {
                Subcategory::MissingSignature
            }
            RrsigExpired => Subcategory::ExpiredSignature,
            RrsigInvalid | RrsigInvalidRdata | RrsigUnknownKeyTag => Subcategory::InvalidSignature,
            RrsigSignerMismatch => Subcategory::IncorrectSigner,
            RrsigNotYetValid => Subcategory::NotYetValidSignature,
            RrsigLabelsExceedOwner => Subcategory::IncorrectSignatureLabels,
            RrsigBadLength => Subcategory::BadSignatureLength,
            OriginalTtlExceeded => Subcategory::OriginalTtlExceedsRrsetTtl,
            TtlBeyondSignatureExpiry => Subcategory::TtlBeyondExpiration,
            NsecProofMissing | Nsec3ProofMissing => Subcategory::MissingNonexistenceProof,
            NsecBitmapAssertsType | Nsec3BitmapAssertsType => Subcategory::IncorrectTypeBitmap,
            NsecCoverageBroken
            | Nsec3CoverageBroken
            | NsecMissingWildcardProof
            | Nsec3MissingWildcardProof
            | Nsec3ParamMismatch => Subcategory::BadNonexistenceProof,
            LastNsecNotApex => Subcategory::IncorrectLastNsec,
            Nsec3IterationsNonzero => Subcategory::NonzeroIterationCount,
            Nsec3InconsistentAncestor => Subcategory::InconsistentAncestorForNxdomain,
            Nsec3NoClosestEncloser => Subcategory::IncorrectClosestEncloserProof,
            Nsec3HashInvalidLength => Subcategory::InvalidNsec3Hash,
            Nsec3OwnerNotBase32 => Subcategory::InvalidNsec3OwnerName,
            Nsec3OptOutViolation => Subcategory::IncorrectOptOutFlag,
            Nsec3UnsupportedAlgorithm => Subcategory::UnsupportedNsec3Algorithm,
            ValidationBudgetExceeded => Subcategory::ExcessiveValidationWork,
        }
    }

    pub fn category(self) -> Category {
        self.subcategory().category()
    }

    /// True when the error breaks validation outright (a validating resolver
    /// answers SERVFAIL → snapshot class `sb`). Non-critical codes are
    /// RFC violations most resolvers tolerate → `svm`.
    pub fn is_critical(self) -> bool {
        use ErrorCode::*;
        match self {
            // Chain-of-trust breakers.
            DsMissingKeyForAlgorithm
            | DnskeyMissingForDs
            | NoSecureEntryPoint
            | DsDigestInvalid
            | DsAlgorithmMismatch
            | DnskeyRevokedNoOtherSep => true,
            // Signature breakers.
            RrsigMissing
            | RrsigMissingForDnskey
            | RrsigExpired
            | RrsigInvalid
            | RrsigSignerMismatch
            | RrsigNotYetValid
            | RrsigBadLength
            | RrsigUnknownKeyTag
            | RrsigInvalidRdata
            | RevokedKeyInUse => true,
            // A zone that exhausts its validation budget is indistinguishable
            // from bogus: analysis was cut short, so validation cannot
            // succeed — and a defended resolver SERVFAILs it too.
            ValidationBudgetExceeded => true,
            // Denial breakers: a validator cannot prove the negative.
            NsecProofMissing
            | Nsec3ProofMissing
            | NsecCoverageBroken
            | Nsec3CoverageBroken
            | Nsec3NoClosestEncloser
            | Nsec3UnsupportedAlgorithm => true,
            // Key inconsistency causes intermittent SERVFAIL, counted sb.
            DnskeyInconsistentRrset => true,
            // Everything else is tolerated (implementation-dependent).
            NoSepForDsAlgorithm
            | DsUnknownDigestType
            | DnskeyMissingFromServers
            | DsReferencesRevokedKey
            | KeyLengthTooShort
            | KeyLengthInvalidForAlgorithm
            | DsAlgorithmWithoutRrsig
            | DnskeyAlgorithmWithoutRrsig
            | RrsigAlgorithmWithoutDnskey
            | RrsigMissingFromServers
            | RrsigLabelsExceedOwner
            | OriginalTtlExceeded
            | TtlBeyondSignatureExpiry
            | NsecBitmapAssertsType
            | Nsec3BitmapAssertsType
            | NsecMissingWildcardProof
            | Nsec3MissingWildcardProof
            | Nsec3ParamMismatch
            | LastNsecNotApex
            | Nsec3IterationsNonzero
            | Nsec3InconsistentAncestor
            | Nsec3HashInvalidLength
            | Nsec3OwnerNotBase32
            | Nsec3OptOutViolation => false,
        }
    }

    /// False for the anomalies ZReplicator cannot recreate locally (paper
    /// §5.5.1: buggy-nameserver artifacts and some negative-proof
    /// anomalies — BIND refuses to load blatantly invalid records).
    pub fn replicable(self) -> bool {
        use ErrorCode::*;
        !matches!(
            self,
            // A DNSKEY with an impossible bit length: the signer refuses it.
            KeyLengthInvalidForAlgorithm
                // Hash/owner corruption only buggy implementations emit.
                | Nsec3HashInvalidLength
                | Nsec3OwnerNotBase32
                // Divergent-ancestor NXDOMAIN needs pathological resolvers.
                | Nsec3InconsistentAncestor
        )
    }

    /// True when the code asserts that something was *absent* from the
    /// observed responses (a missing RRSIG, DNSKEY, or denial proof).
    /// Absence evidence is only trustworthy when every server answered: if
    /// the probe recorded observation gaps for the zone (timeouts,
    /// truncation, unparseable responses), the record may exist and simply
    /// never have been seen. DFixer defers these codes rather than
    /// prescribing a fix from missing data.
    pub fn evidence_is_absence(self) -> bool {
        use ErrorCode::*;
        matches!(
            self,
            RrsigMissing
                | RrsigMissingFromServers
                | RrsigMissingForDnskey
                | DnskeyMissingForDs
                | DnskeyMissingFromServers
                | DnskeyInconsistentRrset
                | NsecProofMissing
                | Nsec3ProofMissing
        )
    }

    /// DNSViz-style identifier string.
    pub fn ident(self) -> String {
        format!("{self:?}")
    }

    /// Human-readable message template (the kind DNSViz shows operators).
    pub fn message(self) -> &'static str {
        use ErrorCode::*;
        match self {
            DsMissingKeyForAlgorithm => {
                "The DS RRset for the zone included an algorithm for which no DNSKEY exists in the zone."
            }
            NoSepForDsAlgorithm => {
                "No SEP-flagged DNSKEY matches the algorithm referenced by the DS RRset."
            }
            DnskeyMissingForDs => "A DS RRset exists in the parent, but the zone returned no DNSKEY RRset.",
            NoSecureEntryPoint => "No DS record successfully authenticates any DNSKEY: there is no secure entry point to the zone.",
            DsDigestInvalid => "The digest in the DS RRset does not match the computed digest of the referenced DNSKEY.",
            DsAlgorithmMismatch => "The algorithm field of a DS record disagrees with the DNSKEY it references.",
            DsUnknownDigestType => "The DS RRset uses a digest type unknown to validators.",
            DnskeyMissingFromServers => "A DNSKEY was returned by some authoritative servers but not others.",
            DnskeyInconsistentRrset => "Authoritative servers return inconsistent DNSKEY RRsets.",
            RevokedKeyInUse => "A DNSKEY with the REVOKE flag set is still being used to authenticate zone data.",
            DsReferencesRevokedKey => "A DS record in the parent references a DNSKEY carrying the REVOKE flag.",
            DnskeyRevokedNoOtherSep => "The zone's only SEP key is revoked; no usable secure entry point remains.",
            KeyLengthTooShort => "The DNSKEY's key length is below the accepted minimum for its algorithm.",
            KeyLengthInvalidForAlgorithm => "The DNSKEY's key length is not valid for its algorithm.",
            DsAlgorithmWithoutRrsig => "The DS RRset included an algorithm, but no RRSIG with that algorithm covering the RRset was returned.",
            DnskeyAlgorithmWithoutRrsig => "The DNSKEY RRset includes an algorithm with which no returned RRset is signed.",
            RrsigAlgorithmWithoutDnskey => "RRSIGs use an algorithm for which the zone publishes no DNSKEY.",
            RrsigMissing => "No RRSIG covering the RRset was returned in the response.",
            RrsigMissingFromServers => "RRSIGs covering the RRset were returned by some servers but not others.",
            RrsigMissingForDnskey => "The DNSKEY RRset is not covered by any RRSIG.",
            RrsigExpired => "The RRSIG's expiration time has passed.",
            RrsigInvalid => "The cryptographic signature of the RRSIG does not verify.",
            RrsigInvalidRdata => "The RRSIG RDATA is malformed or self-inconsistent.",
            RrsigUnknownKeyTag => "The RRSIG's key tag matches no DNSKEY published by the zone.",
            RrsigSignerMismatch => "The RRSIG's signer name is not the zone that owns the RRset.",
            RrsigNotYetValid => "The RRSIG's inception time is in the future.",
            RrsigLabelsExceedOwner => "The RRSIG Labels field exceeds the number of labels in the owner name.",
            RrsigBadLength => "The signature length is not valid for the signing algorithm.",
            OriginalTtlExceeded => "The Original TTL field of the RRSIG exceeds the TTL of the RRset it covers.",
            TtlBeyondSignatureExpiry => "The RRset TTL allows cached data to outlive the signature validity period.",
            NsecProofMissing => "The negative response from the signed zone included no NSEC proof.",
            Nsec3ProofMissing => "The negative response from the signed zone included no NSEC3 proof.",
            NsecBitmapAssertsType => "The NSEC type bitmap asserts the existence of the denied type.",
            Nsec3BitmapAssertsType => "The NSEC3 type bitmap asserts the existence of the denied type.",
            NsecCoverageBroken => "No NSEC RR covers the non-existent name (SNAME).",
            Nsec3CoverageBroken => "No NSEC3 RR covers the hashed non-existent name.",
            NsecMissingWildcardProof => "No NSEC RR proves the absence of a source of synthesis (wildcard).",
            Nsec3MissingWildcardProof => "No NSEC3 RR proves the absence of a source of synthesis (wildcard).",
            Nsec3ParamMismatch => "The NSEC3PARAM record disagrees with the parameters of the served NSEC3 records.",
            LastNsecNotApex => "The last NSEC record in the chain does not point back to the zone apex.",
            Nsec3IterationsNonzero => "The NSEC3 iteration count is greater than zero, contrary to RFC 9276.",
            Nsec3InconsistentAncestor => "Authoritative servers prove inconsistent closest enclosers for the same NXDOMAIN.",
            Nsec3NoClosestEncloser => "No NSEC3 RR matches the closest encloser required for the proof.",
            Nsec3HashInvalidLength => "An NSEC3 record carries a next-hash field of invalid length.",
            Nsec3OwnerNotBase32 => "An NSEC3 owner name is not a valid base32hex-encoded hash.",
            Nsec3OptOutViolation => "Opt-out flags are set inconsistently across the NSEC3 chain.",
            Nsec3UnsupportedAlgorithm => "The NSEC3 records use a hash algorithm validators do not support.",
            ValidationBudgetExceeded => "Validating the zone's responses required more signature/NSEC3 work than the per-zone budget allows; analysis was cut short.",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ident())
    }
}

/// Advisory ("SHOULD"-level) findings. The paper's analysis *excludes*
/// these from the error set (§3.1: only MUST violations and
/// SERVFAIL-capable conditions count); grok still surfaces them the way
/// DNSViz prints warnings, and they never affect the snapshot status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WarningCode {
    /// NSEC3 salt is non-empty (RFC 9276 §3.1 SHOULD).
    Nsec3SaltPresent,
    /// RRSIG validity window is shorter than two days: operationally risky.
    ShortSignatureLifetime,
    /// The DNSKEY RRset carries only one key: no KSK/ZSK separation.
    SingleKeyZone,
    /// DS published with the deprecated SHA-1 digest (RFC 8624 SHOULD NOT).
    Sha1DsDigest,
}

impl WarningCode {
    pub const ALL: [WarningCode; 4] = [
        WarningCode::Nsec3SaltPresent,
        WarningCode::ShortSignatureLifetime,
        WarningCode::SingleKeyZone,
        WarningCode::Sha1DsDigest,
    ];

    /// Human-readable message.
    pub fn message(self) -> &'static str {
        match self {
            WarningCode::Nsec3SaltPresent => {
                "The salt value for NSEC3 should be empty to conform with RFC 9276 §3.1."
            }
            WarningCode::ShortSignatureLifetime => {
                "The RRSIG validity window is very short; re-signing lapses will break validation quickly."
            }
            WarningCode::SingleKeyZone => {
                "The zone publishes a single DNSKEY; separating KSK and ZSK eases rollovers."
            }
            WarningCode::Sha1DsDigest => {
                "The DS record uses the SHA-1 digest, which RFC 8624 recommends against."
            }
        }
    }
}

impl fmt::Display for WarningCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn exactly_47_codes() {
        let set: BTreeSet<_> = ErrorCode::ALL.iter().collect();
        assert_eq!(set.len(), 47);
    }

    #[test]
    fn exactly_26_subcategories_all_used() {
        let used: BTreeSet<Subcategory> = ErrorCode::ALL.iter().map(|c| c.subcategory()).collect();
        assert_eq!(used.len(), 26);
        assert_eq!(Subcategory::ALL.len(), 26);
        for s in Subcategory::ALL {
            assert!(used.contains(&s), "subcategory {s} has no codes");
        }
    }

    #[test]
    fn eight_categories_all_used() {
        let used: BTreeSet<Category> = Subcategory::ALL.iter().map(|s| s.category()).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn markers_match_table3() {
        assert_eq!(Subcategory::InvalidDigest.marker(), Some(1));
        assert_eq!(Subcategory::IncompleteAlgorithmSetup.marker(), Some(2));
        assert_eq!(Subcategory::InconsistentDnskey.marker(), Some(3));
        assert_eq!(Subcategory::ExpiredSignature.marker(), Some(4));
        assert_eq!(Subcategory::MissingKskForAlgorithm.marker(), Some(5));
        assert_eq!(Subcategory::InvalidSignature.marker(), Some(6));
        assert_eq!(Subcategory::MissingNonexistenceProof.marker(), Some(7));
        assert_eq!(Subcategory::OriginalTtlExceedsRrsetTtl.marker(), Some(8));
        assert_eq!(Subcategory::NonzeroIterationCount.marker(), Some(9));
        let markers: BTreeSet<u8> = Subcategory::ALL.iter().filter_map(|s| s.marker()).collect();
        assert_eq!(markers.len(), 9);
    }

    #[test]
    fn nzic_is_not_critical_expired_is() {
        assert!(!ErrorCode::Nsec3IterationsNonzero.is_critical());
        assert!(ErrorCode::RrsigExpired.is_critical());
        assert!(ErrorCode::NoSecureEntryPoint.is_critical());
        assert!(!ErrorCode::OriginalTtlExceeded.is_critical());
    }

    #[test]
    fn unreplicable_set_is_small() {
        let unrep: Vec<_> = ErrorCode::ALL.iter().filter(|c| !c.replicable()).collect();
        assert_eq!(unrep.len(), 4);
    }

    #[test]
    fn budget_extension_code_stays_outside_table3() {
        // The KeyTrap-defense code is an extension: the paper's registry
        // counts (47 codes, 26 subcategories) must not move.
        let c = ErrorCode::ValidationBudgetExceeded;
        assert!(!ErrorCode::ALL.contains(&c));
        assert!(!Subcategory::ALL.contains(&c.subcategory()));
        assert_eq!(c.subcategory(), Subcategory::ExcessiveValidationWork);
        assert_eq!(c.category(), Category::Signature);
        assert!(
            c.is_critical(),
            "a budget trip means validation cannot finish"
        );
        assert!(c.replicable(), "the attack corpus replicates it locally");
        assert!(!c.evidence_is_absence());
        assert_eq!(c.subcategory().marker(), None);
        assert!(!c.message().is_empty());
    }

    #[test]
    fn every_code_has_message_and_ident() {
        for c in ErrorCode::ALL {
            assert!(!c.message().is_empty());
            assert!(!c.ident().is_empty());
            // Category consistency.
            assert_eq!(c.subcategory().category(), c.category());
        }
    }
}
