//! A validating stub resolver: answers a single query with the §2.2
//! semantics — `Secure` (AD bit set), `Insecure` (plain DNS), or `Bogus`
//! (SERVFAIL with an RFC 8914 Extended DNS Error). Where `grok` is a
//! diagnostic that reports *everything*, the resolver makes the one
//! resolution decision an end user experiences.

use serde::{Deserialize, Serialize};

use ddx_dns::{Name, Rcode, Record, RrType};
use ddx_server::{Network, ServerId};

use crate::ede::{ede_for, Ede};
use crate::grok::grok;
use crate::probe::{probe, ProbeConfig};
use crate::status::SnapshotStatus;

/// The validation state of an answer (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationState {
    Secure,
    Insecure,
    Bogus,
}

/// What the resolver hands back to the client.
#[derive(Debug, Clone)]
pub struct Resolution {
    pub rcode: Rcode,
    /// Authentic-data bit (set only for Secure answers).
    pub ad: bool,
    pub state: ValidationState,
    pub answers: Vec<Record>,
    /// The EDE attached to a SERVFAIL, if any.
    pub ede: Option<Ede>,
}

/// How a resolver treats NSEC3 iteration counts above its limit — the
/// implementation-dependent behaviour the paper's footnote 2 highlights
/// (RFC 9276 §3.2 allows returning insecure; "a minority of resolvers
/// treat nonzero NSEC3 iteration counts as fatal").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Nsec3IterationPolicy {
    /// Validate regardless of the iteration count (most resolvers).
    #[default]
    Tolerate,
    /// Above `limit`, treat the zone's data as insecure (RFC 9276 §3.2,
    /// e.g. Unbound/BIND with default limits).
    InsecureAbove(u16),
    /// Above `limit`, fail validation outright (the strict minority).
    FatalAbove(u16),
}

/// Resolver configuration: the local trust anchor.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    pub anchor_zone: Name,
    pub anchor_servers: Vec<ServerId>,
    /// Zone hints (same semantics as [`ProbeConfig::hints`]).
    pub hints: Vec<(Name, Vec<ServerId>)>,
    /// NSEC3 iteration handling (paper §3.2.1 footnote 2).
    pub nsec3_policy: Nsec3IterationPolicy,
}

/// Resolves `qname`/`qtype` at time `now` with full DNSSEC validation.
pub fn resolve_validating(
    net: &dyn Network,
    cfg: &ResolverConfig,
    qname: &Name,
    qtype: RrType,
    now: u32,
) -> Resolution {
    let probe_cfg = ProbeConfig {
        anchor_zone: cfg.anchor_zone.clone(),
        anchor_servers: cfg.anchor_servers.clone(),
        query_domain: qname.clone(),
        target_types: vec![qtype],
        time: now,
        retry: crate::probe::RetryPolicy::default(),
        hints: cfg.hints.clone(),
    };
    let result = probe(net, &probe_cfg);
    let report = grok(&result);

    // NSEC3 iteration policy (footnote 2): the observed iteration count
    // comes straight out of the NZIC finding's typed payload.
    let nzic_iterations: Option<u16> = report
        .errors()
        .find(|e| e.code == crate::codes::ErrorCode::Nsec3IterationsNonzero)
        .and_then(|e| match e.detail {
            crate::grok::ErrorDetail::Nsec3Iterations { iterations } => Some(iterations),
            _ => None,
        });

    // Extract the answers from the first responsive query-zone server.
    let answers: Vec<Record> = result
        .query_zone()
        .and_then(|z| {
            z.servers.iter().find(|s| s.responsive).and_then(|s| {
                s.answers
                    .iter()
                    .find(|(t, _)| *t == qtype)
                    .and_then(|(_, m)| m.as_ref())
                    .map(|m| m.answers.clone())
            })
        })
        .unwrap_or_default();
    let positive_rcode = if answers.is_empty() {
        // NODATA or NXDOMAIN at the leaf; surface whatever the server said.
        result
            .query_zone()
            .and_then(|z| z.servers.iter().find(|s| s.responsive))
            .and_then(|s| s.answers.first().and_then(|(_, m)| m.as_ref()))
            .map(|m| m.rcode)
            .unwrap_or(Rcode::NoError)
    } else {
        Rcode::NoError
    };

    // Apply the iteration policy before the standard mapping.
    if let Some(iters) = nzic_iterations {
        match cfg.nsec3_policy {
            Nsec3IterationPolicy::Tolerate => {}
            Nsec3IterationPolicy::InsecureAbove(limit) if iters > limit => {
                if matches!(report.status, SnapshotStatus::Sv | SnapshotStatus::Svm) {
                    return Resolution {
                        rcode: positive_rcode,
                        ad: false,
                        state: ValidationState::Insecure,
                        answers,
                        ede: None,
                    };
                }
            }
            Nsec3IterationPolicy::FatalAbove(limit) if iters > limit => {
                return Resolution {
                    rcode: Rcode::ServFail,
                    ad: false,
                    state: ValidationState::Bogus,
                    answers: Vec::new(),
                    ede: Some(crate::ede::Ede::UnsupportedNsec3Iterations),
                };
            }
            _ => {}
        }
    }

    match report.status {
        SnapshotStatus::Sv | SnapshotStatus::Svm => Resolution {
            rcode: positive_rcode,
            ad: true,
            state: ValidationState::Secure,
            answers,
            ede: None,
        },
        SnapshotStatus::Is => Resolution {
            rcode: positive_rcode,
            ad: false,
            state: ValidationState::Insecure,
            answers,
            ede: None,
        },
        SnapshotStatus::Sb => {
            // Pick the EDE of the most severe (first critical) error.
            let ede = report
                .errors()
                .find(|e| e.critical)
                .or_else(|| report.errors().next())
                .map(|e| ede_for(e.code));
            Resolution {
                rcode: Rcode::ServFail,
                ad: false,
                state: ValidationState::Bogus,
                answers: Vec::new(),
                ede,
            }
        }
        SnapshotStatus::Lm | SnapshotStatus::Ic => Resolution {
            rcode: Rcode::ServFail,
            ad: false,
            state: ValidationState::Bogus,
            answers: Vec::new(),
            ede: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;
    use ddx_dnssec::{resign_rrset, KeyRole, SignOptions};
    use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

    const NOW: u32 = 1_000_000;

    fn sandbox() -> Sandbox {
        build_sandbox(
            &[
                ZoneSpec::conventional(name("a.com")),
                ZoneSpec::conventional(name("par.a.com")),
            ],
            NOW,
            17,
        )
    }

    fn cfg(sb: &Sandbox) -> ResolverConfig {
        ResolverConfig {
            anchor_zone: sb.anchor().apex.clone(),
            anchor_servers: sb.anchor().servers.clone(),
            hints: sb
                .zones
                .iter()
                .map(|z| (z.apex.clone(), z.servers.clone()))
                .collect(),
            nsec3_policy: Nsec3IterationPolicy::Tolerate,
        }
    }

    #[test]
    fn secure_answer_sets_ad() {
        let sb = sandbox();
        let r = resolve_validating(
            &sb.testbed,
            &cfg(&sb),
            &name("www.par.a.com"),
            RrType::A,
            NOW,
        );
        assert_eq!(r.state, ValidationState::Secure);
        assert!(r.ad);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.answers.iter().any(|rec| rec.rtype() == RrType::A));
        assert!(r.ede.is_none());
    }

    #[test]
    fn unsigned_delegation_is_insecure() {
        let mut sb = sandbox();
        sb.set_ds(&name("par.a.com"), vec![], NOW);
        let r = resolve_validating(
            &sb.testbed,
            &cfg(&sb),
            &name("www.par.a.com"),
            RrType::A,
            NOW,
        );
        assert_eq!(r.state, ValidationState::Insecure);
        assert!(!r.ad);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(!r.answers.is_empty(), "insecure still resolves");
    }

    #[test]
    fn expired_signature_is_bogus_with_ede7() {
        let mut sb = sandbox();
        let apex = name("par.a.com");
        let zsk = sb.zone(&apex).unwrap().ring.active(KeyRole::Zsk, NOW)[0].clone();
        let www = name("www.par.a.com");
        sb.testbed.mutate_zone_everywhere(&apex, |zone| {
            resign_rrset(
                zone,
                &www,
                RrType::A,
                &zsk,
                SignOptions {
                    inception: 0,
                    expiration: NOW - 1,
                },
            );
        });
        let r = resolve_validating(&sb.testbed, &cfg(&sb), &www, RrType::A, NOW);
        assert_eq!(r.state, ValidationState::Bogus);
        assert_eq!(r.rcode, Rcode::ServFail);
        assert!(r.answers.is_empty(), "bogus answers are withheld");
        assert_eq!(r.ede.map(|e| e.code()), Some(7));
    }

    #[test]
    fn nsec3_iteration_policies_differ_per_resolver() {
        // The same NZIC zone (150 iterations) under the three policies of
        // footnote 2: tolerated / downgraded to insecure / fatal.
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.nsec3 = Some(ddx_dnssec::Nsec3Config {
            iterations: 150,
            ..Default::default()
        });
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 19);
        let mut rcfg = cfg(&sb);
        let q = name("www.par.a.com");

        rcfg.nsec3_policy = Nsec3IterationPolicy::Tolerate;
        let r = resolve_validating(&sb.testbed, &rcfg, &q, RrType::A, NOW);
        assert_eq!(r.state, ValidationState::Secure);

        rcfg.nsec3_policy = Nsec3IterationPolicy::InsecureAbove(100);
        let r = resolve_validating(&sb.testbed, &rcfg, &q, RrType::A, NOW);
        assert_eq!(r.state, ValidationState::Insecure);
        assert!(!r.answers.is_empty(), "insecure still resolves");

        rcfg.nsec3_policy = Nsec3IterationPolicy::FatalAbove(100);
        let r = resolve_validating(&sb.testbed, &rcfg, &q, RrType::A, NOW);
        assert_eq!(r.state, ValidationState::Bogus);
        assert_eq!(r.ede.map(|e| e.code()), Some(27));

        // Below the limit nothing changes.
        rcfg.nsec3_policy = Nsec3IterationPolicy::InsecureAbove(200);
        let r = resolve_validating(&sb.testbed, &rcfg, &q, RrType::A, NOW);
        assert_eq!(r.state, ValidationState::Secure);
    }

    #[test]
    fn nzic_is_tolerated() {
        // Per the paper (§3.2.1 footnote 2), most resolvers tolerate NZIC:
        // the zone validates with the misconfiguration flagged.
        let mut leaf = ZoneSpec::conventional(name("par.a.com"));
        leaf.nsec3 = Some(ddx_dnssec::Nsec3Config {
            iterations: 50,
            ..Default::default()
        });
        let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com")), leaf], NOW, 18);
        let r = resolve_validating(
            &sb.testbed,
            &cfg(&sb),
            &name("www.par.a.com"),
            RrType::A,
            NOW,
        );
        assert_eq!(r.state, ValidationState::Secure);
        assert!(r.ad);
    }
}
