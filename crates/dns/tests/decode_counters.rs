//! Exact accounting for the `dns.decode.*` / `dns.view.to_owned` counters.
//!
//! Deliberately a single `#[test]` in its own integration binary: the
//! counters are process-global, and any concurrently running decode (every
//! other test decodes messages) would make exact delta assertions racy.

use ddx_dns::{wire, Message, MessageView, RrType};

#[test]
fn decode_counters_account_exactly() {
    let messages = ddx_obs::counter("dns.decode.messages", &[]);
    let bytes_ctr = ddx_obs::counter("dns.decode.bytes", &[]);
    let rejects = ddx_obs::counter("dns.decode.rejects", &[]);
    let to_owned = ddx_obs::counter("dns.view.to_owned", &[]);

    let query = Message::query(42, "www.example.com".parse().unwrap(), RrType::A);
    let encoded = wire::encode(&query);

    let (m0, b0, r0, t0) = (
        messages.get(),
        bytes_ctr.get(),
        rejects.get(),
        to_owned.get(),
    );

    // One owned decode: messages +1, bytes +len, nothing else.
    wire::decode(&encoded).expect("decodes");
    assert_eq!(messages.get(), m0 + 1);
    assert_eq!(bytes_ctr.get(), b0 + encoded.len() as u64);
    assert_eq!(rejects.get(), r0);
    assert_eq!(to_owned.get(), t0);

    // One view parse: same accounting — a view parse is a decode.
    let view = MessageView::parse(&encoded).expect("parses");
    assert_eq!(messages.get(), m0 + 2);
    assert_eq!(bytes_ctr.get(), b0 + 2 * encoded.len() as u64);
    assert_eq!(rejects.get(), r0);
    assert_eq!(to_owned.get(), t0);

    // Lazy accessors are free: walking the view moves no counter.
    let _ = view.question().expect("question").qname().label_count();
    assert_eq!(messages.get(), m0 + 2);
    assert_eq!(to_owned.get(), t0);

    // Bridging to an owned message is counted — and only on the
    // to_owned counter, not as a fresh decode.
    let owned = view.to_owned();
    assert_eq!(owned, wire::decode(&encoded).expect("decodes"));
    assert_eq!(to_owned.get(), t0 + 1);
    assert_eq!(messages.get(), m0 + 3, "the comparison decode counts");
    assert_eq!(rejects.get(), r0);

    // Rejections: both paths bump rejects, never messages/bytes.
    let (m1, b1, r1) = (messages.get(), bytes_ctr.get(), rejects.get());
    let truncated = &encoded[..encoded.len() - 3];
    assert!(wire::decode(truncated).is_err());
    assert!(MessageView::parse(truncated).is_err());
    assert_eq!(rejects.get(), r1 + 2);
    assert_eq!(messages.get(), m1);
    assert_eq!(bytes_ctr.get(), b1);
}
