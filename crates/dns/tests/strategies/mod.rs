//! Shared proptest strategies and deterministic substrates for the wire
//! codec test suites (`prop_roundtrip`, `view_owned_equivalence`).
//!
//! Not a test target itself: each integration test pulls this in with
//! `mod strategies;`.

#![allow(dead_code)]

use proptest::prelude::*;

use ddx_dns::{
    Dnskey, Ds, Edns, Message, Name, Nsec, Nsec3, Nsec3Param, RData, Rcode, Record, RrType, Rrsig,
    Soa, TypeBitmap,
};

pub fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

pub fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("valid name"))
}

pub fn arb_bitmap() -> impl Strategy<Value = TypeBitmap> {
    proptest::collection::vec(0u16..300, 0..8)
        .prop_map(|codes| TypeBitmap::from_types(codes.into_iter().map(RrType::from_code)))
}

pub fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[a-zA-Z0-9 ]{0,40}", 1..4).prop_map(RData::Txt),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(flags, protocol, algorithm, public_key)| {
                RData::Dnskey(Dnskey {
                    flags,
                    protocol,
                    algorithm,
                    public_key,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Ds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            }),
        (
            0u16..=300,
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            arb_name(),
            proptest::collection::vec(any::<u8>(), 1..80)
        )
            .prop_map(
                |(
                    tc,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature,
                )| {
                    RData::Rrsig(Rrsig {
                        type_covered: RrType::from_code(tc),
                        algorithm,
                        labels,
                        original_ttl,
                        expiration,
                        inception,
                        key_tag,
                        signer_name,
                        signature,
                    })
                }
            ),
        (arb_name(), arb_bitmap()).prop_map(|(next_name, type_bitmap)| RData::Nsec(Nsec {
            next_name,
            type_bitmap
        })),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16),
            proptest::collection::vec(any::<u8>(), 1..33),
            arb_bitmap()
        )
            .prop_map(
                |(hash_algorithm, flags, iterations, salt, next_hashed_owner, type_bitmap)| {
                    RData::Nsec3(Nsec3 {
                        hash_algorithm,
                        flags,
                        iterations,
                        salt,
                        next_hashed_owner,
                        type_bitmap,
                    })
                }
            ),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(hash_algorithm, flags, iterations, salt)| {
                RData::Nsec3Param(Nsec3Param {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Cds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            }),
    ]
}

pub fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

pub fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        0u16..300,
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        any::<bool>(),
        0u8..6,
        proptest::option::of((512u16..4096, any::<bool>())),
    )
        .prop_map(
            |(id, qname, qtype, answers, authorities, additionals, aa, rcode, edns)| {
                let mut m = Message::query(id, qname, RrType::from_code(qtype));
                let mut m = {
                    let mut r = m.response();
                    r.flags.aa = aa;
                    r.rcode = Rcode::from_code(rcode);
                    r.answers = answers;
                    r.authorities = authorities;
                    r.additionals = additionals;
                    r.edns = edns.map(|(udp_size, dnssec_ok)| Edns {
                        udp_size,
                        dnssec_ok,
                    });
                    std::mem::swap(&mut m, &mut r);
                    m
                };
                m.flags.ra = false;
                m
            },
        )
}

/// A richly-featured response exercising compression, DNSSEC rdata, and
/// EDNS, used as the substrate for the deterministic adversarial cases.
pub fn dense_response() -> Message {
    let mut r =
        Message::query(0x4242, "www.sub.example.com".parse().unwrap(), RrType::A).response();
    r.flags.aa = true;
    r.answers.push(Record::new(
        "www.sub.example.com".parse().unwrap(),
        300,
        RData::A([192, 0, 2, 7].into()),
    ));
    r.answers.push(Record::new(
        "www.sub.example.com".parse().unwrap(),
        300,
        RData::Rrsig(Rrsig {
            type_covered: RrType::A,
            algorithm: 13,
            labels: 4,
            original_ttl: 300,
            expiration: 5_000,
            inception: 1_000,
            key_tag: 4242,
            signer_name: "sub.example.com".parse().unwrap(),
            signature: vec![7; 64],
        }),
    ));
    r.authorities.push(Record::new(
        "sub.example.com".parse().unwrap(),
        300,
        RData::Nsec(Nsec {
            next_name: "zzz.sub.example.com".parse().unwrap(),
            type_bitmap: TypeBitmap::from_types([RrType::Soa, RrType::Ns, RrType::Dnskey]),
        }),
    ));
    r.additionals.push(Record::new(
        "ns1.example.com".parse().unwrap(),
        3600,
        RData::Aaaa([0x20, 0x01, 0xd, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1].into()),
    ));
    r.edns = Some(Edns {
        udp_size: 1232,
        dnssec_ok: true,
    });
    r
}

/// Builds a 12-byte header with the given question/answer section counts.
pub fn header(qd: u16, an: u16) -> Vec<u8> {
    let mut buf = vec![0u8; 12];
    buf[4..6].copy_from_slice(&qd.to_be_bytes());
    buf[6..8].copy_from_slice(&an.to_be_bytes());
    buf
}
