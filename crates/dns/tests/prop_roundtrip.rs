//! Property-based round-trip tests: arbitrary messages survive the wire
//! codec, the decoder never panics on arbitrary bytes, and the zero-copy
//! [`MessageView`] fails closed on exactly the inputs the owned decoder
//! rejects.

mod strategies;

use proptest::prelude::*;

use ddx_dns::{wire, MessageView, RrType};
use strategies::{arb_message, arb_record, dense_response, header};

/// Both decode paths on the same bytes: accepted messages must be equal,
/// rejections must carry the same error.
fn assert_paths_agree(bytes: &[u8]) {
    let owned = wire::decode(bytes);
    let viewed = MessageView::parse(bytes).map(|v| v.to_owned());
    match (&owned, &viewed) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "accepted messages must agree"),
        (Err(a), Err(b)) => assert_eq!(a, b, "rejection errors must agree"),
        _ => panic!("paths disagree: owned={owned:?} view={viewed:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips(msg in arb_message()) {
        let bytes = wire::encode(&msg);
        let back = wire::decode(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn view_parser_never_panics_and_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        assert_paths_agree(&bytes);
    }

    #[test]
    fn decoder_tolerates_truncation(msg in arb_message(), cut in any::<proptest::sample::Index>()) {
        let bytes = wire::encode(&msg);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                // Must not panic; may or may not error — but both decode
                // paths must say the same thing.
                assert_paths_agree(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn master_line_round_trips(rec in arb_record()) {
        // TXT strings with trailing spaces and Unknown types are excluded
        // from presentation-format guarantees; the generator avoids them.
        let line = ddx_dns::record_to_line(&rec);
        let back = ddx_dns::parse_record_line(1, &line).expect("parse");
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn corrupted_encodings_never_panic(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = wire::encode(&msg);
        for (idx, mask) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask;
        }
        // Must not panic; Ok or Err are both acceptable — and identical
        // across the owned and view decode paths.
        assert_paths_agree(&bytes);
    }
}

// -------------------------------------------------- adversarial wire inputs

/// Truncation at EVERY prefix length: each strict prefix must return an
/// error — the section counts in the header promise content the buffer no
/// longer holds — and must never panic. The view parser must reject every
/// prefix with the identical error.
#[test]
fn truncation_at_every_prefix_length_errs() {
    let wire_bytes = wire::encode(&dense_response());
    assert!(wire::decode(&wire_bytes).is_ok(), "substrate must decode");
    for cut in 0..wire_bytes.len() {
        let owned = wire::decode(&wire_bytes[..cut]);
        assert!(
            owned.is_err(),
            "prefix of {cut}/{} bytes must not decode",
            wire_bytes.len()
        );
        assert_eq!(
            MessageView::parse(&wire_bytes[..cut]).err(),
            owned.err(),
            "view must reject prefix {cut} with the same error"
        );
    }
}

#[test]
fn compression_pointer_loops_rejected() {
    // Self-pointing pointer in the question name.
    let mut direct = header(1, 0);
    direct.extend_from_slice(&[0xC0, 0x0C]);
    direct.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&direct), Err(wire::WireError::BadPointer));

    // Two pointers chasing each other (12 → 14 → 12 …). The second hop is
    // a forward reference, which the decoder rejects outright.
    let mut cycle = header(1, 0);
    cycle.extend_from_slice(&[0xC0, 0x0E, 0xC0, 0x0C]);
    cycle.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&cycle), Err(wire::WireError::BadPointer));

    // A label followed by a pointer back into itself: 'a' + ptr(12) keeps
    // re-reading the same label — the backwards-only rule breaks the cycle.
    let mut relooped = header(1, 0);
    relooped.extend_from_slice(&[1, b'a', 0xC0, 0x0C]);
    relooped.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&relooped), Err(wire::WireError::BadPointer));

    // The zero-copy path fails closed on all three, identically.
    for buf in [&direct, &cycle, &relooped] {
        assert_eq!(
            MessageView::parse(buf).err(),
            Some(wire::WireError::BadPointer)
        );
    }
}

#[test]
fn overlong_names_rejected() {
    // 130 one-byte labels: 260 wire bytes, past the 255-octet name cap.
    let mut long = header(1, 0);
    for _ in 0..130 {
        long.extend_from_slice(&[1, b'x']);
    }
    long.push(0);
    long.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&long), Err(wire::WireError::BadName));

    // A label claiming 64 bytes: the 0x40 length prefix is neither a valid
    // label length nor a compression pointer.
    let mut fat_label = header(1, 0);
    fat_label.push(0x40);
    fat_label.extend_from_slice(&[b'y'; 64]);
    fat_label.push(0);
    fat_label.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&fat_label), Err(wire::WireError::BadName));

    for buf in [&long, &fat_label] {
        assert_eq!(
            MessageView::parse(buf).err(),
            Some(wire::WireError::BadName)
        );
    }
}

/// A record whose RDLENGTH under-declares its content must not silently
/// parse fields out of the neighbouring bytes (the pre-fix decoder read an
/// A address straight past the declared window).
#[test]
fn rdata_overrunning_declared_length_rejected() {
    let mut buf = header(0, 1);
    buf.push(0); // root owner
    buf.extend_from_slice(&RrType::A.code().to_be_bytes());
    buf.extend_from_slice(&[0, 1]); // class IN
    buf.extend_from_slice(&[0, 0, 0, 60]); // ttl
    buf.extend_from_slice(&[0, 2]); // RDLENGTH=2, but an A needs 4
    buf.extend_from_slice(&[192, 0, 2, 1]); // 4 bytes actually present
    assert_eq!(
        wire::decode(&buf),
        Err(wire::WireError::BadRdata(RrType::A.code()))
    );
    assert_eq!(
        MessageView::parse(&buf).err(),
        Some(wire::WireError::BadRdata(RrType::A.code()))
    );
}

/// Same shape for a name-bearing RDATA: an NS whose name extends past the
/// declared window into the following record.
#[test]
fn name_rdata_overrunning_declared_length_rejected() {
    let mut buf = header(0, 1);
    buf.push(0); // root owner
    buf.extend_from_slice(&RrType::Ns.code().to_be_bytes());
    buf.extend_from_slice(&[0, 1]);
    buf.extend_from_slice(&[0, 0, 0, 60]);
    buf.extend_from_slice(&[0, 3]); // RDLENGTH=3: cuts the name mid-label
    buf.extend_from_slice(&[3, b'n', b's', b'1', 0]); // actual name is 5 bytes
    assert_eq!(
        wire::decode(&buf),
        Err(wire::WireError::BadRdata(RrType::Ns.code()))
    );
    assert_eq!(
        MessageView::parse(&buf).err(),
        Some(wire::WireError::BadRdata(RrType::Ns.code()))
    );
}

/// Builds a message whose second record's owner name is a pointer chain of
/// `chain` backwards hops (plus the owner pointer itself), with the chain
/// bytes hidden inside an unknown-type record's raw RDATA so every pointer
/// legally targets earlier bytes.
fn message_with_pointer_chain(chain: usize) -> Vec<u8> {
    let mut buf = header(1, 2);
    // Question: root name, type A, class IN.
    buf.extend_from_slice(&[0, 0, 1, 0, 1]);
    // Record 1: root owner, unknown type 999 (raw-skipped rdata), class IN,
    // ttl 0, RDLENGTH = 1 root terminator + 2 bytes per chain pointer.
    buf.push(0);
    buf.extend_from_slice(&999u16.to_be_bytes());
    buf.extend_from_slice(&[0, 1]);
    buf.extend_from_slice(&[0, 0, 0, 0]);
    buf.extend_from_slice(&((1 + 2 * chain) as u16).to_be_bytes());
    let chain_start = buf.len();
    buf.push(0); // chain terminator: root label
    for i in 0..chain {
        // Pointer i targets the previous chain entry — always backwards.
        let target = if i == 0 {
            chain_start
        } else {
            chain_start + 1 + 2 * (i - 1)
        };
        buf.push(0xC0 | ((target >> 8) as u8));
        buf.push(target as u8);
    }
    let chain_head = buf.len() - 2;
    // Record 2: owner = pointer to the chain head, type A, class IN.
    buf.push(0xC0 | ((chain_head >> 8) as u8));
    buf.push(chain_head as u8);
    buf.extend_from_slice(&[0, 1, 0, 1]);
    buf.extend_from_slice(&[0, 0, 0, 0]);
    buf.extend_from_slice(&[0, 4, 192, 0, 2, 1]);
    buf
}

/// A pointer chain longer than [`wire::MAX_POINTER_CHASES`] hops is cut off
/// by the explicit chase budget — on both decode paths — even though every
/// hop is individually backwards (so the backwards-only rule alone would
/// admit it).
#[test]
fn pointer_chains_past_the_chase_budget_rejected() {
    // Owner pointer + MAX chain pointers = MAX + 1 jumps: one past budget.
    let over = message_with_pointer_chain(wire::MAX_POINTER_CHASES);
    assert_eq!(wire::decode(&over), Err(wire::WireError::BadPointer));
    assert_eq!(
        MessageView::parse(&over).err(),
        Some(wire::WireError::BadPointer)
    );

    // One hop fewer sits exactly at the budget and must decode on both
    // paths, proving the cutoff is the budget and not the chain shape.
    let at_budget = message_with_pointer_chain(wire::MAX_POINTER_CHASES - 1);
    let owned = wire::decode(&at_budget).expect("budget-deep chain decodes");
    let view = MessageView::parse(&at_budget).expect("view accepts the same chain");
    assert_eq!(view.to_owned(), owned);
    assert!(owned.answers[1].name.is_root());
}

/// Bytes past the end of the last section are an error, not silently
/// ignored — on both decode paths, with the same error.
#[test]
fn trailing_garbage_rejected_on_both_paths() {
    let mut bytes = wire::encode(&dense_response());
    assert!(wire::decode(&bytes).is_ok());
    assert!(MessageView::parse(&bytes).is_ok());
    bytes.push(0);
    assert_eq!(wire::decode(&bytes), Err(wire::WireError::TrailingGarbage));
    assert_eq!(
        MessageView::parse(&bytes).err(),
        Some(wire::WireError::TrailingGarbage)
    );
}
