//! Property-based round-trip tests: arbitrary messages survive the wire
//! codec, and the decoder never panics on arbitrary bytes.

use proptest::prelude::*;

use ddx_dns::{
    wire, Dnskey, Ds, Edns, Message, Name, Nsec, Nsec3, Nsec3Param, RData, Rcode, Record, RrType,
    Rrsig, Soa, TypeBitmap,
};

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("valid name"))
}

fn arb_bitmap() -> impl Strategy<Value = TypeBitmap> {
    proptest::collection::vec(0u16..300, 0..8)
        .prop_map(|codes| TypeBitmap::from_types(codes.into_iter().map(RrType::from_code)))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[a-zA-Z0-9 ]{0,40}", 1..4).prop_map(RData::Txt),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(flags, protocol, algorithm, public_key)| {
                RData::Dnskey(Dnskey {
                    flags,
                    protocol,
                    algorithm,
                    public_key,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Ds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            }),
        (
            0u16..=300,
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            arb_name(),
            proptest::collection::vec(any::<u8>(), 1..80)
        )
            .prop_map(
                |(
                    tc,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature,
                )| {
                    RData::Rrsig(Rrsig {
                        type_covered: RrType::from_code(tc),
                        algorithm,
                        labels,
                        original_ttl,
                        expiration,
                        inception,
                        key_tag,
                        signer_name,
                        signature,
                    })
                }
            ),
        (arb_name(), arb_bitmap()).prop_map(|(next_name, type_bitmap)| RData::Nsec(Nsec {
            next_name,
            type_bitmap
        })),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16),
            proptest::collection::vec(any::<u8>(), 1..33),
            arb_bitmap()
        )
            .prop_map(
                |(hash_algorithm, flags, iterations, salt, next_hashed_owner, type_bitmap)| {
                    RData::Nsec3(Nsec3 {
                        hash_algorithm,
                        flags,
                        iterations,
                        salt,
                        next_hashed_owner,
                        type_bitmap,
                    })
                }
            ),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(hash_algorithm, flags, iterations, salt)| {
                RData::Nsec3Param(Nsec3Param {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Cds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        0u16..300,
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        any::<bool>(),
        0u8..6,
        proptest::option::of((512u16..4096, any::<bool>())),
    )
        .prop_map(
            |(id, qname, qtype, answers, authorities, additionals, aa, rcode, edns)| {
                let mut m = Message::query(id, qname, RrType::from_code(qtype));
                let mut m = {
                    let mut r = m.response();
                    r.flags.aa = aa;
                    r.rcode = Rcode::from_code(rcode);
                    r.answers = answers;
                    r.authorities = authorities;
                    r.additionals = additionals;
                    r.edns = edns.map(|(udp_size, dnssec_ok)| Edns {
                        udp_size,
                        dnssec_ok,
                    });
                    std::mem::swap(&mut m, &mut r);
                    m
                };
                m.flags.ra = false;
                m
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips(msg in arb_message()) {
        let bytes = wire::encode(&msg);
        let back = wire::decode(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn decoder_tolerates_truncation(msg in arb_message(), cut in any::<proptest::sample::Index>()) {
        let bytes = wire::encode(&msg);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                // Must not panic; may or may not error.
                let _ = wire::decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn master_line_round_trips(rec in arb_record()) {
        // TXT strings with trailing spaces and Unknown types are excluded
        // from presentation-format guarantees; the generator avoids them.
        let line = ddx_dns::record_to_line(&rec);
        let back = ddx_dns::parse_record_line(1, &line).expect("parse");
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn corrupted_encodings_never_panic(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = wire::encode(&msg);
        for (idx, mask) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask;
        }
        // Must not panic; Ok or Err are both acceptable.
        let _ = wire::decode(&bytes);
    }
}

// -------------------------------------------------- adversarial wire inputs

/// A richly-featured response exercising compression, DNSSEC rdata, and
/// EDNS, used as the substrate for the deterministic adversarial cases.
fn dense_response() -> Message {
    let mut r =
        Message::query(0x4242, "www.sub.example.com".parse().unwrap(), RrType::A).response();
    r.flags.aa = true;
    r.answers.push(Record::new(
        "www.sub.example.com".parse().unwrap(),
        300,
        RData::A([192, 0, 2, 7].into()),
    ));
    r.answers.push(Record::new(
        "www.sub.example.com".parse().unwrap(),
        300,
        RData::Rrsig(Rrsig {
            type_covered: RrType::A,
            algorithm: 13,
            labels: 4,
            original_ttl: 300,
            expiration: 5_000,
            inception: 1_000,
            key_tag: 4242,
            signer_name: "sub.example.com".parse().unwrap(),
            signature: vec![7; 64],
        }),
    ));
    r.authorities.push(Record::new(
        "sub.example.com".parse().unwrap(),
        300,
        RData::Nsec(Nsec {
            next_name: "zzz.sub.example.com".parse().unwrap(),
            type_bitmap: TypeBitmap::from_types([RrType::Soa, RrType::Ns, RrType::Dnskey]),
        }),
    ));
    r.additionals.push(Record::new(
        "ns1.example.com".parse().unwrap(),
        3600,
        RData::Aaaa([0x20, 0x01, 0xd, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1].into()),
    ));
    r.edns = Some(Edns {
        udp_size: 1232,
        dnssec_ok: true,
    });
    r
}

/// Truncation at EVERY prefix length: each strict prefix must return an
/// error — the section counts in the header promise content the buffer no
/// longer holds — and must never panic.
#[test]
fn truncation_at_every_prefix_length_errs() {
    let wire_bytes = wire::encode(&dense_response());
    assert!(wire::decode(&wire_bytes).is_ok(), "substrate must decode");
    for cut in 0..wire_bytes.len() {
        assert!(
            wire::decode(&wire_bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes must not decode",
            wire_bytes.len()
        );
    }
}

/// Builds a 12-byte header with the given section counts.
fn header(qd: u16, an: u16) -> Vec<u8> {
    let mut buf = vec![0u8; 12];
    buf[4..6].copy_from_slice(&qd.to_be_bytes());
    buf[6..8].copy_from_slice(&an.to_be_bytes());
    buf
}

#[test]
fn compression_pointer_loops_rejected() {
    // Self-pointing pointer in the question name.
    let mut direct = header(1, 0);
    direct.extend_from_slice(&[0xC0, 0x0C]);
    direct.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&direct), Err(wire::WireError::BadPointer));

    // Two pointers chasing each other (12 → 14 → 12 …). The second hop is
    // a forward reference, which the decoder rejects outright.
    let mut cycle = header(1, 0);
    cycle.extend_from_slice(&[0xC0, 0x0E, 0xC0, 0x0C]);
    cycle.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&cycle), Err(wire::WireError::BadPointer));

    // A label followed by a pointer back into itself: 'a' + ptr(12) keeps
    // re-reading the same label — the backwards-only rule breaks the cycle.
    let mut relooped = header(1, 0);
    relooped.extend_from_slice(&[1, b'a', 0xC0, 0x0C]);
    relooped.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&relooped), Err(wire::WireError::BadPointer));
}

#[test]
fn overlong_names_rejected() {
    // 130 one-byte labels: 260 wire bytes, past the 255-octet name cap.
    let mut long = header(1, 0);
    for _ in 0..130 {
        long.extend_from_slice(&[1, b'x']);
    }
    long.push(0);
    long.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&long), Err(wire::WireError::BadName));

    // A label claiming 64 bytes: the 0x40 length prefix is neither a valid
    // label length nor a compression pointer.
    let mut fat_label = header(1, 0);
    fat_label.push(0x40);
    fat_label.extend_from_slice(&[b'y'; 64]);
    fat_label.push(0);
    fat_label.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(wire::decode(&fat_label), Err(wire::WireError::BadName));
}

/// A record whose RDLENGTH under-declares its content must not silently
/// parse fields out of the neighbouring bytes (the pre-fix decoder read an
/// A address straight past the declared window).
#[test]
fn rdata_overrunning_declared_length_rejected() {
    let mut buf = header(0, 1);
    buf.push(0); // root owner
    buf.extend_from_slice(&RrType::A.code().to_be_bytes());
    buf.extend_from_slice(&[0, 1]); // class IN
    buf.extend_from_slice(&[0, 0, 0, 60]); // ttl
    buf.extend_from_slice(&[0, 2]); // RDLENGTH=2, but an A needs 4
    buf.extend_from_slice(&[192, 0, 2, 1]); // 4 bytes actually present
    assert_eq!(
        wire::decode(&buf),
        Err(wire::WireError::BadRdata(RrType::A.code()))
    );
}

/// Same shape for a name-bearing RDATA: an NS whose name extends past the
/// declared window into the following record.
#[test]
fn name_rdata_overrunning_declared_length_rejected() {
    let mut buf = header(0, 1);
    buf.push(0); // root owner
    buf.extend_from_slice(&RrType::Ns.code().to_be_bytes());
    buf.extend_from_slice(&[0, 1]);
    buf.extend_from_slice(&[0, 0, 0, 60]);
    buf.extend_from_slice(&[0, 3]); // RDLENGTH=3: cuts the name mid-label
    buf.extend_from_slice(&[3, b'n', b's', b'1', 0]); // actual name is 5 bytes
    assert_eq!(
        wire::decode(&buf),
        Err(wire::WireError::BadRdata(RrType::Ns.code()))
    );
}
