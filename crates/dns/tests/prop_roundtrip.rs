//! Property-based round-trip tests: arbitrary messages survive the wire
//! codec, and the decoder never panics on arbitrary bytes.

use proptest::prelude::*;

use ddx_dns::{
    wire, Dnskey, Ds, Edns, Message, Name, Nsec, Nsec3, Nsec3Param, RData, Rcode, Record, RrType,
    Rrsig, Soa, TypeBitmap,
};

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("valid name"))
}

fn arb_bitmap() -> impl Strategy<Value = TypeBitmap> {
    proptest::collection::vec(0u16..300, 0..8)
        .prop_map(|codes| TypeBitmap::from_types(codes.into_iter().map(RrType::from_code)))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[a-zA-Z0-9 ]{0,40}", 1..4).prop_map(RData::Txt),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(flags, protocol, algorithm, public_key)| {
                RData::Dnskey(Dnskey {
                    flags,
                    protocol,
                    algorithm,
                    public_key,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Ds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            }),
        (
            0u16..=300,
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            arb_name(),
            proptest::collection::vec(any::<u8>(), 1..80)
        )
            .prop_map(
                |(
                    tc,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature,
                )| {
                    RData::Rrsig(Rrsig {
                        type_covered: RrType::from_code(tc),
                        algorithm,
                        labels,
                        original_ttl,
                        expiration,
                        inception,
                        key_tag,
                        signer_name,
                        signature,
                    })
                }
            ),
        (arb_name(), arb_bitmap()).prop_map(|(next_name, type_bitmap)| RData::Nsec(Nsec {
            next_name,
            type_bitmap
        })),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16),
            proptest::collection::vec(any::<u8>(), 1..33),
            arb_bitmap()
        )
            .prop_map(
                |(hash_algorithm, flags, iterations, salt, next_hashed_owner, type_bitmap)| {
                    RData::Nsec3(Nsec3 {
                        hash_algorithm,
                        flags,
                        iterations,
                        salt,
                        next_hashed_owner,
                        type_bitmap,
                    })
                }
            ),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(hash_algorithm, flags, iterations, salt)| {
                RData::Nsec3Param(Nsec3Param {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Cds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        0u16..300,
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        any::<bool>(),
        0u8..6,
        proptest::option::of((512u16..4096, any::<bool>())),
    )
        .prop_map(
            |(id, qname, qtype, answers, authorities, additionals, aa, rcode, edns)| {
                let mut m = Message::query(id, qname, RrType::from_code(qtype));
                let mut m = {
                    let mut r = m.response();
                    r.flags.aa = aa;
                    r.rcode = Rcode::from_code(rcode);
                    r.answers = answers;
                    r.authorities = authorities;
                    r.additionals = additionals;
                    r.edns = edns.map(|(udp_size, dnssec_ok)| Edns {
                        udp_size,
                        dnssec_ok,
                    });
                    std::mem::swap(&mut m, &mut r);
                    m
                };
                m.flags.ra = false;
                m
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips(msg in arb_message()) {
        let bytes = wire::encode(&msg);
        let back = wire::decode(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn decoder_tolerates_truncation(msg in arb_message(), cut in any::<proptest::sample::Index>()) {
        let bytes = wire::encode(&msg);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                // Must not panic; may or may not error.
                let _ = wire::decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn master_line_round_trips(rec in arb_record()) {
        // TXT strings with trailing spaces and Unknown types are excluded
        // from presentation-format guarantees; the generator avoids them.
        let line = ddx_dns::record_to_line(&rec);
        let back = ddx_dns::parse_record_line(1, &line).expect("parse");
        prop_assert_eq!(back, rec);
    }
}
