//! The zero-copy contract, property-tested: for every message the corpus
//! can produce, every [`MessageView`] accessor must report exactly what the
//! owned decoder materializes — and on bytes the owned decoder rejects, the
//! view parser must fail closed with the identical error.

mod strategies;

use proptest::prelude::*;

use ddx_dns::{wire, Message, MessageView, Question, Record};
use strategies::arb_message;

/// Compares every accessor of `view` against the owned decode `msg` of the
/// same bytes. This is the exhaustive bridge check: if it holds, a consumer
/// can switch any read from the owned message to the view without observing
/// a difference.
fn assert_view_matches(view: &MessageView<'_>, msg: &Message, bytes: &[u8]) {
    // Raw buffer access.
    assert_eq!(view.wire(), bytes);

    // Header.
    assert_eq!(view.id(), msg.id);
    let f = view.flags();
    assert_eq!(f.qr, msg.flags.qr);
    assert_eq!(f.aa, msg.flags.aa);
    assert_eq!(f.tc, msg.flags.tc);
    assert_eq!(f.rd, msg.flags.rd);
    assert_eq!(f.ra, msg.flags.ra);
    assert_eq!(f.ad, msg.flags.ad);
    assert_eq!(f.cd, msg.flags.cd);
    assert_eq!(view.rcode(), msg.rcode);

    // EDNS.
    assert_eq!(view.edns(), msg.edns);
    assert_eq!(view.dnssec_ok(), msg.dnssec_ok());

    // Question: NameRef equality/order-free comparison plus full
    // materialization.
    match (&view.question(), &msg.question) {
        (Some(qv), Some(q)) => {
            assert!(qv.qname().eq_name(&q.qname), "qname mismatch");
            assert_eq!(qv.qname().to_name(), q.qname);
            assert_eq!(
                qv.qname().label_count(),
                q.qname.labels().len(),
                "label count"
            );
            assert_eq!(qv.qtype(), q.qtype);
            assert_eq!(qv.qclass(), q.qclass);
            assert!(qv.matches(q));
            let rebuilt: Question = qv.to_question();
            assert_eq!(&rebuilt, q);
        }
        (None, None) => {}
        (qv, q) => panic!("question presence disagrees: view={qv:?} owned={q:?}"),
    }

    // Sections, record by record, field by field.
    let sections: [(&str, Vec<_>, &[Record]); 3] = [
        ("answers", view.answers().collect(), &msg.answers),
        (
            "authorities",
            view.authorities().collect(),
            &msg.authorities,
        ),
        (
            "additionals",
            view.additionals().collect(),
            &msg.additionals,
        ),
    ];
    for (label, viewed, owned) in sections {
        assert_eq!(viewed.len(), owned.len(), "{label}: record count");
        for (rv, rec) in viewed.iter().zip(owned) {
            assert!(rv.name().eq_name(&rec.name), "{label}: owner name");
            assert_eq!(rv.name().to_name(), rec.name, "{label}: owner name");
            assert_eq!(rv.rtype(), rec.rtype(), "{label}: rtype");
            assert_eq!(rv.class(), rec.class, "{label}: class");
            assert_eq!(rv.ttl(), rec.ttl, "{label}: ttl");
            assert_eq!(rv.rdata(), rec.rdata, "{label}: lazy rdata");
            assert_eq!(&rv.to_record(), rec, "{label}: full record bridge");
        }
    }

    // The owned bridge is byte-for-byte the owned decode.
    assert_eq!(&view.to_owned(), msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every corpus variant: parse both ways, compare every accessor.
    #[test]
    fn every_accessor_matches_owned_decode(msg in arb_message()) {
        let bytes = wire::encode(&msg);
        let owned = wire::decode(&bytes).expect("owned decode");
        let view = MessageView::parse(&bytes).expect("view parse");
        assert_view_matches(&view, &owned, &bytes);
    }

    /// Arbitrary bytes: acceptance and rejection (including the error
    /// value) must be identical across the two paths, and on acceptance
    /// every accessor must agree.
    #[test]
    fn arbitrary_bytes_agree(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match (wire::decode(&bytes), MessageView::parse(&bytes)) {
            (Ok(owned), Ok(view)) => assert_view_matches(&view, &owned, &bytes),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (owned, viewed) => {
                return Err(TestCaseError::fail(format!(
                    "paths disagree: owned={owned:?} view={viewed:?}"
                )));
            }
        }
    }

    /// Bit-flipped real encodings: a nastier error corpus than uniform
    /// random bytes, since most of the structure stays intact.
    #[test]
    fn corrupted_encodings_agree(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = wire::encode(&msg);
        for (idx, mask) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask;
        }
        match (wire::decode(&bytes), MessageView::parse(&bytes)) {
            (Ok(owned), Ok(view)) => assert_view_matches(&view, &owned, &bytes),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (owned, viewed) => {
                return Err(TestCaseError::fail(format!(
                    "paths disagree: owned={owned:?} view={viewed:?}"
                )));
            }
        }
    }

    /// Every strict prefix of a valid encoding: both paths reject, with the
    /// same error, at every cut point.
    #[test]
    fn truncations_fail_closed_identically(msg in arb_message()) {
        let bytes = wire::encode(&msg);
        for cut in 0..bytes.len() {
            let owned = wire::decode(&bytes[..cut]);
            let viewed = MessageView::parse(&bytes[..cut]).map(|v| v.to_owned());
            match (&owned, &viewed) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => {
                    return Err(TestCaseError::fail(format!(
                        "prefix {cut}: owned={owned:?} view={viewed:?}"
                    )));
                }
            }
        }
    }

    /// NameRef hashing must agree with Name hashing for every name the
    /// corpus produces, so wire-borrowed keys index the same buckets as
    /// owned keys.
    #[test]
    fn nameref_hash_matches_name_hash(msg in arb_message()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let bytes = wire::encode(&msg);
        let view = MessageView::parse(&bytes).expect("view parse");
        let Some(qv) = view.question() else { return Ok(()); };
        let owned_name = qv.qname().to_name();
        let mut h1 = DefaultHasher::new();
        owned_name.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        qv.qname().hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish());
    }
}
