//! Record types, classes, response codes, and the NSEC/NSEC3 type bitmap.

use std::fmt;

use serde::{Deserialize, Serialize};

/// DNS resource record types (the subset relevant to DNSSEC diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RrType {
    A,
    Ns,
    Cname,
    Soa,
    Mx,
    Txt,
    Aaaa,
    Ds,
    Rrsig,
    Nsec,
    Dnskey,
    Nsec3,
    Nsec3Param,
    /// Child DS (RFC 7344): the child's signal of its desired DS RRset.
    Cds,
    /// Child DNSKEY (RFC 7344).
    Cdnskey,
    /// Full zone transfer (query-only meta type, RFC 5936).
    Axfr,
    Opt,
    /// Any type we do not model explicitly.
    Unknown(u16),
}

impl RrType {
    /// IANA type code.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Ds => 43,
            RrType::Rrsig => 46,
            RrType::Nsec => 47,
            RrType::Dnskey => 48,
            RrType::Nsec3 => 50,
            RrType::Nsec3Param => 51,
            RrType::Cds => 59,
            RrType::Cdnskey => 60,
            RrType::Axfr => 252,
            RrType::Unknown(c) => c,
        }
    }

    /// Maps an IANA code back to a type.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            43 => RrType::Ds,
            46 => RrType::Rrsig,
            47 => RrType::Nsec,
            48 => RrType::Dnskey,
            50 => RrType::Nsec3,
            51 => RrType::Nsec3Param,
            59 => RrType::Cds,
            60 => RrType::Cdnskey,
            252 => RrType::Axfr,
            c => RrType::Unknown(c),
        }
    }

    /// Mnemonic used in presentation format.
    pub fn mnemonic(self) -> String {
        match self {
            RrType::A => "A".into(),
            RrType::Ns => "NS".into(),
            RrType::Cname => "CNAME".into(),
            RrType::Soa => "SOA".into(),
            RrType::Mx => "MX".into(),
            RrType::Txt => "TXT".into(),
            RrType::Aaaa => "AAAA".into(),
            RrType::Opt => "OPT".into(),
            RrType::Ds => "DS".into(),
            RrType::Rrsig => "RRSIG".into(),
            RrType::Nsec => "NSEC".into(),
            RrType::Dnskey => "DNSKEY".into(),
            RrType::Nsec3 => "NSEC3".into(),
            RrType::Nsec3Param => "NSEC3PARAM".into(),
            RrType::Cds => "CDS".into(),
            RrType::Cdnskey => "CDNSKEY".into(),
            RrType::Axfr => "AXFR".into(),
            RrType::Unknown(c) => format!("TYPE{c}"),
        }
    }

    /// True for DNSSEC meta-types that are not part of the zone's "data"
    /// (RRSIG is never itself signed; NSEC3PARAM is signed though).
    pub fn is_dnssec_meta(self) -> bool {
        matches!(self, RrType::Rrsig | RrType::Opt)
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// DNS classes. Only IN is used by the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrClass {
    In,
    Unknown(u16),
}

impl RrClass {
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Unknown(c) => c,
        }
    }

    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrClass::In,
            c => RrClass::Unknown(c),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1 plus DNSSEC practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Unknown(u8),
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(c) => c,
        }
    }

    pub fn from_code(code: u8) -> Self {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            c => Rcode::Unknown(c),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
            Rcode::Unknown(c) => return write!(f, "RCODE{c}"),
        };
        write!(f, "{s}")
    }
}

/// The type bitmap carried in NSEC and NSEC3 records (RFC 4034 §4.1.2).
///
/// Stored as a sorted, deduplicated list of type codes; wire encoding uses
/// the window-block format.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TypeBitmap {
    codes: Vec<u16>,
}

impl TypeBitmap {
    pub fn new() -> Self {
        TypeBitmap::default()
    }

    /// Builds a bitmap from an iterator of types.
    pub fn from_types<I: IntoIterator<Item = RrType>>(types: I) -> Self {
        let mut codes: Vec<u16> = types.into_iter().map(|t| t.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        TypeBitmap { codes }
    }

    /// Adds a type to the bitmap.
    pub fn insert(&mut self, t: RrType) {
        let code = t.code();
        if let Err(pos) = self.codes.binary_search(&code) {
            self.codes.insert(pos, code);
        }
    }

    /// Removes a type from the bitmap.
    pub fn remove(&mut self, t: RrType) {
        if let Ok(pos) = self.codes.binary_search(&t.code()) {
            self.codes.remove(pos);
        }
    }

    /// Membership test.
    pub fn contains(&self, t: RrType) -> bool {
        self.codes.binary_search(&t.code()).is_ok()
    }

    /// All types in the bitmap, ascending by code.
    pub fn types(&self) -> impl Iterator<Item = RrType> + '_ {
        self.codes.iter().map(|&c| RrType::from_code(c))
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Encodes as RFC 4034 §4.1.2 window blocks.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut window = 0u8;
        let mut bits = [0u8; 32];
        let mut max_octet = 0usize;
        let mut dirty = false;
        let flush =
            |out: &mut Vec<u8>, window: u8, bits: &[u8; 32], max_octet: usize, dirty: bool| {
                if dirty {
                    out.push(window);
                    out.push(max_octet as u8 + 1);
                    out.extend_from_slice(&bits[..=max_octet]);
                }
            };
        for &code in &self.codes {
            let w = (code >> 8) as u8;
            if w != window {
                flush(&mut out, window, &bits, max_octet, dirty);
                window = w;
                bits = [0u8; 32];
                max_octet = 0;
            }
            let low = (code & 0xff) as usize;
            let octet = low / 8;
            let bit = 7 - (low % 8);
            bits[octet] |= 1 << bit;
            max_octet = max_octet.max(octet);
            dirty = true;
        }
        flush(&mut out, window, &bits, max_octet, dirty);
        out
    }

    /// Checks window-block framing without building the bitmap: returns
    /// `true` exactly when [`TypeBitmap::from_wire`] would return `Some`.
    /// Used by the zero-copy view parser, which must reject the same inputs
    /// as the owned decoder but cannot afford the allocation.
    pub fn validate_wire(mut data: &[u8]) -> bool {
        while !data.is_empty() {
            if data.len() < 2 {
                return false;
            }
            let len = data[1] as usize;
            if len == 0 || len > 32 || data.len() < 2 + len {
                return false;
            }
            data = &data[2 + len..];
        }
        true
    }

    /// Decodes window-block format; returns `None` on malformed input.
    pub fn from_wire(mut data: &[u8]) -> Option<Self> {
        let mut codes = Vec::new();
        while !data.is_empty() {
            if data.len() < 2 {
                return None;
            }
            let window = data[0] as u16;
            let len = data[1] as usize;
            if len == 0 || len > 32 || data.len() < 2 + len {
                return None;
            }
            for (octet, &byte) in data[2..2 + len].iter().enumerate() {
                for bit in 0..8u16 {
                    if byte & (0x80 >> bit) != 0 {
                        codes.push((window << 8) | (octet as u16 * 8 + bit));
                    }
                }
            }
            data = &data[2 + len..];
        }
        codes.sort_unstable();
        codes.dedup();
        Some(TypeBitmap { codes })
    }
}

impl fmt::Display for TypeBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in self.types() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
            RrType::Ds,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Dnskey,
            RrType::Nsec3,
            RrType::Nsec3Param,
            RrType::Cds,
            RrType::Cdnskey,
            RrType::Axfr,
            RrType::Unknown(4242),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
    }

    #[test]
    fn rcode_round_trip() {
        for c in 0..=10u8 {
            assert_eq!(Rcode::from_code(c).code(), c);
        }
    }

    #[test]
    fn bitmap_insert_contains_remove() {
        let mut bm = TypeBitmap::new();
        assert!(bm.is_empty());
        bm.insert(RrType::A);
        bm.insert(RrType::Rrsig);
        bm.insert(RrType::A); // duplicate
        assert_eq!(bm.len(), 2);
        assert!(bm.contains(RrType::A));
        assert!(!bm.contains(RrType::Ns));
        bm.remove(RrType::A);
        assert!(!bm.contains(RrType::A));
    }

    #[test]
    fn bitmap_wire_round_trip() {
        let bm = TypeBitmap::from_types([
            RrType::A,
            RrType::Ns,
            RrType::Soa,
            RrType::Mx,
            RrType::Aaaa,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Dnskey,
            RrType::Unknown(1234), // exercises a second window
        ]);
        let wire = bm.to_wire();
        let back = TypeBitmap::from_wire(&wire).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn bitmap_rfc_example_encoding() {
        // A/MX/RRSIG/NSEC + TYPE1234, the example from RFC 4034 §4.3.
        let bm = TypeBitmap::from_types([
            RrType::A,
            RrType::Mx,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Unknown(1234),
        ]);
        let wire = bm.to_wire();
        assert_eq!(
            wire,
            vec![
                0x00, 0x06, 0x40, 0x01, 0x00, 0x00, 0x00, 0x03, // window 0
                0x04, 0x1b, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                0x20, // window 4, bit for 1234
            ]
        );
    }

    #[test]
    fn bitmap_from_wire_rejects_garbage() {
        assert!(TypeBitmap::from_wire(&[0x00]).is_none());
        assert!(TypeBitmap::from_wire(&[0x00, 0x00]).is_none()); // zero-length block
        assert!(TypeBitmap::from_wire(&[0x00, 0x21]).is_none()); // > 32
        assert!(TypeBitmap::from_wire(&[0x00, 0x02, 0x01]).is_none()); // truncated
    }

    #[test]
    fn validate_wire_agrees_with_from_wire() {
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x00],
            vec![0x00, 0x00],
            vec![0x00, 0x21],
            vec![0x00, 0x02, 0x01],
            vec![0x00, 0x01, 0x40],
            TypeBitmap::from_types([RrType::A, RrType::Rrsig, RrType::Unknown(1234)]).to_wire(),
        ];
        // A valid block followed by a truncated one.
        let mut mixed = TypeBitmap::from_types([RrType::A]).to_wire();
        mixed.extend_from_slice(&[0x04, 0x05, 0x01]);
        cases.push(mixed);
        for case in cases {
            assert_eq!(
                TypeBitmap::validate_wire(&case),
                TypeBitmap::from_wire(&case).is_some(),
                "disagree on {case:?}"
            );
        }
    }

    #[test]
    fn bitmap_display() {
        let bm = TypeBitmap::from_types([RrType::Ns, RrType::A]);
        assert_eq!(bm.to_string(), "A NS");
    }
}
