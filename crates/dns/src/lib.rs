//! # ddx-dns — DNS data model and wire codec
//!
//! The foundation substrate for the DNSSEC-debugging workspace: domain names
//! with canonical ordering, typed RDATA for every record the diagnostics
//! reason about, RRsets with canonical signing forms, mutable zones, DNS
//! messages, and a complete RFC 1035 wire codec with name compression and
//! EDNS(0).
//!
//! Nothing in this crate knows about cryptography or servers; those layers
//! live in `ddx-dnssec` and `ddx-server`.

pub mod base32;
pub mod master;
pub mod message;
pub mod name;
pub mod rdata;
pub mod rrset;
pub mod trace;
pub mod types;
pub mod view;
pub mod wire;
pub mod zone;

pub use master::{parse_master, parse_record_line, record_to_line, zone_to_master, ParseError};
pub use message::{Edns, Flags, Message, Question};
pub use name::{name, Label, Name, NameError};
pub use rdata::{
    Dnskey, Ds, Nsec, Nsec3, Nsec3Param, RData, Rrsig, Soa, DNSKEY_FLAG_REVOKE, DNSKEY_FLAG_SEP,
    DNSKEY_FLAG_ZONE, NSEC3_FLAG_OPT_OUT,
};
pub use rrset::{CanonicalScratch, RRset, Record};
pub use types::{Rcode, RrClass, RrType, TypeBitmap};
pub use view::{MessageView, NameRef, QuestionView, RecordIter, RecordView, WireLabels};
pub use zone::Zone;
