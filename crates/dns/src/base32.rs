//! Base32hex encoding without padding (RFC 4648 §7), as used for NSEC3
//! owner-name labels (RFC 5155 §1.3).

const ALPHABET: &[u8; 32] = b"0123456789ABCDEFGHIJKLMNOPQRSTUV";

/// Encodes bytes as base32hex without padding, uppercase.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    for chunk in data.chunks(5) {
        let mut buf = [0u8; 5];
        buf[..chunk.len()].copy_from_slice(chunk);
        let v = u64::from(buf[0]) << 32
            | u64::from(buf[1]) << 24
            | u64::from(buf[2]) << 16
            | u64::from(buf[3]) << 8
            | u64::from(buf[4]);
        let out_chars = match chunk.len() {
            1 => 2,
            2 => 4,
            3 => 5,
            4 => 7,
            _ => 8,
        };
        for i in 0..out_chars {
            let shift = 35 - 5 * i;
            let idx = ((v >> shift) & 0x1f) as usize;
            out.push(ALPHABET[idx] as char);
        }
    }
    out
}

/// Decodes base32hex (case-insensitive, no padding). Returns `None` on
/// invalid characters or impossible lengths.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let bytes = s.as_bytes();
    for chunk in bytes.chunks(8) {
        // Valid final-chunk lengths for unpadded base32: 2, 4, 5, 7, 8.
        let data_len = match chunk.len() {
            2 => 1,
            4 => 2,
            5 => 3,
            7 => 4,
            8 => 5,
            _ => return None,
        };
        let mut v: u64 = 0;
        for &c in chunk {
            let d = match c.to_ascii_uppercase() {
                b'0'..=b'9' => c - b'0',
                c @ b'A'..=b'V' => c - b'A' + 10,
                b'a'..=b'v' => c.to_ascii_uppercase() - b'A' + 10,
                _ => return None,
            };
            v = (v << 5) | u64::from(d);
        }
        // Left-align the bits within the 40-bit group.
        v <<= 5 * (8 - chunk.len() as u64);
        let buf = [
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ];
        out.extend_from_slice(&buf[..data_len]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc4648_vectors() {
        // Test vectors from RFC 4648 §10 (base32hex, padding stripped).
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "CO");
        assert_eq!(encode(b"fo"), "CPNG");
        assert_eq!(encode(b"foo"), "CPNMU");
        assert_eq!(encode(b"foob"), "CPNMUOG");
        assert_eq!(encode(b"fooba"), "CPNMUOJ1");
        assert_eq!(encode(b"foobar"), "CPNMUOJ1E8");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("CO").unwrap(), b"f");
        assert_eq!(decode("cpnmuoj1e8").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode("W").is_none()); // invalid length
        assert!(decode("C!").is_none()); // invalid char
        assert!(decode("CPZ").is_none()); // length 3 impossible
    }

    #[test]
    fn sha1_hash_width_is_32_chars() {
        // NSEC3 labels are base32hex of a 20-byte SHA-1 digest: 32 chars.
        assert_eq!(encode(&[0u8; 20]).len(), 32);
    }

    proptest! {
        #[test]
        fn round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn encoding_preserves_order(a in proptest::collection::vec(any::<u8>(), 20),
                                    b in proptest::collection::vec(any::<u8>(), 20)) {
            // Base32hex preserves lexicographic ordering of equal-length
            // inputs — the property NSEC3 chains rely on.
            let (ea, eb) = (encode(&a), encode(&b));
            prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        }
    }
}
