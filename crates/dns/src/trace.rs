//! Feature-gated tracing shim: spans and events for the diagnostic
//! pipeline (probe walk, grok analysis passes, DFixer iterations).
//!
//! The workspace's dependency whitelist excludes the `tracing` crate, so
//! this module provides the minimal subset the pipeline needs — structured
//! events with key/value fields, and scoped spans — behind the same kind of
//! compile-time gate. With the `trace` feature off (the default) every
//! `trace_event!`/`trace_span!` expansion is an `if false` around its
//! arguments: nothing is formatted, nothing is stored.
//!
//! The gate is a `const` evaluated *in this crate*, not a `#[cfg]` in the
//! macro body: a `cfg!` inside a macro would expand against the calling
//! crate's features, silently disabling tracing for downstream crates that
//! forward their `trace` feature here. Downstream crates declare
//! `trace = ["ddx-dns/trace"]`, so enabling any crate's `trace` flips this
//! one constant for the whole workspace.
//!
//! Events land in a bounded thread-local buffer; tests and tools drain it
//! with [`take_events`]. This keeps the shim deterministic and free of
//! global subscribers or I/O.
//!
//! Independent of the feature gate, every `trace_event!`/`trace_span!`
//! site also bumps a `trace.events{target=…}` / `trace.spans{target=…}`
//! counter in the [`ddx_obs`] global registry, so per-subsystem event
//! volume is visible in metrics snapshots even in default (trace-off)
//! builds. Only the static target string is touched on that path; message
//! and field expressions still cost nothing when tracing is off.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

/// True when the `trace` feature of `ddx-dns` is enabled (directly or via a
/// downstream crate's forwarded feature).
pub const ENABLED: bool = cfg!(feature = "trace");

/// Cap on buffered events per thread; the oldest are dropped past this.
const BUFFER_CAP: usize = 8_192;

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Subsystem that emitted the event (e.g. `"dnsviz::probe"`).
    pub target: &'static str,
    /// Human-readable message (span events use `"enter"`/`"exit"`).
    pub message: String,
    /// Structured key/value fields (e.g. `("zone", "par.a.com.")`).
    pub fields: Vec<(&'static str, String)>,
}

thread_local! {
    static EVENTS: RefCell<VecDeque<TraceEvent>> = const { RefCell::new(VecDeque::new()) };
    /// Per-thread cache of `trace.*{target=…}` counter handles, so the
    /// always-on metric bump is one hash probe + one relaxed atomic add
    /// instead of a registry lock on every event.
    static EVENT_COUNTERS: RefCell<HashMap<(&'static str, &'static str), ddx_obs::Counter>> =
        RefCell::new(HashMap::new());
}

/// Bumps the global `trace.events{target=…}` counter for an event site.
/// Called unconditionally by [`trace_event!`](crate::trace_event) — this is
/// what keeps per-subsystem counters alive with the `trace` feature off.
pub fn record_event_metric(target: &'static str) {
    record_site_metric("trace.events", target);
}

/// Bumps the global `trace.spans{target=…}` counter for a span site.
pub fn record_span_metric(target: &'static str) {
    record_site_metric("trace.spans", target);
}

fn record_site_metric(name: &'static str, target: &'static str) {
    EVENT_COUNTERS.with(|cache| {
        cache
            .borrow_mut()
            .entry((name, target))
            .or_insert_with(|| ddx_obs::counter(name, &[("target", target)]))
            .inc();
    });
}

/// Appends an event to the thread-local buffer (bounded; oldest dropped).
pub fn emit(event: TraceEvent) {
    EVENTS.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.len() >= BUFFER_CAP {
            buf.pop_front();
        }
        buf.push_back(event);
    });
}

/// Drains and returns every event recorded on this thread so far.
pub fn take_events() -> Vec<TraceEvent> {
    EVENTS.with(|buf| buf.borrow_mut().drain(..).collect())
}

/// RAII guard emitting an `exit` event for its span when dropped.
pub struct SpanGuard {
    target: &'static str,
    name: &'static str,
    armed: bool,
}

/// Opens a span: emits an `enter` event now and an `exit` event when the
/// returned guard drops. Prefer the [`trace_span!`](crate::trace_span)
/// macro, which skips field formatting entirely when tracing is off.
pub fn span(
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
) -> SpanGuard {
    if ENABLED {
        let mut all = vec![("span", name.to_string())];
        all.extend(fields);
        emit(TraceEvent {
            target,
            message: "enter".into(),
            fields: all,
        });
    }
    SpanGuard {
        target,
        name,
        armed: ENABLED,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            emit(TraceEvent {
                target: self.target,
                message: "exit".into(),
                fields: vec![("span", self.name.to_string())],
            });
        }
    }
}

/// Emits a structured event: `trace_event!(target: "dnsviz::grok",
/// "pass done", zone = zp.zone, errors = count)`. Arguments are not
/// evaluated when the `trace` feature is off.
#[macro_export]
macro_rules! trace_event {
    (target: $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::trace::record_event_metric($target);
        if $crate::trace::ENABLED {
            $crate::trace::emit($crate::trace::TraceEvent {
                target: $target,
                message: ($msg).to_string(),
                fields: vec![$((stringify!($key), format!("{}", $value))),*],
            });
        }
    };
}

/// Opens a span with structured fields; binds the guard to the given
/// identifier. Field expressions are not evaluated when tracing is off.
#[macro_export]
macro_rules! trace_span {
    ($guard:ident, target: $target:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::trace::record_span_metric($target);
        let $guard = if $crate::trace::ENABLED {
            Some($crate::trace::span(
                $target,
                $name,
                vec![$((stringify!($key), format!("{}", $value))),*],
            ))
        } else {
            None
        };
        let _ = &$guard;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_buffers_nothing() {
        // This test compiles under both feature states; the assertions
        // branch on the same constant the macros use.
        trace_event!(target: "dns::test", "hello", answer = 42);
        let events = take_events();
        if ENABLED {
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].fields, vec![("answer", "42".to_string())]);
        } else {
            assert!(events.is_empty());
        }
    }

    #[test]
    fn event_sites_feed_global_metrics_even_when_disabled() {
        let counter = ddx_obs::counter("trace.events", &[("target", "dns::metric_test")]);
        let before = counter.get();
        trace_event!(target: "dns::metric_test", "bump", answer = 1);
        trace_event!(target: "dns::metric_test", "bump again");
        assert_eq!(counter.get() - before, 2);
        let _ = take_events();
    }

    #[test]
    fn span_sites_feed_global_metrics_even_when_disabled() {
        let counter = ddx_obs::counter("trace.spans", &[("target", "dns::metric_test")]);
        let before = counter.get();
        {
            trace_span!(_g, target: "dns::metric_test", "walk");
        }
        assert_eq!(counter.get() - before, 1);
        let _ = take_events();
    }

    #[test]
    fn span_guard_emits_enter_and_exit_when_enabled() {
        {
            trace_span!(_g, target: "dns::test", "walk", zone = "a.com.");
        }
        let events = take_events();
        if ENABLED {
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].message, "enter");
            assert_eq!(events[1].message, "exit");
        } else {
            assert!(events.is_empty());
        }
    }
}
