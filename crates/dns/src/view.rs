//! Zero-copy message views: borrow-from-buffer decoding for the hot paths.
//!
//! [`MessageView::parse`] makes exactly one validation pass over the wire
//! bytes — the same checks, in the same order, with the same errors as
//! [`wire::decode`] — but allocates nothing and builds nothing. Every
//! accessor afterwards lazily re-walks the validated bytes: names compare
//! and hash straight off the wire through [`NameRef`], records surface as
//! [`RecordView`]s whose RDATA is only materialized on demand, and the
//! explicit [`MessageView::to_owned`] bridge produces a [`Message`]
//! byte-for-byte identical to what `wire::decode` would have returned.
//!
//! The invariant the whole module leans on: a `MessageView` (and every view
//! handed out from it) only exists for a buffer that passed the full
//! validation walk, so the lazy accessors can unwrap internally — any panic
//! there is a parser bug, not an input problem. The
//! `view_owned_equivalence` proptest suite pins the accept/reject sets of
//! the two paths together.
//!
//! With the `simd-scan` feature, label equality uses SWAR (8 bytes per
//! step) ASCII case folding; hashing always folds byte-at-a-time so the
//! feature cannot split `Name`/`NameRef` hash values.

use std::hash::{Hash, Hasher};

use crate::message::{Edns, Flags, Message, Question};
use crate::name::Name;
use crate::rdata::RData;
use crate::rrset::Record;
use crate::types::{Rcode, RrClass, RrType};
use crate::wire::{self, Decoder, WireError};

// ------------------------------------------------------------ label compare

/// Case-insensitive ASCII equality over raw label bytes.
#[inline]
pub(crate) fn ascii_eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    #[cfg(feature = "simd-scan")]
    {
        swar::eq_ignore_case(a, b)
    }
    #[cfg(not(feature = "simd-scan"))]
    {
        a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
    }
}

/// SWAR (SIMD-within-a-register) ASCII case folding: eight bytes per step
/// on a plain u64, no target-feature requirements. Only equality goes
/// through here — hashing stays byte-at-a-time so `simd-scan` cannot change
/// hash values.
pub(crate) mod swar {
    const HI: u64 = 0x8080_8080_8080_8080;
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;

    /// Lowercases the ASCII uppercase lanes of `x`; other lanes pass
    /// through. Per-lane arithmetic never carries: inputs are masked to 7
    /// bits, and 0x7f plus either addend stays below 0x100.
    #[inline]
    pub(crate) fn lowercase8(x: u64) -> u64 {
        let v = x & LOW7;
        // High bit of a lane sets iff v >= 0x41 ('A').
        let ge_a = v.wrapping_add(0x3f3f_3f3f_3f3f_3f3f) & HI;
        // High bit of a lane sets iff v >= 0x5b ('Z' + 1).
        let gt_z = v.wrapping_add(0x2525_2525_2525_2525) & HI;
        // Uppercase: in ['A','Z'] and genuinely ASCII (no original high bit).
        let is_upper = (ge_a & !gt_z) & !(x & HI);
        // 0x80 >> 2 = 0x20, the ASCII case bit.
        x | (is_upper >> 2)
    }

    #[inline]
    pub(crate) fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let mut i = 0;
        while i + 8 <= a.len() {
            let xa = u64::from_le_bytes(a[i..i + 8].try_into().expect("8 bytes"));
            let xb = u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
            if lowercase8(xa) != lowercase8(xb) {
                return false;
            }
            i += 8;
        }
        a[i..]
            .iter()
            .zip(&b[i..])
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
    }
}

// ------------------------------------------------------------------ NameRef

/// A domain name borrowed from a validated message buffer.
///
/// Compares and hashes case-insensitively directly on the wire bytes,
/// following compression pointers as it walks — no decompression, no
/// allocation. Equality and hashing agree with [`Name`]: `r == n` via
/// [`NameRef::eq_name`] iff `r.to_name() == n`, and `r` hashes identically
/// to `r.to_name()`.
#[derive(Debug, Clone, Copy)]
pub struct NameRef<'buf> {
    buf: &'buf [u8],
    off: usize,
}

impl<'buf> NameRef<'buf> {
    /// Callers must guarantee a validated name starts at `off`; everything
    /// downstream unwraps on that basis.
    pub(crate) fn new(buf: &'buf [u8], off: usize) -> Self {
        NameRef { buf, off }
    }

    /// Labels, leftmost first, borrowed from the wire.
    pub fn labels(&self) -> WireLabels<'buf> {
        WireLabels {
            buf: self.buf,
            pos: self.off,
        }
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// True iff this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels().next().is_none()
    }

    /// Materializes an owned [`Name`] (allocates; the only bridge off the
    /// wire).
    pub fn to_name(&self) -> Name {
        wire::read_name_at(self.buf, self.off)
            .expect("NameRef points at a validated name")
            .0
    }

    /// Case-insensitive equality against an owned name, without
    /// materializing anything.
    pub fn eq_name(&self, other: &Name) -> bool {
        let mut theirs = other.labels().iter();
        for mine in self.labels() {
            match theirs.next() {
                Some(l) if ascii_eq_ignore_case(mine, l.as_bytes()) => {}
                _ => return false,
            }
        }
        theirs.next().is_none()
    }
}

impl PartialEq for NameRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        let mut a = self.labels();
        let mut b = other.labels();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if ascii_eq_ignore_case(x, y) => {}
                _ => return false,
            }
        }
    }
}

impl Eq for NameRef<'_> {}

impl Hash for NameRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must replay `Name::hash` exactly: length prefix, then lowercased
        // bytes, per label. Never route this through SWAR — hash values
        // must not depend on the `simd-scan` feature.
        for label in self.labels() {
            state.write_usize(label.len());
            for &b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl std::fmt::Display for NameRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Display is not a hot path; reuse the owned formatter.
        write!(f, "{}", self.to_name())
    }
}

/// Iterator over a wire name's labels, chasing compression pointers.
#[derive(Debug, Clone, Copy)]
pub struct WireLabels<'buf> {
    buf: &'buf [u8],
    pos: usize,
}

impl<'buf> Iterator for WireLabels<'buf> {
    type Item = &'buf [u8];

    fn next(&mut self) -> Option<&'buf [u8]> {
        loop {
            let len = self.buf[self.pos] as usize;
            if len & 0xC0 == 0xC0 {
                let b2 = self.buf[self.pos + 1] as usize;
                self.pos = ((len & 0x3F) << 8) | b2;
                continue;
            }
            if len == 0 {
                return None;
            }
            let start = self.pos + 1;
            self.pos = start + len;
            return Some(&self.buf[start..start + len]);
        }
    }
}

// ------------------------------------------------------------ message view

#[derive(Debug, Clone, Copy)]
struct SectionSpan {
    /// Byte offset of the section's first record.
    start: usize,
    /// Raw record count from the header (OPT entries included; the iterator
    /// skips them, mirroring how `wire::decode` keeps OPT out of the record
    /// vectors).
    count: u16,
}

/// A decoded-but-not-materialized DNS message borrowing its wire buffer.
///
/// `parse` fully validates the buffer up front (identically to
/// [`wire::decode`]); accessors afterwards are allocation-free except where
/// documented ([`NameRef::to_name`], [`RecordView::rdata`],
/// [`MessageView::to_owned`]).
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'buf> {
    buf: &'buf [u8],
    id: u16,
    flags: Flags,
    rcode: Rcode,
    /// Offset of the (last, per RFC-loose qdcount handling) question's
    /// qname, plus its decoded type and class.
    question: Option<(usize, RrType, RrClass)>,
    sections: [SectionSpan; 3],
    edns: Option<Edns>,
}

impl<'buf> MessageView<'buf> {
    /// Validates `buf` and returns a view over it. Accepts exactly the
    /// buffers [`wire::decode`] accepts, and rejects with the same error.
    pub fn parse(buf: &'buf [u8]) -> Result<Self, WireError> {
        let counters = wire::decode_obs::counters();
        match Self::parse_inner(buf) {
            Ok(view) => {
                counters.messages.inc();
                counters.bytes.add(buf.len() as u64);
                Ok(view)
            }
            Err(e) => {
                counters.rejects.inc();
                Err(e)
            }
        }
    }

    /// The validation walk: a skip-only replay of `wire::decode_inner`.
    /// Every check it makes, in the same order — keep the two in lockstep.
    fn parse_inner(buf: &'buf [u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let id = d.u16()?;
        let word = d.u16()?;
        let flags = Flags {
            qr: word & (1 << 15) != 0,
            aa: word & (1 << 10) != 0,
            tc: word & (1 << 9) != 0,
            rd: word & (1 << 8) != 0,
            ra: word & (1 << 7) != 0,
            ad: word & (1 << 5) != 0,
            cd: word & (1 << 4) != 0,
        };
        let rcode = Rcode::from_code((word & 0x0F) as u8);
        let qdcount = d.u16()?;
        let ancount = d.u16()?;
        let nscount = d.u16()?;
        let arcount = d.u16()?;

        let mut question = None;
        for _ in 0..qdcount {
            let qname_off = d.pos;
            d.skip_name()?;
            let qtype = RrType::from_code(d.u16()?);
            let qclass = RrClass::from_code(d.u16()?);
            question = Some((qname_off, qtype, qclass));
        }

        fn scan_section(d: &mut Decoder, n: u16) -> Result<(usize, Option<Edns>), WireError> {
            let start = d.pos;
            let mut edns = None;
            for _ in 0..n {
                d.skip_name()?;
                let rtype = RrType::from_code(d.u16()?);
                let class_code = d.u16()?;
                let ttl = d.u32()?;
                let rd_len = d.u16()? as usize;
                if rtype == RrType::Opt {
                    edns = Some(Edns {
                        udp_size: class_code,
                        dnssec_ok: ttl & 0x0000_8000 != 0,
                    });
                    d.take(rd_len)?;
                    continue;
                }
                wire::check_rdata(rtype, d.buf, d.pos, rd_len)?;
                d.take(rd_len)?;
            }
            Ok((start, edns))
        }

        let (an_start, _) = scan_section(&mut d, ancount)?;
        let (ns_start, _) = scan_section(&mut d, nscount)?;
        let (ar_start, edns) = scan_section(&mut d, arcount)?;
        if d.pos != buf.len() {
            return Err(WireError::TrailingGarbage);
        }

        Ok(MessageView {
            buf,
            id,
            flags,
            rcode,
            question,
            sections: [
                SectionSpan {
                    start: an_start,
                    count: ancount,
                },
                SectionSpan {
                    start: ns_start,
                    count: nscount,
                },
                SectionSpan {
                    start: ar_start,
                    count: arcount,
                },
            ],
            edns,
        })
    }

    /// The validated wire bytes this view borrows.
    pub fn wire(&self) -> &'buf [u8] {
        self.buf
    }

    pub fn id(&self) -> u16 {
        self.id
    }

    pub fn flags(&self) -> Flags {
        self.flags
    }

    pub fn rcode(&self) -> Rcode {
        self.rcode
    }

    pub fn edns(&self) -> Option<Edns> {
        self.edns
    }

    /// True if the message carried the EDNS DO bit.
    pub fn dnssec_ok(&self) -> bool {
        self.edns.map(|e| e.dnssec_ok).unwrap_or(false)
    }

    pub fn question(&self) -> Option<QuestionView<'buf>> {
        self.question.map(|(off, qtype, qclass)| QuestionView {
            qname: NameRef::new(self.buf, off),
            qtype,
            qclass,
        })
    }

    pub fn answers(&self) -> RecordIter<'buf> {
        self.section_iter(0)
    }

    pub fn authorities(&self) -> RecordIter<'buf> {
        self.section_iter(1)
    }

    pub fn additionals(&self) -> RecordIter<'buf> {
        self.section_iter(2)
    }

    fn section_iter(&self, idx: usize) -> RecordIter<'buf> {
        let span = self.sections[idx];
        RecordIter {
            buf: self.buf,
            pos: span.start,
            remaining: span.count,
        }
    }

    /// Materializes the full owned [`Message`] — byte-for-byte what
    /// [`wire::decode`] returns for this buffer. This is the only full
    /// owned bridge; it is counted (`dns.view.to_owned`) so hot paths can
    /// assert they never take it.
    pub fn to_owned(&self) -> Message {
        wire::decode_obs::counters().to_owned.inc();
        wire::decode_inner(self.buf).expect("buffer was validated by MessageView::parse")
    }
}

/// The question section, borrowed.
#[derive(Debug, Clone, Copy)]
pub struct QuestionView<'buf> {
    qname: NameRef<'buf>,
    qtype: RrType,
    qclass: RrClass,
}

impl<'buf> QuestionView<'buf> {
    pub fn qname(&self) -> NameRef<'buf> {
        self.qname
    }

    pub fn qtype(&self) -> RrType {
        self.qtype
    }

    pub fn qclass(&self) -> RrClass {
        self.qclass
    }

    /// Does this wire question match an owned one? (Case-insensitive on the
    /// name, exact on type and class.) Allocation-free.
    pub fn matches(&self, q: &Question) -> bool {
        self.qtype == q.qtype && self.qclass == q.qclass && self.qname.eq_name(&q.qname)
    }

    /// Materializes an owned [`Question`] (allocates the qname).
    pub fn to_question(&self) -> Question {
        Question {
            qname: self.qname.to_name(),
            qtype: self.qtype,
            qclass: self.qclass,
        }
    }
}

/// One resource record, borrowed. Header fields are pre-decoded; RDATA
/// stays on the wire until [`RecordView::rdata`] asks for it.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'buf> {
    buf: &'buf [u8],
    name_off: usize,
    rtype: RrType,
    class: RrClass,
    ttl: u32,
    rd_start: usize,
    rd_len: usize,
}

impl<'buf> RecordView<'buf> {
    pub fn name(&self) -> NameRef<'buf> {
        NameRef::new(self.buf, self.name_off)
    }

    pub fn rtype(&self) -> RrType {
        self.rtype
    }

    pub fn class(&self) -> RrClass {
        self.class
    }

    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// The raw RDATA window (names inside may point elsewhere in the
    /// message; use [`RecordView::rdata`] for interpreted content).
    pub fn rdata_bytes(&self) -> &'buf [u8] {
        &self.buf[self.rd_start..self.rd_start + self.rd_len]
    }

    /// Parses the RDATA for this record's type (allocates). Cannot fail:
    /// the window was validated by `MessageView::parse`.
    pub fn rdata(&self) -> RData {
        wire::decode_rdata(self.rtype, self.buf, self.rd_start, self.rd_len)
            .expect("rdata was validated by MessageView::parse")
    }

    /// Materializes an owned [`Record`] — identical to the corresponding
    /// entry `wire::decode` would produce.
    pub fn to_record(&self) -> Record {
        Record {
            name: self.name().to_name(),
            class: self.class,
            ttl: self.ttl,
            rdata: self.rdata(),
        }
    }
}

/// Lazily walks a record section, skipping OPT pseudo-records exactly as
/// the owned decoder keeps them out of its record vectors.
#[derive(Debug, Clone)]
pub struct RecordIter<'buf> {
    buf: &'buf [u8],
    pos: usize,
    remaining: u16,
}

impl<'buf> Iterator for RecordIter<'buf> {
    type Item = RecordView<'buf>;

    fn next(&mut self) -> Option<RecordView<'buf>> {
        while self.remaining > 0 {
            self.remaining -= 1;
            let name_off = self.pos;
            let mut d = Decoder {
                buf: self.buf,
                pos: self.pos,
            };
            d.skip_name().expect("record validated at parse");
            let rtype = RrType::from_code(d.u16().expect("validated"));
            let class_code = d.u16().expect("validated");
            let ttl = d.u32().expect("validated");
            let rd_len = d.u16().expect("validated") as usize;
            let rd_start = d.pos;
            self.pos = rd_start + rd_len;
            if rtype == RrType::Opt {
                continue;
            }
            return Some(RecordView {
                buf: self.buf,
                name_off,
                rtype,
                class: RrClass::from_code(class_code),
                ttl,
                rd_start,
                rd_len,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::rdata::{Nsec, Rrsig, Soa};
    use crate::types::TypeBitmap;
    use std::collections::hash_map::DefaultHasher;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let q = Message::query(0x1234, name("www.Example.COM"), RrType::A);
        let mut r = q.response();
        r.flags.aa = true;
        r.answers.push(Record::new(
            name("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        r.answers.push(Record::new(
            name("www.example.com"),
            300,
            RData::Rrsig(Rrsig {
                type_covered: RrType::A,
                algorithm: 13,
                labels: 3,
                original_ttl: 300,
                expiration: 5000,
                inception: 1000,
                key_tag: 4242,
                signer_name: name("example.com"),
                signature: vec![9; 32],
            }),
        ));
        r.authorities.push(Record::new(
            name("example.com"),
            300,
            RData::Nsec(Nsec {
                next_name: name("zzz.example.com"),
                type_bitmap: TypeBitmap::from_types([RrType::Soa, RrType::Ns]),
            }),
        ));
        r.additionals.push(Record::new(
            name("ns1.example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 7,
                refresh: 1,
                retry: 2,
                expire: 3,
                minimum: 4,
            }),
        ));
        r
    }

    #[test]
    fn view_accessors_match_owned_decode() {
        let msg = sample_response();
        let bytes = wire::encode(&msg);
        let owned = wire::decode(&bytes).expect("owned");
        let view = MessageView::parse(&bytes).expect("view");

        assert_eq!(view.id(), owned.id);
        assert_eq!(view.flags(), owned.flags);
        assert_eq!(view.rcode(), owned.rcode);
        assert_eq!(view.edns(), owned.edns);
        assert_eq!(view.dnssec_ok(), owned.dnssec_ok());

        let q = view.question().expect("question");
        let oq = owned.question.as_ref().expect("owned question");
        assert_eq!(q.to_question(), *oq);
        assert!(q.matches(oq));
        assert!(q.qname().eq_name(&oq.qname));

        for (iter, section) in [
            (view.answers(), &owned.answers),
            (view.authorities(), &owned.authorities),
            (view.additionals(), &owned.additionals),
        ] {
            let materialized: Vec<Record> = iter.map(|r| r.to_record()).collect();
            assert_eq!(&materialized, section);
        }

        assert_eq!(view.to_owned(), owned);
    }

    #[test]
    fn view_rejects_what_decode_rejects() {
        let bytes = wire::encode(&sample_response());
        for cut in 0..bytes.len() {
            let owned = wire::decode(&bytes[..cut]).expect_err("prefix must fail");
            let viewed = MessageView::parse(&bytes[..cut]).expect_err("prefix must fail");
            assert_eq!(owned, viewed, "divergent error at cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(b"junk");
        assert_eq!(
            MessageView::parse(&trailing).unwrap_err(),
            WireError::TrailingGarbage
        );
    }

    #[test]
    fn nameref_compares_and_hashes_like_name() {
        let msg = sample_response();
        let bytes = wire::encode(&msg);
        let view = MessageView::parse(&bytes).expect("view");
        let qref = view.question().unwrap().qname();

        // Equality is case-insensitive both against owned names and other refs.
        assert!(qref.eq_name(&name("WWW.EXAMPLE.COM")));
        assert!(qref.eq_name(&name("www.example.com")));
        assert!(!qref.eq_name(&name("example.com")));
        assert!(!qref.eq_name(&name("www.example.org")));
        let first_answer = view.answers().next().unwrap();
        assert_eq!(qref, first_answer.name());

        // Hashes must match the owned name's hash exactly.
        let hash_of = |h: &dyn Fn(&mut DefaultHasher)| {
            let mut s = DefaultHasher::new();
            h(&mut s);
            s.finish()
        };
        let owned = qref.to_name();
        assert_eq!(
            hash_of(&|s| qref.hash(s)),
            hash_of(&|s| owned.hash(s)),
            "NameRef and Name must hash identically"
        );
        assert_eq!(
            hash_of(&|s| qref.hash(s)),
            hash_of(&|s| name("WwW.eXaMpLe.CoM").hash(s)),
            "hash must be case-insensitive"
        );
    }

    #[test]
    fn record_iter_skips_opt_and_preserves_counts() {
        let msg = sample_response();
        let bytes = wire::encode(&msg);
        let view = MessageView::parse(&bytes).expect("view");
        // The OPT lives in additionals on the wire but not in the records.
        assert_eq!(view.answers().count(), 2);
        assert_eq!(view.authorities().count(), 1);
        assert_eq!(view.additionals().count(), 1);
        assert!(view.edns().is_some());
    }

    #[test]
    fn lazy_rdata_matches_owned_rdata() {
        let msg = sample_response();
        let bytes = wire::encode(&msg);
        let owned = wire::decode(&bytes).expect("owned");
        let view = MessageView::parse(&bytes).expect("view");
        for (rv, rec) in view.answers().zip(&owned.answers) {
            assert_eq!(rv.rtype(), rec.rtype());
            assert_eq!(rv.ttl(), rec.ttl);
            assert_eq!(rv.class(), rec.class);
            assert_eq!(rv.rdata(), rec.rdata);
            assert!(rv.name().eq_name(&rec.name));
        }
    }

    #[test]
    fn swar_lowercase_matches_scalar() {
        for b in 0u8..=255 {
            let lanes = u64::from_le_bytes([b; 8]);
            let folded = swar::lowercase8(lanes).to_le_bytes();
            for lane in folded {
                assert_eq!(lane, b.to_ascii_lowercase(), "byte {b:#04x}");
            }
        }
    }

    #[test]
    fn swar_eq_matches_scalar_eq() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"example-label", b"EXAMPLE-LABEL"),
            (b"example-label", b"example-labeL"),
            (b"example-label", b"example-labex"),
            (b"short", b"SHORT"),
            (b"with\x80high", b"with\x80high"),
            (b"with\x80high", b"with\xa0high"),
        ];
        for (a, b) in cases {
            let scalar =
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y));
            assert_eq!(swar::eq_ignore_case(a, b), scalar, "{a:?} vs {b:?}");
        }
    }
}
