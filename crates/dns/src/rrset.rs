//! Resource records and RRsets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::name::Name;
use crate::rdata::{RData, Rrsig};
use crate::types::{RrClass, RrType};

/// A single resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    pub name: Name,
    pub class: RrClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class IN.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Record type, derived from the RDATA.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} IN {} {}",
            self.name,
            self.ttl,
            self.rtype(),
            self.rdata
        )
    }
}

/// A set of records sharing owner name, class, and type (RFC 2181 §5).
///
/// All members share a single TTL; mixed-TTL inputs are normalized to the
/// minimum on construction, mirroring resolver behaviour (RFC 2181 §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RRset {
    pub name: Name,
    pub rtype: RrType,
    pub ttl: u32,
    pub rdatas: Vec<RData>,
}

impl RRset {
    /// Builds an RRset from one or more records of the same name/type.
    ///
    /// Returns `None` on an empty slice or mismatched names/types.
    pub fn from_records(records: &[Record]) -> Option<Self> {
        let first = records.first()?;
        let name = first.name.clone();
        let rtype = first.rtype();
        let mut ttl = first.ttl;
        let mut rdatas = Vec::with_capacity(records.len());
        for r in records {
            if r.name != name || r.rtype() != rtype {
                return None;
            }
            ttl = ttl.min(r.ttl);
            rdatas.push(r.rdata.clone());
        }
        Some(RRset {
            name,
            rtype,
            ttl,
            rdatas,
        })
    }

    /// Single-record RRset.
    pub fn singleton(name: Name, ttl: u32, rdata: RData) -> Self {
        RRset {
            name,
            rtype: rdata.rtype(),
            ttl,
            rdatas: vec![rdata],
        }
    }

    /// Number of RRs in the set.
    pub fn len(&self) -> usize {
        self.rdatas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rdatas.is_empty()
    }

    /// Expands back into individual records.
    pub fn to_records(&self) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record::new(self.name.clone(), self.ttl, rd.clone()))
            .collect()
    }

    /// The canonical byte stream this RRset contributes to a signature:
    /// each RR as `owner | type | class | original_ttl | rdlength | rdata`,
    /// with RRs sorted by canonical RDATA (RFC 4034 §6.3 / §3.1.8.1).
    ///
    /// `original_ttl` comes from the RRSIG being built or checked.
    pub fn canonical_signing_form(&self, original_ttl: u32) -> Vec<u8> {
        let mut out = Vec::new();
        self.canonical_signing_form_with(original_ttl, &mut CanonicalScratch::default(), &mut out);
        out
    }

    /// Appends the canonical signing form to `out`, reusing `scratch` so a
    /// bulk signer encoding thousands of RRsets allocates nothing per record
    /// after warm-up (the per-RDATA `Vec` churn of the naive encoder).
    pub fn canonical_signing_form_with(
        &self,
        original_ttl: u32,
        scratch: &mut CanonicalScratch,
        out: &mut Vec<u8>,
    ) {
        let CanonicalScratch {
            owner,
            arena,
            ranges,
        } = scratch;
        owner.clear();
        self.name.canonical_wire_into(owner);
        // Encode every RDATA once into a shared arena and sort index ranges
        // by the encoded bytes (RFC 4034 §6.3 canonical RR ordering).
        arena.clear();
        ranges.clear();
        for rd in &self.rdatas {
            let start = arena.len() as u32;
            rd.canonical_wire_into(arena);
            ranges.push((start, arena.len() as u32));
        }
        ranges.sort_by(|a, b| {
            arena[a.0 as usize..a.1 as usize].cmp(&arena[b.0 as usize..b.1 as usize])
        });
        for &(start, end) in ranges.iter() {
            let rdata = &arena[start as usize..end as usize];
            out.extend_from_slice(owner);
            out.extend_from_slice(&self.rtype.code().to_be_bytes());
            out.extend_from_slice(&RrClass::In.code().to_be_bytes());
            out.extend_from_slice(&original_ttl.to_be_bytes());
            out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
            out.extend_from_slice(rdata);
        }
    }

    /// The full message a signature covers: RRSIG RDATA prefix followed by
    /// the canonical RRset (RFC 4034 §3.1.8.1).
    pub fn signing_payload(&self, rrsig: &Rrsig) -> Vec<u8> {
        let mut payload = Vec::new();
        self.signing_payload_with(rrsig, &mut CanonicalScratch::default(), &mut payload);
        payload
    }

    /// Clears `out` and fills it with the full signed message, reusing
    /// `scratch` (allocation-free form of [`RRset::signing_payload`]).
    pub fn signing_payload_with(
        &self,
        rrsig: &Rrsig,
        scratch: &mut CanonicalScratch,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        rrsig.signed_prefix_into(out);
        self.canonical_signing_form_with(rrsig.original_ttl, scratch, out);
    }
}

/// Reusable buffers for canonical signing-form encoding. One instance,
/// carried across [`RRset::canonical_signing_form_with`] /
/// [`RRset::signing_payload_with`] calls, amortizes every intermediate
/// allocation of the encoder to zero.
#[derive(Debug, Default, Clone)]
pub struct CanonicalScratch {
    owner: Vec<u8>,
    arena: Vec<u8>,
    ranges: Vec<(u32, u32)>,
}

impl fmt::Display for RRset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rd in &self.rdatas {
            writeln!(f, "{} {} IN {} {}", self.name, self.ttl, self.rtype, rd)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use std::net::Ipv4Addr;

    fn a(s: &str, ttl: u32, ip: [u8; 4]) -> Record {
        Record::new(name(s), ttl, RData::A(Ipv4Addr::from(ip)))
    }

    #[test]
    fn from_records_groups_and_normalizes_ttl() {
        let rs = RRset::from_records(&[
            a("w.example.com", 300, [1, 2, 3, 4]),
            a("W.EXAMPLE.com", 60, [1, 2, 3, 5]),
        ])
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.ttl, 60, "mixed TTLs normalize to the minimum");
    }

    #[test]
    fn from_records_rejects_mixed_sets() {
        assert!(RRset::from_records(&[]).is_none());
        let mixed_names = [
            a("a.example.com", 60, [1, 1, 1, 1]),
            a("b.example.com", 60, [1, 1, 1, 2]),
        ];
        assert!(RRset::from_records(&mixed_names).is_none());
        let mixed_types = [
            a("a.example.com", 60, [1, 1, 1, 1]),
            Record::new(name("a.example.com"), 60, RData::Ns(name("ns.example.com"))),
        ];
        assert!(RRset::from_records(&mixed_types).is_none());
    }

    #[test]
    fn canonical_signing_form_sorts_rdata() {
        let rs1 = RRset::from_records(&[
            a("x.example.com", 60, [9, 9, 9, 9]),
            a("x.example.com", 60, [1, 1, 1, 1]),
        ])
        .unwrap();
        let rs2 = RRset::from_records(&[
            a("x.example.com", 60, [1, 1, 1, 1]),
            a("x.example.com", 60, [9, 9, 9, 9]),
        ])
        .unwrap();
        assert_eq!(
            rs1.canonical_signing_form(60),
            rs2.canonical_signing_form(60),
            "signing form is order-insensitive"
        );
    }

    #[test]
    fn canonical_signing_form_uses_original_ttl() {
        let rs = RRset::from_records(&[a("x.example.com", 60, [1, 1, 1, 1])]).unwrap();
        assert_ne!(
            rs.canonical_signing_form(60),
            rs.canonical_signing_form(300)
        );
    }

    #[test]
    fn round_trip_records() {
        let rs = RRset::from_records(&[
            a("x.example.com", 60, [1, 1, 1, 1]),
            a("x.example.com", 60, [2, 2, 2, 2]),
        ])
        .unwrap();
        let recs = rs.to_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(RRset::from_records(&recs).unwrap(), rs);
    }
}
