//! Domain names (RFC 1035 §3.1) with DNSSEC canonical ordering (RFC 4034 §6.1).
//!
//! A [`Name`] is a sequence of labels stored in presentation order (leftmost
//! label first) **without** the terminating empty root label. The root name
//! is the empty label sequence and displays as `"."`.
//!
//! Comparisons are case-insensitive per RFC 1035 §2.3.3; the original case is
//! preserved for display. [`Name::canonical_cmp`] implements the canonical
//! DNS name order used by NSEC chains and RRset canonicalization.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full name in wire format, including length octets and
/// the root label (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Errors produced while parsing or constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong(usize),
    /// An empty (zero-length) label appeared in a non-root position.
    EmptyLabel,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            NameError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            NameError::EmptyLabel => write!(f, "empty label inside name"),
        }
    }
}

impl std::error::Error for NameError {}

/// A single label: up to 63 arbitrary octets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(Vec<u8>);

impl Label {
    /// Creates a label from raw octets, rejecting over-long labels.
    pub fn new(bytes: &[u8]) -> Result<Self, NameError> {
        if bytes.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(bytes.len()));
        }
        Ok(Label(bytes.to_vec()))
    }

    /// Raw octets of the label.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-length label.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// ASCII-lowercased copy used for comparisons.
    pub fn to_lowercase(&self) -> Vec<u8> {
        self.0.iter().map(|b| b.to_ascii_lowercase()).collect()
    }

    /// Case-insensitive equality (RFC 1035 §2.3.3).
    pub fn eq_ignore_case(&self, other: &Label) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Canonical (case-insensitive, octet-wise) ordering of two labels.
    pub fn canonical_cmp(&self, other: &Label) -> Ordering {
        self.to_lowercase().cmp(&other.to_lowercase())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            match b {
                b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                0x21..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\{:03}", b)?,
            }
        }
        Ok(())
    }
}

/// A fully-qualified domain name.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Label>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from labels, leftmost first.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, NameError> {
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Parses dotted presentation format. A trailing dot is optional; names
    /// are always treated as fully qualified.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            labels.push(Label::new(part.as_bytes())?);
        }
        Name::from_labels(labels)
    }

    /// Labels, leftmost first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True iff this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Wire-format length including per-label length octets and the root
    /// terminator.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Prepends a label, producing a child name (e.g. `www` + `example.com`
    /// → `www.example.com`).
    pub fn child(&self, label: &str) -> Result<Self, NameError> {
        let mut labels = vec![Label::new(label.as_bytes())?];
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// The name with the leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// True if `self` equals `other` or is a descendant of it.
    ///
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(other.labels.iter())
            .all(|(a, b)| a.eq_ignore_case(b))
    }

    /// Strict subdomain: a descendant, not the name itself.
    pub fn is_strict_subdomain_of(&self, other: &Name) -> bool {
        self.label_count() > other.label_count() && self.is_subdomain_of(other)
    }

    /// Canonical DNS name ordering (RFC 4034 §6.1): compare label sequences
    /// right to left, case-insensitively, absent labels sorting first.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(x), Some(y)) => match x.canonical_cmp(y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }

    /// Canonical wire form: lowercased, uncompressed (RFC 4034 §6.2).
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.canonical_wire_into(&mut out);
        out
    }

    /// Appends the canonical wire form to `out` without intermediate
    /// allocations — the hot path for bulk signing and NSEC3 hashing.
    pub fn canonical_wire_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        for label in &self.labels {
            out.push(label.len() as u8);
            out.extend(label.as_bytes().iter().map(|b| b.to_ascii_lowercase()));
        }
        out.push(0);
    }

    /// ASCII-lowercased presentation form, used as a case-insensitive map key.
    pub fn key(&self) -> String {
        self.to_string().to_ascii_lowercase()
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| a.eq_ignore_case(b))
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Feed the hasher label-by-label with an explicit length prefix and
        // lowercased bytes, never through `Vec::hash` (whose internal prefix
        // encoding is unstable). `NameRef::hash` in the wire view replays
        // this exact sequence straight off the wire bytes, so `Name` and
        // `NameRef` hash identically by construction; keep the two in sync.
        for label in &self.labels {
            state.write_usize(label.len());
            for &b in label.as_bytes() {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            write!(f, "{label}.")?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Convenience macro-free constructor used pervasively in tests.
///
/// # Panics
/// Panics on malformed input; intended for literals.
pub fn name(s: &str) -> Name {
    Name::parse(s).expect("valid name literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_round_trip() {
        let r = Name::root();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        assert_eq!(Name::parse(".").unwrap(), r);
        assert_eq!(Name::parse("").unwrap(), r);
        assert_eq!(r.wire_len(), 1);
    }

    #[test]
    fn parse_and_display() {
        let n = name("www.Example.COM");
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "www.Example.COM.");
        assert_eq!(n, name("WWW.example.com."));
    }

    #[test]
    fn trailing_dot_optional() {
        assert_eq!(name("a.b.c"), name("a.b.c."));
    }

    #[test]
    fn rejects_empty_interior_label() {
        assert_eq!(Name::parse("a..b"), Err(NameError::EmptyLabel));
    }

    #[test]
    fn rejects_long_label() {
        let long = "x".repeat(64);
        assert!(matches!(
            Name::parse(&long),
            Err(NameError::LabelTooLong(64))
        ));
    }

    #[test]
    fn rejects_long_name() {
        let label = "x".repeat(63);
        let long = [label.as_str(); 5].join(".");
        assert!(matches!(Name::parse(&long), Err(NameError::NameTooLong(_))));
    }

    #[test]
    fn parent_and_child() {
        let n = name("www.example.com");
        assert_eq!(n.parent().unwrap(), name("example.com"));
        assert_eq!(name("example.com").child("www").unwrap(), n);
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn subdomain_relations() {
        let apex = name("example.com");
        let sub = name("a.b.example.com");
        assert!(sub.is_subdomain_of(&apex));
        assert!(sub.is_strict_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!apex.is_strict_subdomain_of(&apex));
        assert!(!apex.is_subdomain_of(&sub));
        assert!(sub.is_subdomain_of(&Name::root()));
        // Case-insensitive.
        assert!(name("A.EXAMPLE.com").is_subdomain_of(&name("example.COM")));
        // Not fooled by suffix matches within a label.
        assert!(!name("notexample.com").is_subdomain_of(&name("example.com")));
    }

    #[test]
    fn canonical_order_rfc4034_example() {
        // The canonical order example from RFC 4034 §6.1.
        let ordered = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
            "\\001.z.example.",
            "*.z.example.",
        ];
        // We skip escaped forms not supported by the parser; emulate \001 and *
        // via raw labels.
        let mut names: Vec<Name> = vec![
            name("example"),
            name("a.example"),
            name("yljkjljk.a.example"),
            name("Z.a.example"),
            name("zABC.a.EXAMPLE"),
            name("z.example"),
            Name::from_labels(vec![
                Label::new(&[1]).unwrap(),
                Label::new(b"z").unwrap(),
                Label::new(b"example").unwrap(),
            ])
            .unwrap(),
            Name::from_labels(vec![
                Label::new(b"*").unwrap(),
                Label::new(b"z").unwrap(),
                Label::new(b"example").unwrap(),
            ])
            .unwrap(),
        ];
        let expect = names.clone();
        names.reverse();
        names.sort_by(|a, b| a.canonical_cmp(b));
        assert_eq!(names, expect, "order should match {ordered:?}");
    }

    #[test]
    fn canonical_wire_is_lowercase() {
        let n = name("WwW.ExAmPlE.CoM");
        let wire = n.canonical_wire();
        assert_eq!(
            wire,
            [&[3u8][..], b"www", &[7], b"example", &[3], b"com", &[0]].concat()
        );
    }

    #[test]
    fn hash_is_case_insensitive() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(name("Example.COM"));
        assert!(set.contains(&name("example.com")));
    }

    #[test]
    fn label_display_escapes() {
        let l = Label::new(&[b'a', b'.', 0x07]).unwrap();
        assert_eq!(l.to_string(), "a\\.\\007");
    }
}
