//! RFC 1035 wire-format codec for complete DNS messages, including name
//! compression, EDNS(0) OPT handling, and defensive decoding (pointer-loop
//! guards, bounds checks). Used by the loopback UDP transport.

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::message::{Edns, Flags, Message, Question};
use crate::name::{Label, Name};
use crate::rdata::{Dnskey, Ds, Nsec, Nsec3, Nsec3Param, RData, Rrsig, Soa};
use crate::rrset::Record;
use crate::types::{Rcode, RrClass, RrType, TypeBitmap};

/// Maximum number of compression-pointer hops followed while reading one
/// name. Pointers must also go strictly backwards, which already rules out
/// loops; the explicit budget bounds pathological (but acyclic) chains.
pub const MAX_POINTER_CHASES: usize = 64;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran off the end of the buffer.
    Truncated,
    /// A compression pointer loop or forward pointer.
    BadPointer,
    /// A label or name exceeded protocol limits.
    BadName,
    /// RDATA did not parse for its declared type.
    BadRdata(u16),
    /// Bytes remained after the last record promised by the header.
    TrailingGarbage,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadName => write!(f, "malformed name"),
            WireError::BadRdata(t) => write!(f, "malformed rdata for type {t}"),
            WireError::TrailingGarbage => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decode-path counters, shared by [`decode`] and the zero-copy
/// [`crate::view::MessageView`] parser. Cached in a `OnceLock` because the
/// registry lookup in `ddx_obs::counter` is a map probe — too slow to pay
/// per datagram.
pub(crate) mod decode_obs {
    use std::sync::OnceLock;

    pub(crate) struct DecodeCounters {
        /// Successfully decoded messages (owned or view path).
        pub messages: ddx_obs::Counter,
        /// Wire bytes of successfully decoded messages.
        pub bytes: ddx_obs::Counter,
        /// Buffers rejected by the decoder.
        pub rejects: ddx_obs::Counter,
        /// Full owned materializations bridged from a `MessageView`.
        pub to_owned: ddx_obs::Counter,
    }

    pub(crate) fn counters() -> &'static DecodeCounters {
        static CACHE: OnceLock<DecodeCounters> = OnceLock::new();
        CACHE.get_or_init(|| DecodeCounters {
            messages: ddx_obs::counter("dns.decode.messages", &[]),
            bytes: ddx_obs::counter("dns.decode.bytes", &[]),
            rejects: ddx_obs::counter("dns.decode.rejects", &[]),
            to_owned: ddx_obs::counter("dns.view.to_owned", &[]),
        })
    }
}

// ---------------------------------------------------------------- encoding

struct Encoder {
    buf: Vec<u8>,
    /// Lowercased presentation name → offset of its first occurrence.
    offsets: HashMap<String, u16>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(512),
            offsets: HashMap::new(),
        }
    }

    /// Encodes into a caller-provided buffer (cleared first), so batched
    /// transports and load generators can reuse one allocation per slot.
    fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Encoder {
            buf,
            offsets: HashMap::new(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Encodes a name with compression: at each suffix, either emit a
    /// pointer to a previous occurrence or record this occurrence.
    fn name(&mut self, name: &Name) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix = Name::from_labels(labels[i..].to_vec()).expect("suffix fits");
            let key = suffix.key();
            if let Some(&off) = self.offsets.get(&key) {
                self.u16(0xC000 | off);
                return;
            }
            if self.buf.len() <= 0x3FFF {
                self.offsets.insert(key, self.buf.len() as u16);
            }
            self.u8(labels[i].len() as u8);
            self.bytes(labels[i].as_bytes());
        }
        self.u8(0);
    }

    /// Encodes a name without compression (names inside DNSSEC RDATA).
    fn name_uncompressed(&mut self, name: &Name) {
        for label in name.labels() {
            self.u8(label.len() as u8);
            self.bytes(label.as_bytes());
        }
        self.u8(0);
    }

    fn record(&mut self, rec: &Record) {
        self.name(&rec.name);
        self.u16(rec.rtype().code());
        self.u16(rec.class.code());
        self.u32(rec.ttl);
        // Length-prefixed rdata; compressible names (NS/CNAME/SOA/MX) are
        // encoded through the compressor, DNSSEC rdata names are not
        // (RFC 3597 §4).
        let len_pos = self.buf.len();
        self.u16(0);
        match &rec.rdata {
            RData::Ns(n) | RData::Cname(n) => self.name(n),
            RData::Soa(soa) => {
                self.name(&soa.mname);
                self.name(&soa.rname);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    self.u32(v);
                }
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                self.u16(*preference);
                self.name(exchange);
            }
            RData::Rrsig(sig) => {
                self.u16(sig.type_covered.code());
                self.u8(sig.algorithm);
                self.u8(sig.labels);
                self.u32(sig.original_ttl);
                self.u32(sig.expiration);
                self.u32(sig.inception);
                self.u16(sig.key_tag);
                self.name_uncompressed(&sig.signer_name);
                self.bytes(&sig.signature);
            }
            RData::Nsec(nsec) => {
                self.name_uncompressed(&nsec.next_name);
                self.bytes(&nsec.type_bitmap.to_wire());
            }
            other => {
                let raw = other.to_wire();
                self.bytes(&raw);
            }
        }
        let rdlen = (self.buf.len() - len_pos - 2) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }
}

/// Serializes a message to wire format.
pub fn encode(msg: &Message) -> Vec<u8> {
    encode_with(Encoder::new(), msg)
}

/// Serializes a message into `buf` (cleared first), reusing its capacity.
pub fn encode_into(msg: &Message, buf: &mut Vec<u8>) {
    let owned = std::mem::take(buf);
    *buf = encode_with(Encoder::with_buf(owned), msg);
}

fn encode_with(mut e: Encoder, msg: &Message) -> Vec<u8> {
    e.u16(msg.id);
    let f = &msg.flags;
    let mut word: u16 = 0;
    if f.qr {
        word |= 1 << 15;
    }
    if f.aa {
        word |= 1 << 10;
    }
    if f.tc {
        word |= 1 << 9;
    }
    if f.rd {
        word |= 1 << 8;
    }
    if f.ra {
        word |= 1 << 7;
    }
    if f.ad {
        word |= 1 << 5;
    }
    if f.cd {
        word |= 1 << 4;
    }
    word |= u16::from(msg.rcode.code() & 0x0F);
    e.u16(word);
    e.u16(if msg.question.is_some() { 1 } else { 0 });
    e.u16(msg.answers.len() as u16);
    e.u16(msg.authorities.len() as u16);
    e.u16(msg.additionals.len() as u16 + if msg.edns.is_some() { 1 } else { 0 });
    if let Some(q) = &msg.question {
        e.name(&q.qname);
        e.u16(q.qtype.code());
        e.u16(q.qclass.code());
    }
    for rec in msg
        .answers
        .iter()
        .chain(&msg.authorities)
        .chain(&msg.additionals)
    {
        e.record(rec);
    }
    if let Some(edns) = &msg.edns {
        // OPT pseudo-record: root name, TYPE=41, CLASS=udp size,
        // TTL = ext-rcode/version/DO bit, empty RDATA.
        e.u8(0);
        e.u16(RrType::Opt.code());
        e.u16(edns.udp_size);
        let ttl: u32 = if edns.dnssec_ok { 0x0000_8000 } else { 0 };
        e.u32(ttl);
        e.u16(0);
    }
    e.buf
}

// ---------------------------------------------------------------- decoding

pub(crate) struct Decoder<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Decoder<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a possibly-compressed name starting at the current position.
    fn name(&mut self) -> Result<Name, WireError> {
        let (name, next) = read_name_at(self.buf, self.pos)?;
        self.pos = next;
        Ok(name)
    }

    /// Validates and skips a possibly-compressed name without building it.
    pub(crate) fn skip_name(&mut self) -> Result<(), WireError> {
        self.pos = skip_name_at(self.buf, self.pos)?;
        Ok(())
    }
}

/// Reads a name at `start`, following compression pointers; returns the name
/// and the position just after the name's in-line representation.
pub(crate) fn read_name_at(buf: &[u8], start: usize) -> Result<(Name, usize), WireError> {
    let mut labels = Vec::new();
    let mut pos = start;
    let mut after: Option<usize> = None;
    let mut jumps = 0;
    loop {
        let len = *buf.get(pos).ok_or(WireError::Truncated)? as usize;
        if len & 0xC0 == 0xC0 {
            let b2 = *buf.get(pos + 1).ok_or(WireError::Truncated)? as usize;
            let target = ((len & 0x3F) << 8) | b2;
            if after.is_none() {
                after = Some(pos + 2);
            }
            // Pointers must go strictly backwards; cap jumps defensively.
            if target >= pos {
                return Err(WireError::BadPointer);
            }
            jumps += 1;
            if jumps > MAX_POINTER_CHASES {
                return Err(WireError::BadPointer);
            }
            pos = target;
            continue;
        }
        if len & 0xC0 != 0 {
            return Err(WireError::BadName);
        }
        if len == 0 {
            pos += 1;
            break;
        }
        let bytes = buf
            .get(pos + 1..pos + 1 + len)
            .ok_or(WireError::Truncated)?;
        labels.push(Label::new(bytes).map_err(|_| WireError::BadName)?);
        pos += 1 + len;
        if labels.len() > 127 {
            return Err(WireError::BadName);
        }
    }
    let name = Name::from_labels(labels).map_err(|_| WireError::BadName)?;
    Ok((name, after.unwrap_or(pos)))
}

/// Allocation-free twin of [`read_name_at`]: performs the identical
/// validation walk (same checks, same order, same errors) but returns only
/// the position after the name's in-line bytes. `MessageView` relies on this
/// accepting and rejecting exactly the inputs `read_name_at` does; keep the
/// two in lockstep.
pub(crate) fn skip_name_at(buf: &[u8], start: usize) -> Result<usize, WireError> {
    let mut labels = 0usize;
    // Wire length: per-label length octets plus the root terminator, as
    // `Name::wire_len` computes it.
    let mut wire_len = 1usize;
    let mut pos = start;
    let mut after: Option<usize> = None;
    let mut jumps = 0;
    loop {
        let len = *buf.get(pos).ok_or(WireError::Truncated)? as usize;
        if len & 0xC0 == 0xC0 {
            let b2 = *buf.get(pos + 1).ok_or(WireError::Truncated)? as usize;
            let target = ((len & 0x3F) << 8) | b2;
            if after.is_none() {
                after = Some(pos + 2);
            }
            if target >= pos {
                return Err(WireError::BadPointer);
            }
            jumps += 1;
            if jumps > MAX_POINTER_CHASES {
                return Err(WireError::BadPointer);
            }
            pos = target;
            continue;
        }
        if len & 0xC0 != 0 {
            return Err(WireError::BadName);
        }
        if len == 0 {
            pos += 1;
            break;
        }
        if buf.get(pos + 1..pos + 1 + len).is_none() {
            return Err(WireError::Truncated);
        }
        // `Label::new` cannot fail here: len has no 0xC0 bits, so len <= 63.
        labels += 1;
        wire_len += 1 + len;
        pos += 1 + len;
        if labels > 127 {
            return Err(WireError::BadName);
        }
    }
    if wire_len > crate::name::MAX_NAME_LEN {
        return Err(WireError::BadName);
    }
    Ok(after.unwrap_or(pos))
}

/// Allocation-free twin of [`decode_rdata`]: validates that the RDATA window
/// parses for its declared type without constructing the `RData`. Accepts
/// and rejects exactly the inputs `decode_rdata` does, with identical
/// errors; `MessageView::parse` validates with this so that lazy
/// `RecordView::rdata()` calls cannot fail later.
pub(crate) fn check_rdata(
    rtype: RrType,
    buf: &[u8],
    rd_start: usize,
    rd_len: usize,
) -> Result<(), WireError> {
    let bad = || WireError::BadRdata(rtype.code());
    if buf.get(rd_start..rd_start + rd_len).is_none() {
        return Err(WireError::Truncated);
    }
    let mut d = Decoder { buf, pos: rd_start };
    let end = rd_start + rd_len;
    match rtype {
        RrType::A => {
            d.take(4)?;
        }
        RrType::Aaaa => {
            d.take(16)?;
        }
        RrType::Ns | RrType::Cname => d.skip_name()?,
        RrType::Soa => {
            d.skip_name()?;
            d.skip_name()?;
            d.take(20)?; // serial, refresh, retry, expire, minimum
        }
        RrType::Mx => {
            d.take(2)?;
            d.skip_name()?;
        }
        RrType::Txt => {
            while d.pos < end {
                let len = d.u8()? as usize;
                d.take(len)?;
            }
        }
        RrType::Dnskey | RrType::Cdnskey => {
            d.take(4)?; // flags, protocol, algorithm
            d.take(end.checked_sub(d.pos).ok_or_else(bad)?)?;
        }
        RrType::Rrsig => {
            d.take(18)?; // covered, alg, labels, ttl, expiration, inception, tag
            d.skip_name()?;
            d.take(end.checked_sub(d.pos).ok_or_else(bad)?)?;
        }
        RrType::Ds | RrType::Cds => {
            d.take(4)?; // key tag, algorithm, digest type
            d.take(end.checked_sub(d.pos).ok_or_else(bad)?)?;
        }
        RrType::Nsec => {
            d.skip_name()?;
            let bm = buf.get(d.pos..end).ok_or(WireError::Truncated)?;
            if !TypeBitmap::validate_wire(bm) {
                return Err(bad());
            }
            d.pos = end;
        }
        RrType::Nsec3 => {
            d.take(4)?; // hash alg, flags, iterations
            let salt_len = d.u8()? as usize;
            d.take(salt_len)?;
            let hash_len = d.u8()? as usize;
            d.take(hash_len)?;
            let bm = buf.get(d.pos..end).ok_or(WireError::Truncated)?;
            if !TypeBitmap::validate_wire(bm) {
                return Err(bad());
            }
            d.pos = end;
        }
        RrType::Nsec3Param => {
            d.take(4)?;
            let salt_len = d.u8()? as usize;
            d.take(salt_len)?;
        }
        // Unknown types are a raw slice copy on the owned path; the window
        // bounds check at the top is the only constraint.
        _ => {}
    }
    if d.pos > end {
        return Err(bad());
    }
    Ok(())
}

pub(crate) fn decode_rdata(
    rtype: RrType,
    buf: &[u8],
    rd_start: usize,
    rd_len: usize,
) -> Result<RData, WireError> {
    let bad = || WireError::BadRdata(rtype.code());
    let slice = buf
        .get(rd_start..rd_start + rd_len)
        .ok_or(WireError::Truncated)?;
    let mut d = Decoder { buf, pos: rd_start };
    let end = rd_start + rd_len;
    let rd = match rtype {
        RrType::A => {
            let o = d.take(4)?;
            RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
        }
        RrType::Aaaa => {
            let o = d.take(16)?;
            let mut a = [0u8; 16];
            a.copy_from_slice(o);
            RData::Aaaa(Ipv6Addr::from(a))
        }
        RrType::Ns => RData::Ns(d.name()?),
        RrType::Cname => RData::Cname(d.name()?),
        RrType::Soa => {
            let mname = d.name()?;
            let rname = d.name()?;
            RData::Soa(Soa {
                mname,
                rname,
                serial: d.u32()?,
                refresh: d.u32()?,
                retry: d.u32()?,
                expire: d.u32()?,
                minimum: d.u32()?,
            })
        }
        RrType::Mx => RData::Mx {
            preference: d.u16()?,
            exchange: d.name()?,
        },
        RrType::Txt => {
            let mut strings = Vec::new();
            while d.pos < end {
                let len = d.u8()? as usize;
                let s = d.take(len)?;
                strings.push(String::from_utf8_lossy(s).into_owned());
            }
            RData::Txt(strings)
        }
        RrType::Dnskey | RrType::Cdnskey => {
            let flags = d.u16()?;
            let protocol = d.u8()?;
            let algorithm = d.u8()?;
            let key = d.take(end.checked_sub(d.pos).ok_or_else(bad)?)?;
            let k = Dnskey {
                flags,
                protocol,
                algorithm,
                public_key: key.to_vec(),
            };
            if rtype == RrType::Cdnskey {
                RData::Cdnskey(k)
            } else {
                RData::Dnskey(k)
            }
        }
        RrType::Rrsig => {
            let type_covered = RrType::from_code(d.u16()?);
            let algorithm = d.u8()?;
            let labels = d.u8()?;
            let original_ttl = d.u32()?;
            let expiration = d.u32()?;
            let inception = d.u32()?;
            let key_tag = d.u16()?;
            let signer_name = d.name()?;
            let sig = d.take(end.checked_sub(d.pos).ok_or_else(bad)?)?;
            RData::Rrsig(Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer_name,
                signature: sig.to_vec(),
            })
        }
        RrType::Ds | RrType::Cds => {
            let key_tag = d.u16()?;
            let algorithm = d.u8()?;
            let digest_type = d.u8()?;
            let digest = d.take(end.checked_sub(d.pos).ok_or_else(bad)?)?;
            let ds = Ds {
                key_tag,
                algorithm,
                digest_type,
                digest: digest.to_vec(),
            };
            if rtype == RrType::Cds {
                RData::Cds(ds)
            } else {
                RData::Ds(ds)
            }
        }
        RrType::Nsec => {
            let next_name = d.name()?;
            let bm = buf.get(d.pos..end).ok_or(WireError::Truncated)?;
            RData::Nsec(Nsec {
                next_name,
                type_bitmap: TypeBitmap::from_wire(bm).ok_or_else(bad)?,
            })
        }
        RrType::Nsec3 => {
            let hash_algorithm = d.u8()?;
            let flags = d.u8()?;
            let iterations = d.u16()?;
            let salt_len = d.u8()? as usize;
            let salt = d.take(salt_len)?.to_vec();
            let hash_len = d.u8()? as usize;
            let next = d.take(hash_len)?.to_vec();
            let bm = buf.get(d.pos..end).ok_or(WireError::Truncated)?;
            RData::Nsec3(Nsec3 {
                hash_algorithm,
                flags,
                iterations,
                salt,
                next_hashed_owner: next,
                type_bitmap: TypeBitmap::from_wire(bm).ok_or_else(bad)?,
            })
        }
        RrType::Nsec3Param => {
            let hash_algorithm = d.u8()?;
            let flags = d.u8()?;
            let iterations = d.u16()?;
            let salt_len = d.u8()? as usize;
            let salt = d.take(salt_len)?.to_vec();
            RData::Nsec3Param(Nsec3Param {
                hash_algorithm,
                flags,
                iterations,
                salt,
            })
        }
        other => RData::Unknown {
            rtype: other.code(),
            data: slice.to_vec(),
        },
    };
    // Every read above is bounds-checked against the message buffer, but a
    // lying RDLENGTH could still let a field run past the declared RDATA
    // window into the next record's bytes. Reject the overrun instead of
    // silently mis-parsing.
    if d.pos > end {
        return Err(bad());
    }
    Ok(rd)
}

/// Parses a wire-format message.
pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
    let counters = decode_obs::counters();
    match decode_inner(buf) {
        Ok(msg) => {
            counters.messages.inc();
            counters.bytes.add(buf.len() as u64);
            Ok(msg)
        }
        Err(e) => {
            counters.rejects.inc();
            Err(e)
        }
    }
}

/// The decode walk itself, minus observability. `MessageView::to_owned`
/// bridges through this too, so the owned and view paths cannot drift: there
/// is exactly one implementation of owned decoding.
pub(crate) fn decode_inner(buf: &[u8]) -> Result<Message, WireError> {
    let mut d = Decoder::new(buf);
    let id = d.u16()?;
    let word = d.u16()?;
    let flags = Flags {
        qr: word & (1 << 15) != 0,
        aa: word & (1 << 10) != 0,
        tc: word & (1 << 9) != 0,
        rd: word & (1 << 8) != 0,
        ra: word & (1 << 7) != 0,
        ad: word & (1 << 5) != 0,
        cd: word & (1 << 4) != 0,
    };
    let mut rcode = Rcode::from_code((word & 0x0F) as u8);
    let qdcount = d.u16()?;
    let ancount = d.u16()? as usize;
    let nscount = d.u16()? as usize;
    let arcount = d.u16()? as usize;

    let mut question = None;
    for _ in 0..qdcount {
        let qname = d.name()?;
        let qtype = RrType::from_code(d.u16()?);
        let qclass = RrClass::from_code(d.u16()?);
        question = Some(Question {
            qname,
            qtype,
            qclass,
        });
    }

    let read_section =
        |d: &mut Decoder, n: usize| -> Result<(Vec<Record>, Option<Edns>), WireError> {
            let mut recs = Vec::with_capacity(n);
            let mut edns = None;
            for _ in 0..n {
                let name = d.name()?;
                let rtype = RrType::from_code(d.u16()?);
                let class_code = d.u16()?;
                let ttl = d.u32()?;
                let rd_len = d.u16()? as usize;
                if rtype == RrType::Opt {
                    edns = Some(Edns {
                        udp_size: class_code,
                        dnssec_ok: ttl & 0x0000_8000 != 0,
                    });
                    d.take(rd_len)?;
                    continue;
                }
                let rdata = decode_rdata(rtype, d.buf, d.pos, rd_len)?;
                d.take(rd_len)?;
                recs.push(Record {
                    name,
                    class: RrClass::from_code(class_code),
                    ttl,
                    rdata,
                });
            }
            Ok((recs, edns))
        };

    let (answers, _) = read_section(&mut d, ancount)?;
    let (authorities, _) = read_section(&mut d, nscount)?;
    let (additionals, edns) = read_section(&mut d, arcount)?;
    // Extended RCODE upper bits live in the OPT TTL; our testbed only uses
    // the low four bits, so nothing further to merge here.
    let _ = &mut rcode;
    // The header promised exactly this much content; anything after it is
    // either an attack or a framing bug upstream. Every transport in the
    // workspace hands the decoder an exact-length buffer.
    if d.pos != buf.len() {
        return Err(WireError::TrailingGarbage);
    }

    Ok(Message {
        id,
        flags,
        rcode,
        question,
        answers,
        authorities,
        additionals,
        edns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::rdata::DNSKEY_FLAG_ZONE;

    fn round_trip(msg: &Message) -> Message {
        decode(&encode(msg)).expect("decode")
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let msg = sample_response();
        let fresh = encode(&msg);
        let mut buf = Vec::new();
        encode_into(&msg, &mut buf);
        assert_eq!(buf, fresh);
        // A second encode into the same (now dirty, larger) buffer must
        // clear it and produce identical bytes.
        let small = Message::query(1, name("a.example.com"), RrType::A);
        encode_into(&small, &mut buf);
        assert_eq!(buf, encode(&small));
    }

    fn sample_response() -> Message {
        let q = Message::query(0x1234, name("www.example.com"), RrType::A);
        let mut r = q.response();
        r.flags.aa = true;
        r.answers.push(Record::new(
            name("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        r.answers.push(Record::new(
            name("www.example.com"),
            300,
            RData::Rrsig(Rrsig {
                type_covered: RrType::A,
                algorithm: 8,
                labels: 3,
                original_ttl: 300,
                expiration: 5000,
                inception: 1000,
                key_tag: 4242,
                signer_name: name("example.com"),
                signature: vec![9; 32],
            }),
        ));
        r.authorities.push(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        r.additionals.push(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        r
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(7, name("example.com"), RrType::Dnskey);
        let back = round_trip(&q);
        assert_eq!(back, q);
        assert!(back.dnssec_ok());
    }

    #[test]
    fn response_round_trip() {
        let r = sample_response();
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn compression_shrinks_message() {
        let r = sample_response();
        let wire = encode(&r);
        // Uncompressed "example.com" appears 4+ times; compression should
        // keep the message well under the naive size.
        let naive: usize =
            12 + r.answers.len() * 64 + r.authorities.len() * 64 + r.additionals.len() * 64 + 32;
        assert!(wire.len() < naive, "wire {} >= naive {}", wire.len(), naive);
        // And pointers must resolve on decode.
        assert_eq!(decode(&wire).unwrap(), r);
    }

    #[test]
    fn dnssec_records_round_trip() {
        let q = Message::query(1, name("example.com"), RrType::Dnskey);
        let mut r = q.response();
        r.answers.push(Record::new(
            name("example.com"),
            3600,
            RData::Dnskey(Dnskey {
                flags: DNSKEY_FLAG_ZONE,
                protocol: 3,
                algorithm: 13,
                public_key: vec![1, 2, 3, 4, 5, 6, 7, 8],
            }),
        ));
        r.answers.push(Record::new(
            name("example.com"),
            3600,
            RData::Ds(Ds {
                key_tag: 11,
                algorithm: 13,
                digest_type: 2,
                digest: vec![0xab; 32],
            }),
        ));
        r.authorities.push(Record::new(
            name("example.com"),
            300,
            RData::Nsec(Nsec {
                next_name: name("a.example.com"),
                type_bitmap: TypeBitmap::from_types([RrType::Soa, RrType::Ns, RrType::Dnskey]),
            }),
        ));
        r.authorities.push(Record::new(
            name("abcd1234.example.com"),
            300,
            RData::Nsec3(Nsec3 {
                hash_algorithm: 1,
                flags: 1,
                iterations: 10,
                salt: vec![0xaa, 0xbb],
                next_hashed_owner: vec![0x11; 20],
                type_bitmap: TypeBitmap::from_types([RrType::A]),
            }),
        ));
        r.authorities.push(Record::new(
            name("example.com"),
            0,
            RData::Nsec3Param(Nsec3Param {
                hash_algorithm: 1,
                flags: 0,
                iterations: 10,
                salt: vec![],
            }),
        ));
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn txt_soa_mx_round_trip() {
        let q = Message::query(2, name("example.com"), RrType::Soa);
        let mut r = q.response();
        r.answers.push(Record::new(
            name("example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2024,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        r.answers.push(Record::new(
            name("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: name("mail.example.com"),
            },
        ));
        r.answers.push(Record::new(
            name("example.com"),
            3600,
            RData::Txt(vec!["v=spf1 -all".into(), "second".into()]),
        ));
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn decode_rejects_truncation() {
        let wire = encode(&sample_response());
        for cut in [1, 5, 11, wire.len() - 1] {
            assert!(decode(&wire[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_pointer_loops() {
        // Header + a question whose name is a self-pointing pointer.
        let mut buf = vec![0u8; 12];
        buf[4] = 0;
        buf[5] = 1; // qdcount = 1
        buf.extend_from_slice(&[0xC0, 0x0C]); // pointer to itself
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&buf), Err(WireError::BadPointer));
    }

    #[test]
    fn edns_do_bit_round_trip() {
        let mut q = Message::query(3, name("example.com"), RrType::A);
        q.edns = Some(Edns {
            udp_size: 1232,
            dnssec_ok: false,
        });
        let back = round_trip(&q);
        assert_eq!(back.edns.unwrap().udp_size, 1232);
        assert!(!back.dnssec_ok());
    }

    #[test]
    fn nxdomain_rcode_round_trip() {
        let mut r = Message::query(4, name("nope.example.com"), RrType::A).response();
        r.rcode = Rcode::NxDomain;
        assert_eq!(round_trip(&r).rcode, Rcode::NxDomain);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut wire = encode(&sample_response());
        wire.push(0);
        assert_eq!(decode(&wire), Err(WireError::TrailingGarbage));
    }

    /// A chain of strictly-backwards pointers longer than the chase budget
    /// must be rejected, and a chain exactly at the budget must resolve, on
    /// both the owned and the skip walk.
    #[test]
    fn pointer_chase_budget_is_enforced() {
        let chain = |hops: usize| -> Vec<u8> {
            let mut buf = vec![0u8]; // root label at offset 0
            for i in 0..hops {
                let target = if i == 0 { 0 } else { 1 + 2 * (i - 1) };
                buf.push(0xC0 | ((target >> 8) as u8));
                buf.push((target & 0xFF) as u8);
            }
            buf
        };

        let over = chain(MAX_POINTER_CHASES + 1);
        let start = over.len() - 2;
        assert_eq!(
            read_name_at(&over, start).unwrap_err(),
            WireError::BadPointer
        );
        assert_eq!(
            skip_name_at(&over, start).unwrap_err(),
            WireError::BadPointer
        );

        let at_limit = chain(MAX_POINTER_CHASES);
        let start = at_limit.len() - 2;
        let (resolved, after) = read_name_at(&at_limit, start).expect("within budget");
        assert!(resolved.is_root());
        assert_eq!(after, start + 2);
        assert_eq!(skip_name_at(&at_limit, start).unwrap(), start + 2);
    }

    /// The allocation-free skip walk must agree with the allocating reader
    /// byte-for-byte on real messages.
    #[test]
    fn skip_name_matches_read_name_on_real_messages() {
        let wire = encode(&sample_response());
        // Walk the question name and every record owner name.
        let mut offsets = vec![12usize];
        let mut d = Decoder::new(&wire);
        d.pos = 12;
        d.skip_name().unwrap();
        d.pos += 4; // qtype + qclass
        for _ in 0..6 {
            if d.pos >= wire.len() {
                break;
            }
            offsets.push(d.pos);
            d.skip_name().unwrap();
            d.pos += 8; // type, class, ttl
            let rd_len = d.u16().unwrap() as usize;
            d.pos += rd_len;
        }
        for off in offsets {
            let (_, after) = read_name_at(&wire, off).expect("read");
            assert_eq!(skip_name_at(&wire, off).expect("skip"), after, "at {off}");
        }
    }
}
